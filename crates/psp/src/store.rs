//! The photo-sharing platform: stores perturbed images and public
//! parameters, serves them to any user, and applies standard image
//! transformations on request — all via "general file store and retrieval
//! APIs" (§III-C.3), with zero PuPPIeS-specific logic.
//!
//! # Serving fast path
//!
//! The store is built for the ROADMAP's "heavy traffic" PSP rather than a
//! single-threaded simulation:
//!
//! - **Sharding** — photos live in `N` power-of-two shards (keyed by the
//!   low bits of [`PhotoId`]), each behind its own `RwLock`, so concurrent
//!   requests for different photos never serialize on one map lock.
//! - **Zero-copy payloads** — stored bytes and params are `Arc<[u8]>`;
//!   [`PspServer::download`] clones a pointer under a brief read lock
//!   instead of memcpying the bitstream.
//! - **Transform-result cache** — finished transforms are cached
//!   content-addressed (FNV over source bytes + params + the canonical
//!   transformation encoding, see [`crate::cache`]), so repeat transform
//!   traffic never touches the codec.
//! - **Decode memo** — transform misses on the same hot photo share one
//!   entropy decode.
//! - **Batch APIs** — [`PspServer::download_batch`] /
//!   [`PspServer::transform_batch`] fan independent requests across the
//!   ambient [`puppies_core::parallel`] worker pool.

use crate::cache::{fnv64, fnv64_chain, CacheStats, DecodeMemo, ServedPair, TransformCache};
use crate::{PspError, Result};
use parking_lot::{Mutex, RwLock};
use puppies_core::PublicParams;
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_transform::Transformation;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Identifies a stored photo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhotoId(pub u64);

#[derive(Debug)]
struct StoredPhoto {
    bytes: Arc<[u8]>,
    /// Opaque public-parameter blob (the PSP never parses it — it lives in
    /// the image "description").
    params: Arc<[u8]>,
    /// `(fnv(bytes), fnv(bytes ‖ params))`, computed lazily on the first
    /// transform so the upload path never hashes the full bitstream. The
    /// first component keys the decode memo (decode depends only on the
    /// bytes), the second is the photo's content address for cache keys.
    hashes: OnceLock<(u64, u64)>,
}

impl StoredPhoto {
    fn hashes(&self) -> (u64, u64) {
        *self.hashes.get_or_init(|| {
            let bytes_fnv = fnv64(&self.bytes);
            (bytes_fnv, fnv64_chain(bytes_fnv, &self.params))
        })
    }

    fn size(&self) -> u64 {
        (self.bytes.len() + self.params.len()) as u64
    }
}

/// Whether a request could be served from the transform-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The operation does not consult the cache (upload/download doors).
    #[default]
    NotApplicable,
    /// Served from the transform-result cache.
    Hit,
    /// Fell through to the decode→transform→re-encode pipeline.
    Miss,
}

/// Which pipeline produced a transform response: the quantized-coefficient
/// hot path (no decode to pixels), the pixel-domain fallback (decode →
/// transform → re-encode), or the transform-result cache (no codec work at
/// all). The PSP's decode-free serving claim is measured from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServedPath {
    /// The operation does not serve transforms (upload/download doors).
    #[default]
    NotApplicable,
    /// Served by `apply_to_coeff` on the cached coefficient memo — the
    /// stream was transformed without ever materializing pixels.
    CoeffDomain,
    /// Genuinely pixel-domain geometry (e.g. scaling): decoded to RGB,
    /// transformed, re-encoded.
    PixelFallback,
    /// Served from the transform-result cache; no codec ran.
    Cached,
}

impl ServedPath {
    /// Stable wire/log token for the path (`x-served-path` header values).
    pub fn as_str(self) -> &'static str {
        match self {
            ServedPath::NotApplicable => "none",
            ServedPath::CoeffDomain => "coeff-domain",
            ServedPath::PixelFallback => "pixel-fallback",
            ServedPath::Cached => "cached",
        }
    }
}

/// One entry of the server's bounded per-request log: which API door was
/// hit, for which photo, how many payload bytes moved, how long it took,
/// whether it succeeded, and whether the transform cache served it. Small
/// and `Copy` so snapshotting the log is a memcpy, not a clone-per-entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestEntry {
    /// API name: `"upload"`, `"download"`, `"download_params"`,
    /// `"transform"`, `"download_transformed"`.
    pub op: &'static str,
    /// Photo id the request touched.
    pub id: u64,
    /// Payload bytes moved (image + params for uploads, response size for
    /// downloads and transforms; 0 on failure).
    pub bytes: u64,
    /// Wall-clock service time in nanoseconds.
    pub dur_ns: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Transform-cache outcome for this request.
    pub cache: CacheOutcome,
    /// Which pipeline served this request (transform doors only).
    pub served: ServedPath,
    /// Global admission order (monotonic across all shards) — entries from
    /// different log shards merge into one timeline by sorting on this.
    pub seq: u64,
}

/// Default cap on retained request-log entries (older ones are evicted
/// first — the log is a bounded ring, never a leak). Tunable per server
/// via [`PspConfig::request_log_capacity`].
pub const REQUEST_LOG_CAPACITY: usize = 256;

/// One store shard: a photo map plus the request-log segment for the
/// photos that hash here. Logging an op only contends with ops on the same
/// shard, never globally.
#[derive(Debug, Default)]
struct Shard {
    photos: RwLock<HashMap<PhotoId, Arc<StoredPhoto>>>,
    log: Mutex<VecDeque<RequestEntry>>,
}

/// Construction-time tuning for [`PspServer`].
#[derive(Debug, Clone)]
pub struct PspConfig {
    /// Number of store shards; rounded up to a power of two, minimum 1.
    pub shards: usize,
    /// Byte budget for the transform-result cache; 0 disables caching.
    pub cache_budget_bytes: usize,
    /// Max decoded images retained by the transform-miss memo; 0 disables.
    pub decode_memo_entries: usize,
    /// Request-log ring capacity per server (clamped to ≥1); defaults to
    /// [`REQUEST_LOG_CAPACITY`].
    pub request_log_capacity: usize,
}

impl Default for PspConfig {
    fn default() -> Self {
        PspConfig {
            shards: 16,
            cache_budget_bytes: 32 << 20,
            decode_memo_entries: 8,
            request_log_capacity: REQUEST_LOG_CAPACITY,
        }
    }
}

impl PspConfig {
    /// A configuration with the transform cache and decode memo disabled —
    /// every transform runs the full pipeline (used by coherence tests and
    /// as the honest "cold" baseline in benches).
    pub fn uncached() -> Self {
        PspConfig {
            cache_budget_bytes: 0,
            decode_memo_entries: 0,
            ..PspConfig::default()
        }
    }
}

/// The PSP server. Thread-safe: uploads, downloads and transformations can
/// run concurrently (the experiment sweeps exploit this).
#[derive(Debug)]
pub struct PspServer {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: u64,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    /// Total stored bytes (image + params across all photos), maintained
    /// incrementally so reading it never walks the maps.
    footprint: AtomicU64,
    /// Stored photo count, maintained incrementally for O(1) `len()`.
    photo_count: AtomicU64,
    cache: TransformCache,
    memo: DecodeMemo,
    /// Request-log ring capacity ([`PspConfig::request_log_capacity`]).
    log_capacity: usize,
}

impl Default for PspServer {
    fn default() -> Self {
        Self::new()
    }
}

impl PspServer {
    /// Creates an empty server with the default configuration.
    pub fn new() -> Self {
        Self::with_config(PspConfig::default())
    }

    /// Creates an empty server with explicit shard/cache tuning.
    pub fn with_config(config: PspConfig) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let shards = (0..n).map(|_| Shard::default()).collect::<Vec<_>>();
        PspServer {
            shards: shards.into_boxed_slice(),
            shard_mask: (n - 1) as u64,
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            footprint: AtomicU64::new(0),
            photo_count: AtomicU64::new(0),
            cache: TransformCache::new(config.cache_budget_bytes),
            memo: DecodeMemo::new(config.decode_memo_entries),
            log_capacity: config.request_log_capacity.max(1),
        }
    }

    /// The request-log ring capacity this server was built with.
    pub fn request_log_capacity(&self) -> usize {
        self.log_capacity
    }

    fn shard(&self, id: PhotoId) -> &Shard {
        &self.shards[(id.0 & self.shard_mask) as usize]
    }

    fn lookup(&self, id: PhotoId) -> Result<Arc<StoredPhoto>> {
        self.shard(id)
            .photos
            .read()
            .get(&id)
            .cloned()
            .ok_or(PspError::UnknownPhoto(id))
    }

    #[allow(clippy::too_many_arguments)]
    fn log_request(
        &self,
        op: &'static str,
        id: u64,
        bytes: u64,
        start: Instant,
        ok: bool,
        cache: CacheOutcome,
        served: ServedPath,
    ) {
        let entry = RequestEntry {
            op,
            id,
            bytes,
            dur_ns: start.elapsed().as_nanos() as u64,
            ok,
            cache,
            served,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        let mut log = self.shard(PhotoId(id)).log.lock();
        if log.len() == self.log_capacity {
            log.pop_front();
        }
        log.push_back(entry);
    }

    /// Publishes the current aggregate storage footprint and photo count as
    /// gauges, when a subscriber is installed.
    fn publish_gauges(&self) {
        if puppies_obs::enabled() {
            puppies_obs::gauge_set(
                "psp.storage_bytes",
                self.footprint.load(Ordering::Relaxed) as i64,
            );
            puppies_obs::gauge_set("psp.photos", self.len() as i64);
        }
    }

    /// Uploads a photo with its public-parameter blob; returns its id.
    ///
    /// # Errors
    /// Returns [`PspError::IdsExhausted`] once the 64-bit id space is spent
    /// — the allocator saturates instead of wrapping, so a stored photo can
    /// never be silently overwritten by a recycled id.
    pub fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> Result<PhotoId> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.upload", "psp");
        let mut cur = self.next_id.load(Ordering::Relaxed);
        let id = loop {
            if cur == u64::MAX {
                self.log_request(
                    "upload",
                    u64::MAX,
                    0,
                    start,
                    false,
                    CacheOutcome::NotApplicable,
                    ServedPath::NotApplicable,
                );
                return Err(PspError::IdsExhausted);
            }
            match self.next_id.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break PhotoId(cur),
                Err(seen) => cur = seen,
            }
        };
        let stored = Arc::new(StoredPhoto {
            bytes: bytes.into(),
            params: params.into(),
            hashes: OnceLock::new(),
        });
        let size = stored.size();
        self.shard(id).photos.write().insert(id, stored);
        self.footprint.fetch_add(size, Ordering::Relaxed);
        self.photo_count.fetch_add(1, Ordering::Relaxed);
        puppies_obs::counted!("psp.uploads");
        self.publish_gauges();
        self.log_request(
            "upload",
            id.0,
            size,
            start,
            true,
            CacheOutcome::NotApplicable,
            ServedPath::NotApplicable,
        );
        Ok(id)
    }

    /// Reinstates a photo at an explicit id — the persistence layer's
    /// replay door ([`crate::store_disk`] drives it when rebuilding from
    /// the WAL). Overwrites any existing entry (a `Transform` WAL record
    /// replays as an overwrite of the `Upload` before it) and advances the
    /// id allocator past `id`, so post-recovery uploads never collide with
    /// restored photos. Not an API door: it bypasses the request log.
    pub fn restore_photo(&self, id: PhotoId, bytes: Vec<u8>, params: Vec<u8>) {
        let stored = Arc::new(StoredPhoto {
            bytes: bytes.into(),
            params: params.into(),
            hashes: OnceLock::new(),
        });
        let new_size = stored.size();
        let replaced = self.shard(id).photos.write().insert(id, stored);
        self.footprint.fetch_add(new_size, Ordering::Relaxed);
        match replaced {
            Some(old) => {
                self.footprint.fetch_sub(old.size(), Ordering::Relaxed);
                if let Some(&(bytes_fnv, _)) = old.hashes.get() {
                    self.memo.invalidate(bytes_fnv);
                }
            }
            None => {
                self.photo_count.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Advance the allocator monotonically past the restored id; ids at
        // u64::MAX leave the allocator saturated (exhausted), never wrapped.
        let next = id.0.saturating_add(1);
        let mut cur = self.next_id.load(Ordering::Relaxed);
        while cur < next {
            match self.next_id.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Downloads the image bytes (any user may call this — the threat
    /// model's "unauthorized access at PSP side" is exactly this door).
    /// Zero-copy: the returned `Arc` shares the stored allocation.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download(&self, id: PhotoId) -> Result<Arc<[u8]>> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.download", "psp");
        let out = self.lookup(id).map(|p| p.bytes.clone());
        puppies_obs::counted!("psp.downloads");
        let bytes = out.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        self.log_request(
            "download",
            id.0,
            bytes,
            start,
            out.is_ok(),
            CacheOutcome::NotApplicable,
            ServedPath::NotApplicable,
        );
        out
    }

    /// Downloads the public-parameter blob. Zero-copy, like
    /// [`PspServer::download`].
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download_params(&self, id: PhotoId) -> Result<Arc<[u8]>> {
        let start = Instant::now();
        let out = self.lookup(id).map(|p| p.params.clone());
        let bytes = out.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        self.log_request(
            "download_params",
            id.0,
            bytes,
            start,
            out.is_ok(),
            CacheOutcome::NotApplicable,
            ServedPath::NotApplicable,
        );
        out
    }

    /// Runs (or serves from cache) `t` against the stored photo, returning
    /// `(transformed bytes, updated params)` **without** modifying the
    /// store — the serving door for "give me the thumbnail of photo X",
    /// which is where repeat traffic concentrates. The returned params blob
    /// records the transformation exactly as the in-place
    /// [`PspServer::transform`] would store it.
    ///
    /// # Errors
    /// Fails for unknown photos, undecodable streams, invalid
    /// transformations, or photos that were already transformed in place
    /// (chains are not supported).
    pub fn download_transformed(&self, id: PhotoId, t: &Transformation) -> Result<ServedPair> {
        self.download_transformed_traced(id, t)
            .map(|(pair, _, _)| pair)
    }

    /// [`PspServer::download_transformed`], but also reports whether the
    /// result came from the transform cache and which pipeline produced it
    /// — the serving layer surfaces both on the wire (`x-cache: hit|miss`,
    /// `x-served-path: coeff-domain|pixel-fallback|cached`) so load
    /// generators can verify cache behaviour and the decode-free claim end
    /// to end.
    ///
    /// # Errors
    /// As [`PspServer::download_transformed`].
    pub fn download_transformed_traced(
        &self,
        id: PhotoId,
        t: &Transformation,
    ) -> Result<(ServedPair, CacheOutcome, ServedPath)> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.download_transformed", "psp");
        let out = self
            .lookup(id)
            .and_then(|stored| self.serve_transform(&stored, t));
        puppies_obs::counted!("psp.transform_serves");
        let (bytes, outcome, served) = match &out {
            Ok(((b, p), outcome, served)) => ((b.len() + p.len()) as u64, *outcome, *served),
            Err(_) => (0, CacheOutcome::NotApplicable, ServedPath::NotApplicable),
        };
        self.log_request(
            "download_transformed",
            id.0,
            bytes,
            start,
            out.is_ok(),
            outcome,
            served,
        );
        out
    }

    /// Applies a transformation to a stored photo *in place*, recording it
    /// in the public parameters so receivers can mirror it (§III-C
    /// scenario 2). Uses the lossless coefficient path when possible and
    /// the ordinary decode–transform–re-encode pipeline otherwise, exactly
    /// like a jpegtran-aware production service. The result lands in the
    /// transform cache, so a subsequent identical request on an identical
    /// source is served without touching the codec.
    ///
    /// # Errors
    /// Fails for unknown photos, undecodable streams, or invalid
    /// transformations.
    pub fn transform(&self, id: PhotoId, t: &Transformation) -> Result<()> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.transform", "psp");
        let out = self.transform_inner(id, t);
        puppies_obs::counted!("psp.transforms");
        self.publish_gauges();
        let (bytes, outcome, served) = match &out {
            Ok((b, outcome, served)) => (*b, *outcome, *served),
            Err(_) => (0, CacheOutcome::NotApplicable, ServedPath::NotApplicable),
        };
        self.log_request(
            "transform",
            id.0,
            bytes,
            start,
            out.is_ok(),
            outcome,
            served,
        );
        out.map(|_| ())
    }

    fn transform_inner(
        &self,
        id: PhotoId,
        t: &Transformation,
    ) -> Result<(u64, CacheOutcome, ServedPath)> {
        let stored = self.lookup(id)?;
        let ((new_bytes, new_params), outcome, served) = self.serve_transform(&stored, t)?;
        let replacement = Arc::new(StoredPhoto {
            bytes: new_bytes,
            params: new_params,
            hashes: OnceLock::new(),
        });
        let new_size = replacement.size();
        let old_size = stored.size();
        {
            let mut photos = self.shard(id).photos.write();
            match photos.get(&id) {
                // The entry we computed from is still current: swap it.
                Some(cur) if Arc::ptr_eq(cur, &stored) => {
                    photos.insert(id, replacement);
                }
                // Someone else transformed (or re-uploaded) this photo
                // between our read and this write. Applying our result
                // would silently drop theirs, so refuse like any other
                // chain attempt.
                Some(_) => {
                    return Err(PspError::Transform(
                        puppies_transform::TransformError::InvalidParameter(
                            "photo changed concurrently; transform chain not supported".into(),
                        ),
                    ))
                }
                None => return Err(PspError::UnknownPhoto(id)),
            }
        }
        // The old bitstream is gone from the store: drop its decode memo
        // entry eagerly instead of waiting for LRU pressure. (Transform
        // *results* keyed by the old content hash stay addressable — they
        // are still byte-correct answers for that content — and simply age
        // out.)
        if let Some(&(bytes_fnv, _)) = stored.hashes.get() {
            self.memo.invalidate(bytes_fnv);
        }
        // Two wrapping steps net out to `footprint + new - old`; the total
        // stays exact even though the two updates are not one atomic op.
        self.footprint.fetch_add(new_size, Ordering::Relaxed);
        self.footprint.fetch_sub(old_size, Ordering::Relaxed);
        Ok((new_size, outcome, served))
    }

    /// The shared serving path: transform-cache lookup, then on a miss the
    /// decode(memo)→apply→re-encode pipeline plus cache fill. Never locks a
    /// shard; works entirely from the snapshot `Arc`s.
    fn serve_transform(
        &self,
        stored: &StoredPhoto,
        t: &Transformation,
    ) -> Result<(ServedPair, CacheOutcome, ServedPath)> {
        let (bytes_fnv, content_fnv) = stored.hashes();
        let key = fnv64_chain(content_fnv, &t.canonical_bytes());
        if let Some((bytes, params)) = self.cache.get(key) {
            return Ok(((bytes, params), CacheOutcome::Hit, ServedPath::Cached));
        }
        // Record the transformation in the public parameters. The PSP
        // treats the blob as opaque except for this append-only note; in
        // our wire format that means re-encoding via PublicParams.
        let mut params = PublicParams::from_bytes(&stored.params)?;
        if params.transformation.is_some() {
            return Err(PspError::Transform(
                puppies_transform::TransformError::InvalidParameter(
                    "photo already transformed once; chain not supported".into(),
                ),
            ));
        }
        let coeff = match self.memo.get(bytes_fnv) {
            Some(c) => c,
            None => {
                let decoded = Arc::new(
                    CoeffImage::decode(&stored.bytes).map_err(puppies_core::PuppiesError::from)?,
                );
                self.memo.insert(bytes_fnv, decoded.clone());
                decoded
            }
        };
        // Every coefficient-eligible transformation is served from the
        // quantized coefficients — never by decoding to pixels. The pixel
        // pipeline survives only for genuinely pixel-domain geometry.
        let (new_bytes, served) = if t.is_coeff_domain(coeff.width(), coeff.height()) {
            puppies_obs::counted!("psp.serve.coeff_domain");
            let bytes = t
                .apply_to_coeff(&coeff)?
                .encode(&EncodeOptions::default())
                .map_err(puppies_core::PuppiesError::from)?;
            (bytes, ServedPath::CoeffDomain)
        } else {
            puppies_obs::counted!("psp.serve.pixel_fallback");
            let rgb = coeff.to_rgb();
            let transformed = t.apply_to_rgb(&rgb)?;
            // Re-encode at the source's own compression setting (recovered
            // from its quantization tables) — the paper's PSP re-encodes at
            // a *consistent* quality, not a hardcoded default, which keeps
            // receiver-side PSNR floors calibrated.
            let bytes = puppies_jpeg::encode_rgb(&transformed, coeff.quality_estimate())
                .map_err(puppies_core::PuppiesError::from)?;
            (bytes, ServedPath::PixelFallback)
        };
        params.transformation = Some(t.clone());
        let new_bytes: Arc<[u8]> = new_bytes.into();
        let new_params: Arc<[u8]> = params.to_bytes().into();
        self.cache
            .insert(key, new_bytes.clone(), new_params.clone());
        Ok(((new_bytes, new_params), CacheOutcome::Miss, served))
    }

    /// Serves many `(photo, transformation)` requests, fanning across the
    /// ambient worker pool ([`puppies_core::parallel::current`]). Results
    /// come back in request order; each is exactly what
    /// [`PspServer::download_transformed`] would return. The store is not
    /// modified.
    pub fn transform_batch(
        &self,
        requests: &[(PhotoId, Transformation)],
    ) -> Vec<Result<ServedPair>> {
        let _span = puppies_obs::span("psp.transform_batch", "psp");
        puppies_core::parallel::current().map_indexed(requests.len(), |i| {
            let (id, ref t) = requests[i];
            self.download_transformed(id, t)
        })
    }

    /// Downloads many photos, fanning across the ambient worker pool.
    /// Results come back in request order.
    pub fn download_batch(&self, ids: &[PhotoId]) -> Vec<Result<Arc<[u8]>>> {
        let _span = puppies_obs::span("psp.download_batch", "psp");
        puppies_core::parallel::current().map_indexed(ids.len(), |i| self.download(ids[i]))
    }

    /// Number of stored photos (O(1) — maintained incrementally).
    pub fn len(&self) -> usize {
        self.photo_count.load(Ordering::Relaxed) as usize
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes stored for a photo (image + parameter blob) — the
    /// cloud-storage usage the paper's overhead experiments track.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn storage_footprint(&self, id: PhotoId) -> Result<usize> {
        self.lookup(id).map(|p| p.size() as usize)
    }

    /// Aggregate bytes stored across every photo (images + parameter
    /// blobs). Maintained incrementally on upload/transform, so this is an
    /// O(1) read — it backs the `psp.storage_bytes` gauge.
    pub fn storage_footprint_total(&self) -> u64 {
        self.footprint.load(Ordering::Relaxed)
    }

    /// Transform-result cache counters (hits, misses, evictions, resident
    /// bytes).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The most recent requests served (oldest first), up to the
    /// configured [`PspConfig::request_log_capacity`]. Entries are `Copy`,
    /// the snapshot Vec is preallocated, and each shard's log lock is held
    /// only for the memcpy out — a diagnostic read never stalls the
    /// serving path.
    pub fn recent_requests(&self) -> Vec<RequestEntry> {
        let mut out: Vec<RequestEntry> = Vec::with_capacity(self.shards.len() * self.log_capacity);
        for shard in self.shards.iter() {
            let log = shard.log.lock();
            out.extend(log.iter().copied());
        }
        // Merge shard segments into one timeline. Any globally-recent entry
        // survives per-shard eviction (an entry is only evicted once
        // `log_capacity` newer entries hit the *same* shard), so the newest
        // `log_capacity` overall are always present.
        out.sort_unstable_by_key(|e| e.seq);
        if out.len() > self.log_capacity {
            out.drain(..out.len() - self.log_capacity);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, ProtectOptions};
    use puppies_image::{Rect, Rgb, RgbImage};

    fn upload_test_photo(server: &PspServer) -> (PhotoId, OwnerKey) {
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 2, y as u8 * 2, 77));
        let key = OwnerKey::from_seed([4u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(16, 16, 24, 24)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        let id = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        (id, key)
    }

    #[test]
    fn upload_download_roundtrip() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let bytes = server.download(id).unwrap();
        assert!(CoeffImage::decode(&bytes).is_ok());
        assert!(server.download_params(id).is_ok());
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn download_is_zero_copy() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let a = server.download(id).unwrap();
        let b = server.download(id).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "downloads share the stored allocation");
    }

    #[test]
    fn unknown_photo_errors() {
        let server = PspServer::new();
        assert!(matches!(
            server.download(PhotoId(99)),
            Err(PspError::UnknownPhoto(PhotoId(99)))
        ));
    }

    #[test]
    fn transform_updates_bytes_and_params() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let before = server.download(id).unwrap();
        server.transform(id, &Transformation::Rotate180).unwrap();
        let after = server.download(id).unwrap();
        assert_ne!(before, after);
        let params = PublicParams::from_bytes(&server.download_params(id).unwrap()).unwrap();
        assert_eq!(params.transformation, Some(Transformation::Rotate180));
    }

    #[test]
    fn double_transform_rejected() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server.transform(id, &Transformation::Rotate90).unwrap();
        assert!(server.transform(id, &Transformation::Rotate90).is_err());
    }

    #[test]
    fn pixel_domain_transform_supported() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let bytes = server.download(id).unwrap();
        let coeff = CoeffImage::decode(&bytes).unwrap();
        assert_eq!((coeff.width(), coeff.height()), (32, 32));
    }

    #[test]
    fn pixel_fallback_reencodes_at_source_quality() {
        // Protect at a non-default quality: the pixel-domain fallback must
        // re-encode at that quality (recovered from the DQT), not at a
        // hardcoded 75.
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 3, y as u8, 130));
        let key = OwnerKey::from_seed([9u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(8, 8, 16, 16)],
            &key,
            &ProtectOptions::default().with_quality(60),
        )
        .unwrap();
        let server = PspServer::new();
        let id = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let coeff = CoeffImage::decode(&server.download(id).unwrap()).unwrap();
        assert_eq!(coeff.quality_estimate(), 60);
    }

    #[test]
    fn download_transformed_serves_without_mutating() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let original = server.download(id).unwrap();
        let (tb, tp) = server
            .download_transformed(id, &Transformation::Rotate90)
            .unwrap();
        // Store untouched.
        assert!(Arc::ptr_eq(&original, &server.download(id).unwrap()));
        let params = PublicParams::from_bytes(&tp).unwrap();
        assert_eq!(params.transformation, Some(Transformation::Rotate90));
        // The served result equals what an in-place transform would store.
        let server2 = PspServer::new();
        let (id2, _) = upload_test_photo(&server2);
        server2.transform(id2, &Transformation::Rotate90).unwrap();
        assert_eq!(tb, server2.download(id2).unwrap());
        assert_eq!(tp, server2.download_params(id2).unwrap());
    }

    #[test]
    fn repeat_download_transformed_hits_cache() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let t = Transformation::Rotate180;
        let first = server.download_transformed(id, &t).unwrap();
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let second = server.download_transformed(id, &t).unwrap();
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(
            Arc::ptr_eq(&first.0, &second.0),
            "hit shares the cached Arc"
        );
        assert_eq!(first.1, second.1);
    }

    #[test]
    fn cache_content_addressing_spans_identical_photos() {
        // Two uploads with identical bytes+params are the same content:
        // the second photo's first transform is already a cache hit.
        let server = PspServer::new();
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8, y as u8, 5));
        let key = OwnerKey::from_seed([7u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(0, 0, 16, 16)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        let a = server
            .upload(protected.bytes.clone(), protected.params.to_bytes())
            .unwrap();
        let b = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        let t = Transformation::FlipHorizontal;
        let ra = server.download_transformed(a, &t).unwrap();
        let rb = server.download_transformed(b, &t).unwrap();
        assert_eq!(ra.0, rb.0);
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_disabled_still_serves_correct_bytes() {
        let cached = PspServer::new();
        let uncached = PspServer::with_config(PspConfig::uncached());
        let (id_c, _) = upload_test_photo(&cached);
        let (id_u, _) = upload_test_photo(&uncached);
        let t = Transformation::Rotate270;
        let rc = cached.download_transformed(id_c, &t).unwrap();
        let ru = uncached.download_transformed(id_u, &t).unwrap();
        assert_eq!(rc.0, ru.0);
        assert_eq!(rc.1, ru.1);
        assert_eq!(uncached.cache_stats().hits, 0);
    }

    #[test]
    fn batch_apis_match_serial_results() {
        let server = PspServer::new();
        let (id1, _) = upload_test_photo(&server);
        let (id2, _) = upload_test_photo(&server);
        let requests = vec![
            (id1, Transformation::Rotate90),
            (id2, Transformation::FlipVertical),
            (PhotoId(999), Transformation::Rotate90),
            (id1, Transformation::Rotate90),
        ];
        let batch = server.transform_batch(&requests);
        assert_eq!(batch.len(), 4);
        assert!(batch[2].is_err());
        let serial = server
            .download_transformed(id1, &Transformation::Rotate90)
            .unwrap();
        assert_eq!(batch[0].as_ref().unwrap().0, serial.0);
        assert_eq!(
            batch[3].as_ref().unwrap().0,
            batch[0].as_ref().unwrap().0,
            "duplicate request in one batch serves identical bytes"
        );
        let downloads = server.download_batch(&[id1, PhotoId(999), id2]);
        assert_eq!(
            downloads[0].as_ref().unwrap(),
            &server.download(id1).unwrap()
        );
        assert!(downloads[1].is_err());
        assert_eq!(
            downloads[2].as_ref().unwrap(),
            &server.download(id2).unwrap()
        );
    }

    #[test]
    fn concurrent_uploads_get_distinct_ids() {
        let server = PspServer::new();
        let pool = puppies_core::parallel::WorkerPool::new(4);
        let ids: std::collections::HashSet<_> = pool
            .map_indexed(8, |_| server.upload(vec![1, 2, 3], vec![]).unwrap())
            .into_iter()
            .collect();
        assert_eq!(ids.len(), 8);
        assert_eq!(server.len(), 8);
    }

    #[test]
    fn storage_footprint_counts_both_parts() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let fp = server.storage_footprint(id).unwrap();
        let img = server.download(id).unwrap().len();
        let params = server.download_params(id).unwrap().len();
        assert_eq!(fp, img + params);
    }

    #[test]
    fn footprint_total_tracks_uploads_and_transforms() {
        let server = PspServer::new();
        assert_eq!(server.storage_footprint_total(), 0);
        let (id, _) = upload_test_photo(&server);
        let id2 = server.upload(vec![0u8; 10], vec![0u8; 5]).unwrap();
        let expect = server.storage_footprint(id).unwrap() as u64
            + server.storage_footprint(id2).unwrap() as u64;
        assert_eq!(server.storage_footprint_total(), expect);
        server.transform(id, &Transformation::Rotate180).unwrap();
        let expect = server.storage_footprint(id).unwrap() as u64
            + server.storage_footprint(id2).unwrap() as u64;
        assert_eq!(server.storage_footprint_total(), expect);
    }

    #[test]
    fn upload_saturates_instead_of_wrapping_ids() {
        let server = PspServer::new();
        server.next_id.store(u64::MAX - 1, Ordering::Relaxed);
        let id = server.upload(vec![1], vec![]).unwrap();
        assert_eq!(id, PhotoId(u64::MAX - 1));
        // The id space is now spent: further uploads must fail rather than
        // recycle an id, and the failure must not clobber the stored photo.
        assert!(matches!(
            server.upload(vec![2], vec![]),
            Err(PspError::IdsExhausted)
        ));
        assert!(matches!(
            server.upload(vec![3], vec![]),
            Err(PspError::IdsExhausted)
        ));
        assert_eq!(server.download(id).unwrap().as_ref(), &[1u8][..]);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn restore_photo_replays_uploads_and_overwrites() {
        let server = PspServer::new();
        server.restore_photo(PhotoId(3), vec![1, 2, 3], vec![9]);
        server.restore_photo(PhotoId(7), vec![4, 5], vec![]);
        assert_eq!(server.len(), 2);
        assert_eq!(server.download(PhotoId(3)).unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(server.storage_footprint_total(), 4 + 2);
        // A Transform replay overwrites in place without changing counts.
        server.restore_photo(PhotoId(3), vec![6; 10], vec![7; 2]);
        assert_eq!(server.len(), 2);
        assert_eq!(server.download(PhotoId(3)).unwrap().as_ref(), &[6u8; 10]);
        assert_eq!(server.storage_footprint_total(), 12 + 2);
        // The allocator resumes past the highest restored id.
        let id = server.upload(vec![0], vec![]).unwrap();
        assert_eq!(id, PhotoId(8));
    }

    #[test]
    fn request_log_is_structured_and_bounded() {
        let server = PspServer::new();
        let id = server.upload(vec![7u8; 12], vec![0u8; 3]).unwrap();
        server.download(id).unwrap();
        let _ = server.download(PhotoId(999));
        let log = server.recent_requests();
        assert_eq!(log.len(), 3);
        assert_eq!((log[0].op, log[0].bytes, log[0].ok), ("upload", 15, true));
        assert_eq!((log[1].op, log[1].bytes, log[1].ok), ("download", 12, true));
        assert_eq!((log[2].op, log[2].id, log[2].ok), ("download", 999, false));
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        // Bounded: hammer one door past capacity and check eviction.
        for _ in 0..(REQUEST_LOG_CAPACITY + 10) {
            server.download(id).unwrap();
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), REQUEST_LOG_CAPACITY);
        assert!(log.iter().all(|e| e.op == "download"));
    }

    #[test]
    fn request_log_capacity_is_configurable() {
        let server = PspServer::with_config(PspConfig {
            request_log_capacity: 8,
            ..PspConfig::default()
        });
        assert_eq!(server.request_log_capacity(), 8);
        let id = server.upload(vec![1u8; 4], vec![]).unwrap();
        for _ in 0..40 {
            server.download(id).unwrap();
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), 8);
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        // A zero request stays usable (clamped to 1).
        let min = PspServer::with_config(PspConfig {
            request_log_capacity: 0,
            ..PspConfig::default()
        });
        assert_eq!(min.request_log_capacity(), 1);
    }

    #[test]
    fn request_log_records_cache_outcome() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let t = Transformation::Rotate90;
        server.download_transformed(id, &t).unwrap();
        server.download_transformed(id, &t).unwrap();
        let log = server.recent_requests();
        let served: Vec<_> = log
            .iter()
            .filter(|e| e.op == "download_transformed")
            .collect();
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].cache, CacheOutcome::Miss);
        assert_eq!(served[1].cache, CacheOutcome::Hit);
        assert!(log
            .iter()
            .filter(|e| e.op == "upload" || e.op == "download")
            .all(|e| e.cache == CacheOutcome::NotApplicable));
    }

    #[test]
    fn request_log_merges_across_shards_in_order() {
        // Photos land on different shards; the merged log is still one
        // seq-ordered timeline with the newest entries retained.
        let server = PspServer::new();
        let ids: Vec<_> = (0..20)
            .map(|i| server.upload(vec![i as u8; 8], vec![]).unwrap())
            .collect();
        for round in 0..30 {
            for &id in &ids {
                let _ = server.download(id);
                let _ = round;
            }
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), REQUEST_LOG_CAPACITY);
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        // All retained entries are from the tail of the request stream.
        let total_requests = 20 + 30 * 20;
        assert!(log[0].seq >= total_requests - REQUEST_LOG_CAPACITY as u64);
    }
}
