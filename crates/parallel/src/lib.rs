//! The shared worker-pool execution layer behind every parallel stage of
//! the PuPPIeS pipeline (JPEG transform bands, per-component protection,
//! PSP batch uploads, experiment sweeps).
//!
//! # Design
//!
//! One [`WorkerPool`] owns a set of persistent worker threads fed from a
//! single MPMC job queue. Work is submitted through the *scoped* entry
//! points [`WorkerPool::map_indexed`] / [`WorkerPool::run`], which:
//!
//! - return only after every submitted job has finished, so jobs may
//!   borrow from the caller's stack (the internal lifetime erasure is
//!   sound because of exactly this barrier);
//! - reassemble results **in submission order**, which is what makes
//!   every parallel pipeline stage bit-identical to its serial
//!   counterpart regardless of worker count or scheduling;
//! - make the waiting thread *help*: while its own jobs are
//!   outstanding it drains other jobs from the shared queue instead of
//!   blocking. Nested parallelism (a batch job that calls `protect`,
//!   which fans out JPEG bands) therefore cannot deadlock even with one
//!   worker thread.
//!
//! A pool with `threads <= 1` executes everything inline on the calling
//! thread; combined with ordered reassembly this gives the
//! SERIAL == PARALLEL property that `crates/core/tests/parallel.rs`
//! checks end-to-end.
//!
//! # Pool selection
//!
//! Code that wants parallelism calls [`current`], which resolves to (in
//! order): the pool installed by the nearest enclosing [`with_pool`] on
//! this thread, else the process-wide [`WorkerPool::global`] pool (sized
//! by `PUPPIES_THREADS` or the machine's available parallelism).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crossbeam::channel::{self, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed job as accepted by [`WorkerPool::run`] — it may capture
/// references into the caller's stack, which is sound because `run` does
/// not return until every job has finished.
pub type ScopedJob<'env> = Box<dyn FnOnce() + Send + 'env>;

struct Inner {
    sender: Option<Sender<Job>>,
    receiver: Receiver<Job>,
    threads: usize,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Closing the queue lets every worker's `recv` return Err.
        self.sender.take();
        for handle in self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// A pool of persistent worker threads with a shared job queue.
///
/// Cloning is cheap (the clone shares the same threads and queue).
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` workers. `threads <= 1` creates a
    /// *serial* pool: no threads are spawned and all scoped entry points
    /// run inline on the caller.
    pub fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::unbounded::<Job>();
        let spawned = if threads <= 1 { 0 } else { threads };
        let workers = (0..spawned)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("puppies-worker-{i}"))
                    .spawn(move || loop {
                        // Per-worker busy/idle accounting. Behind the
                        // `enabled` branch the loop is exactly the old
                        // `while let Ok(job) = rx.recv() { job() }`.
                        let idle_from = puppies_obs::enabled().then(Instant::now);
                        let Ok(job) = rx.recv() else { break };
                        if let Some(t) = idle_from {
                            puppies_obs::counter_add("pool.idle_ns", t.elapsed().as_nanos() as u64);
                        }
                        let busy_from = puppies_obs::enabled().then(Instant::now);
                        job();
                        if let Some(t) = busy_from {
                            puppies_obs::counter_add("pool.busy_ns", t.elapsed().as_nanos() as u64);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            inner: Arc::new(Inner {
                sender: Some(sender),
                receiver,
                threads: threads.max(1),
                workers: Mutex::new(workers),
            }),
        }
    }

    /// The worker count this pool was created with (minimum 1; 1 means
    /// serial inline execution).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The process-wide default pool. Sized by the `PUPPIES_THREADS`
    /// environment variable when set (a positive integer; `1` forces
    /// serial execution), else by the machine's available parallelism.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
    }

    /// Runs `count` jobs `f(0) .. f(count-1)` on the pool and returns
    /// their results **in index order**. Panics from jobs are propagated
    /// to the caller (after all jobs have settled).
    pub fn map_indexed<'env, R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send + 'env,
        F: Fn(usize) -> R + Sync + 'env,
    {
        if self.inner.threads <= 1 || count <= 1 {
            return (0..count).map(f).collect();
        }

        let (result_tx, result_rx) = channel::unbounded::<(usize, Result<R, Panic>)>();
        let pending = AtomicUsize::new(count);
        {
            let f = &f;
            let pending = &pending;
            for index in 0..count {
                let tx = result_tx.clone();
                // Submission-side observability: capture the enqueue time
                // and the submitting span so the job keeps its lineage on
                // whichever thread runs it. `submitted` is `None` with no
                // subscriber, and everything below short-circuits.
                let submitted = puppies_obs::enabled().then(Instant::now);
                let parent = if submitted.is_some() {
                    puppies_obs::gauge_add("pool.queue_depth", 1);
                    puppies_obs::counter_add("pool.jobs", 1);
                    puppies_obs::current_span_id()
                } else {
                    0
                };
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let _span = match submitted {
                        Some(t) => {
                            puppies_obs::gauge_add("pool.queue_depth", -1);
                            puppies_obs::record("pool.job_wait", t.elapsed().as_nanos() as u64);
                            Some(puppies_obs::span_with_parent("pool.job", "pool", parent))
                        }
                        None => None,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(index))).map_err(Panic);
                    pending.fetch_sub(1, Ordering::Release);
                    // The receiver lives until `map_indexed` returns, and
                    // the pool never drops jobs, so this cannot fail.
                    let _ = tx.send((index, outcome));
                });
                // SAFETY: this function does not return until all `count`
                // results have been received below, so every borrow the
                // job captures ('env, plus `pending`/`result_tx` on this
                // stack frame) strictly outlives the job's execution.
                let job: Job = unsafe { std::mem::transmute(job) };
                self.inner
                    .sender
                    .as_ref()
                    .expect("pool queue open while pool is alive")
                    .send(job)
                    .expect("worker queue disconnected");
            }
        }
        drop(result_tx);

        let mut slots: Vec<Option<Result<R, Panic>>> = Vec::new();
        slots.resize_with(count, || None);
        let mut received = 0;
        while received < count {
            // Help: run queued jobs (ours or anyone's) instead of
            // blocking, so nested fan-outs cannot deadlock.
            match result_rx.try_recv() {
                Ok((index, outcome)) => {
                    slots[index] = Some(outcome);
                    received += 1;
                }
                Err(_) => match self.inner.receiver.try_recv() {
                    Ok(job) => job(),
                    Err(_) => {
                        if pending.load(Ordering::Acquire) == 0 {
                            // All jobs finished; results are in flight.
                            if let Ok((index, outcome)) = result_rx.recv() {
                                slots[index] = Some(outcome);
                                received += 1;
                            }
                        } else {
                            std::thread::yield_now();
                        }
                    }
                },
            }
        }

        slots
            .into_iter()
            .map(|slot| match slot.expect("every index reported") {
                Ok(value) => value,
                Err(Panic(payload)) => resume_unwind(payload),
            })
            .collect()
    }

    /// Maps `f` over `items`, returning results in item order.
    pub fn map_slice<'env, T, R, F>(&self, items: &'env [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + 'env,
        F: Fn(&'env T) -> R + Sync + 'env,
    {
        self.map_indexed(items.len(), move |i| f(&items[i]))
    }

    /// Runs independent closures to completion (no results). Panics are
    /// propagated after all jobs settle.
    pub fn run<'env>(&self, jobs: Vec<ScopedJob<'env>>) {
        let mut jobs = jobs;
        let slots: Vec<Mutex<Option<ScopedJob<'env>>>> =
            jobs.drain(..).map(|j| Mutex::new(Some(j))).collect();
        self.map_indexed(slots.len(), |i| {
            let job = slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each job runs once");
            job();
        });
    }
}

/// A captured panic payload, carried from a worker back to the caller.
struct Panic(Box<dyn std::any::Any + Send + 'static>);

fn default_threads() -> usize {
    if let Ok(value) = std::env::var("PUPPIES_THREADS") {
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "PUPPIES_THREADS={value:?} is not a positive integer; \
                 falling back to available parallelism"
            ),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Vec<WorkerPool>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Installs `pool` as the pool [`current`] resolves to on this thread
/// for the duration of `f`. Nestable; the innermost installation wins.
pub fn with_pool<R>(pool: &WorkerPool, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|stack| stack.borrow_mut().push(pool.clone()));
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            CURRENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    let _guard = PopOnDrop;
    f()
}

/// The pool parallel pipeline stages should use: the innermost
/// [`with_pool`] installation on this thread, else the global pool.
pub fn current() -> WorkerPool {
    CURRENT
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| WorkerPool::global().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.map_indexed(8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn map_slice_borrows_caller_data() {
        let pool = WorkerPool::new(2);
        let data: Vec<String> = (0..16).map(|i| format!("item-{i}")).collect();
        let lens = pool.map_slice(&data, |s| s.len());
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn results_match_serial_for_any_worker_count() {
        let work = |i: usize| -> u64 {
            // Non-commutative mixing so ordering bugs show up.
            (0..100u64).fold(i as u64, |acc, k| {
                acc.wrapping_mul(6364136223846793005).wrapping_add(k)
            })
        };
        let serial = WorkerPool::new(1).map_indexed(33, work);
        for threads in [2, 4, 8] {
            let parallel = WorkerPool::new(threads).map_indexed(33, work);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        // One worker thread + nesting: the inner map must be helped to
        // completion by threads blocked in the outer map.
        let pool = WorkerPool::new(2);
        let out = pool.map_indexed(4, |i| {
            let inner: usize = pool.map_indexed(4, |j| i * 10 + j).into_iter().sum();
            inner
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn job_panics_propagate_to_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn with_pool_overrides_current_per_thread() {
        let serial = WorkerPool::new(1);
        let outer = current().threads();
        let inner = with_pool(&serial, || current().threads());
        assert_eq!(inner, 1);
        assert_eq!(current().threads(), outer);
    }

    #[test]
    fn pool_metrics_recorded_when_subscribed() {
        let session = puppies_obs::Obs::install();
        let pool = WorkerPool::new(2);
        let out = pool.map_indexed(16, |i| i * 2);
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        let obs = session.finish().unwrap();
        let snap = obs.metrics().snapshot();
        let jobs = snap
            .counters
            .iter()
            .find(|(n, _)| n == "pool.jobs")
            .map_or(0, |&(_, v)| v);
        assert!(jobs >= 16, "submitted jobs counted: {jobs}");
        let (_, lat) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "pool.job")
            .expect("job latency histogram");
        assert!(lat.count >= 16);
        // Queue drained: depth gauge returned to zero.
        let depth = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "pool.queue_depth")
            .map_or(0, |&(_, v)| v);
        assert_eq!(depth, 0);
    }

    #[test]
    fn run_executes_every_job() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..20)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
