//! Dataset profiles mirroring Table III, with lazy deterministic
//! generation.

use crate::scene::{self, GroundTruth};
use puppies_image::{Rgb, RgbImage};
use puppies_vision::face::FaceGeometry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which paper dataset a profile stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// PASCAL VOC 2007: mixed low/medium-resolution object scenes.
    Pascal,
    /// INRIA Holidays: high-resolution landscapes.
    Inria,
    /// Caltech faces: frontal-face photographs.
    CaltechFaces,
    /// FERET: portrait gallery with repeat identities.
    Feret,
}

/// A generatable dataset: kind, image count and resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetProfile {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// Number of images generated.
    pub count: usize,
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// The paper's image count, for Table III reporting.
    pub paper_count: usize,
    /// The paper's typical resolution, for Table III reporting.
    pub paper_resolution: (u32, u32),
}

impl DatasetProfile {
    /// PASCAL stand-in: defaults to 64 images at 496×328 (paper: 4,952 at
    /// ~500×330).
    pub fn pascal() -> Self {
        DatasetProfile {
            kind: DatasetKind::Pascal,
            count: 64,
            width: 496,
            height: 328,
            paper_count: 4952,
            paper_resolution: (500, 330),
        }
    }

    /// INRIA stand-in: defaults to 8 images at 1224×1632 (paper: 1,491 at
    /// 2448×3264 — halved resolution keeps the full suite laptop-sized;
    /// override with [`DatasetProfile::with_resolution`] for paper scale).
    pub fn inria() -> Self {
        DatasetProfile {
            kind: DatasetKind::Inria,
            count: 8,
            width: 1224,
            height: 1632,
            paper_count: 1491,
            paper_resolution: (2448, 3264),
        }
    }

    /// Caltech-faces stand-in: defaults to 32 images at 448×296 (paper:
    /// 450 at 896×592).
    pub fn caltech() -> Self {
        DatasetProfile {
            kind: DatasetKind::CaltechFaces,
            count: 32,
            width: 448,
            height: 296,
            paper_count: 450,
            paper_resolution: (896, 592),
        }
    }

    /// FERET stand-in: defaults to 120 portraits at 256×384 (paper:
    /// 11,338).
    pub fn feret() -> Self {
        DatasetProfile {
            kind: DatasetKind::Feret,
            count: 120,
            width: 256,
            height: 384,
            paper_count: 11_338,
            paper_resolution: (256, 384),
        }
    }

    /// Overrides the generated image count.
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Overrides the generated resolution.
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Short name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self.kind {
            DatasetKind::Pascal => "PASCAL",
            DatasetKind::Inria => "INRIA",
            DatasetKind::CaltechFaces => "Caltech",
            DatasetKind::Feret => "FERET",
        }
    }
}

/// One generated image with its annotations.
#[derive(Debug, Clone)]
pub struct LabeledImage {
    /// Stable id within the dataset (index).
    pub id: u64,
    /// The image.
    pub image: RgbImage,
    /// Ground-truth regions.
    pub truth: GroundTruth,
    /// Identity label for face datasets (0 for others).
    pub identity: u32,
}

/// Lazily generates the images of a profile. Generation is deterministic
/// in `(profile, seed, index)`, so iterating twice (or in parallel chunks)
/// yields identical data.
pub fn generate(profile: DatasetProfile, seed: u64) -> impl Iterator<Item = LabeledImage> {
    (0..profile.count).map(move |i| generate_one(profile, seed, i))
}

/// Generates the `index`-th image of a profile directly (O(1) in the
/// index), for parallel sweeps.
///
/// # Panics
/// Panics if `index >= profile.count`.
pub fn generate_one(profile: DatasetProfile, seed: u64, index: usize) -> LabeledImage {
    assert!(index < profile.count, "index {index} out of range");
    let identities = FaceIdentitySet::new(seed ^ 0xFACE, 24);
    let i = index;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let (image, truth, identity) = match profile.kind {
        DatasetKind::Pascal => {
            let (img, t) = scene::pascal_scene(&mut rng, profile.width, profile.height);
            (img, t, 0)
        }
        DatasetKind::Inria => {
            let (img, t) = if i % 3 == 0 {
                scene::landscape_with_people(&mut rng, profile.width, profile.height)
            } else {
                scene::landscape(&mut rng, profile.width, profile.height)
            };
            (img, t, 0)
        }
        DatasetKind::CaltechFaces => {
            let id = (i % identities.len()) as u32;
            let (geom, skin) = identities.get(id);
            let (img, t) = scene::portrait(&mut rng, profile.width, profile.height, &geom, skin);
            (img, t, id)
        }
        DatasetKind::Feret => {
            let id = (i % identities.len()) as u32;
            let (geom, skin) = identities.get(id);
            let (img, t) = scene::portrait(&mut rng, profile.width, profile.height, &geom, skin);
            (img, t, id)
        }
    };
    LabeledImage {
        id: i as u64,
        image,
        truth,
        identity,
    }
}

/// A fixed set of face identities (geometry + skin tone) shared across a
/// dataset so recognition has repeat subjects.
#[derive(Debug, Clone)]
pub struct FaceIdentitySet {
    identities: Vec<(FaceGeometry, Rgb)>,
}

impl FaceIdentitySet {
    /// Creates `n` identities deterministically from a seed.
    pub fn new(seed: u64, n: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let identities = (0..n.max(1))
            .map(|_| {
                let g = scene::random_geometry(&mut rng);
                let base = rng.gen_range(150..230);
                let skin = Rgb::new(
                    base,
                    (base as f32 * rng.gen_range(0.78..0.88)) as u8,
                    (base as f32 * rng.gen_range(0.60..0.72)) as u8,
                );
                (g, skin)
            })
            .collect();
        FaceIdentitySet { identities }
    }

    /// Number of identities.
    pub fn len(&self) -> usize {
        self.identities.len()
    }

    /// Whether the set is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.identities.is_empty()
    }

    /// Identity `id` (wrapping).
    pub fn get(&self, id: u32) -> (FaceGeometry, Rgb) {
        self.identities[id as usize % self.identities.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::pascal()
            .with_count(3)
            .with_resolution(128, 96);
        let a: Vec<_> = generate(p, 7).collect();
        let b: Vec<_> = generate(p, 7).collect();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.image, y.image);
            assert_eq!(x.truth, y.truth);
        }
        // Different seed differs.
        let c: Vec<_> = generate(p, 8).collect();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn profiles_have_paper_metadata() {
        assert_eq!(DatasetProfile::pascal().paper_count, 4952);
        assert_eq!(DatasetProfile::inria().paper_resolution, (2448, 3264));
        assert_eq!(DatasetProfile::feret().paper_count, 11_338);
        assert_eq!(DatasetProfile::caltech().name(), "Caltech");
    }

    #[test]
    fn feret_identities_repeat() {
        let p = DatasetProfile::feret()
            .with_count(48)
            .with_resolution(64, 96);
        let imgs: Vec<_> = generate(p, 3).collect();
        let mut counts = std::collections::HashMap::new();
        for img in &imgs {
            *counts.entry(img.identity).or_insert(0) += 1;
        }
        assert!(counts.values().any(|&c| c >= 2), "no repeat identities");
        assert!(counts.len() >= 10, "too few identities: {}", counts.len());
    }

    #[test]
    fn caltech_images_carry_face_truth() {
        let p = DatasetProfile::caltech()
            .with_count(4)
            .with_resolution(160, 120);
        for img in generate(p, 5) {
            assert_eq!(img.truth.faces.len(), 1);
        }
    }

    #[test]
    fn resolution_override_respected() {
        let p = DatasetProfile::inria()
            .with_count(1)
            .with_resolution(200, 150);
        let img = generate(p, 1).next().unwrap();
        assert_eq!((img.image.width(), img.image.height()), (200, 150));
    }

    #[test]
    fn identity_set_deterministic() {
        let a = FaceIdentitySet::new(9, 10);
        let b = FaceIdentitySet::new(9, 10);
        assert_eq!(a.len(), 10);
        for i in 0..10 {
            assert_eq!(a.get(i).0, b.get(i).0);
            assert_eq!(a.get(i).1, b.get(i).1);
        }
    }
}
