//! Procedural scene renderers with ground-truth annotations.

use crate::noise::ValueNoise;
use puppies_image::font::{draw_text, text_width, GLYPH_H};
use puppies_image::{draw, Point, Rect, Rgb, RgbImage};
use puppies_vision::face::{render_face, FaceGeometry};
use rand::Rng;

/// Ground-truth annotations of a generated scene.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// Face bounding boxes.
    pub faces: Vec<Rect>,
    /// Sensitive-text bounding boxes (SSNs, plates).
    pub texts: Vec<Rect>,
    /// Salient-object bounding boxes.
    pub objects: Vec<Rect>,
}

impl GroundTruth {
    /// All annotated regions, in face/text/object order.
    pub fn all_regions(&self) -> Vec<Rect> {
        self.faces
            .iter()
            .chain(self.texts.iter())
            .chain(self.objects.iter())
            .copied()
            .collect()
    }
}

/// A random per-identity face geometry within the detector's supported
/// ranges.
pub fn random_geometry<R: Rng + ?Sized>(rng: &mut R) -> FaceGeometry {
    FaceGeometry {
        eye_spread: rng.gen_range(0.16..0.26),
        eye_size: rng.gen_range(0.05..0.09),
        mouth_width: rng.gen_range(0.12..0.24),
        brow_tilt: rng.gen_range(-3..=3),
    }
}

fn skin_tone<R: Rng + ?Sized>(rng: &mut R) -> Rgb {
    let base = rng.gen_range(150..230);
    Rgb::new(
        base,
        (base as f32 * rng.gen_range(0.78..0.88)) as u8,
        (base as f32 * rng.gen_range(0.60..0.72)) as u8,
    )
}

/// Adds fine-grained sensor-noise-like texture so synthetic scenes carry
/// realistic JPEG entropy (natural photos are far less compressible than
/// clean vector renders; the storage experiments depend on honest
/// denominators).
fn add_grain(img: &mut RgbImage, seed: u64, amp: f32) {
    let n1 = ValueNoise::new(seed ^ 0x6AA1, 1.1);
    let n2 = ValueNoise::new(seed ^ 0x6AA2, 3.1);
    let n3 = ValueNoise::new(seed ^ 0x6AA3, 6.7); // mid-scale: keeps low-frequency AC busy
    for y in 0..img.height() {
        for x in 0..img.width() {
            let g = (n1.at(x, y) - 0.5) * amp
                + (n2.at(x, y) - 0.5) * amp * 0.7
                + (n3.at(x, y) - 0.5) * amp * 1.3;
            let p = img.get(x, y);
            img.set(
                x,
                y,
                Rgb::new(
                    (p.r as f32 + g).clamp(0.0, 255.0) as u8,
                    (p.g as f32 + g * 0.9).clamp(0.0, 255.0) as u8,
                    (p.b as f32 + g * 1.1).clamp(0.0, 255.0) as u8,
                ),
            );
        }
    }
}

fn textured_background(img: &mut RgbImage, seed: u64, top: Rgb, bottom: Rgb, amp: f32) {
    let noise = ValueNoise::new(seed, 24.0);
    let h = img.height();
    for y in 0..h {
        let t = y as f32 / h.max(1) as f32;
        let base = top.lerp(bottom, t);
        for x in 0..img.width() {
            let n = (noise.fbm(x, y, 3) - 0.5) * amp;
            let c = Rgb::new(
                (base.r as f32 + n).clamp(0.0, 255.0) as u8,
                (base.g as f32 + n).clamp(0.0, 255.0) as u8,
                (base.b as f32 + n).clamp(0.0, 255.0) as u8,
            );
            img.set(x, y, c);
        }
    }
}

/// A landscape: sky, mountain ridge, textured ground — the INRIA-style
/// content whose only experimental role is realistic size/spectrum.
pub fn landscape<R: Rng + ?Sized>(rng: &mut R, width: u32, height: u32) -> (RgbImage, GroundTruth) {
    let mut img = RgbImage::new(width, height);
    let seed = rng.gen();
    textured_background(
        &mut img,
        seed,
        Rgb::new(110, 160, 230),
        Rgb::new(200, 220, 245),
        18.0,
    );
    // Mountain ridge via 1-D fractal noise.
    let ridge_noise = ValueNoise::new(seed ^ 0xABCD, 48.0);
    let ridge_base = height as f32 * rng.gen_range(0.35..0.55);
    let rock = Rgb::new(90, 80, 75);
    for x in 0..width {
        let ridge = ridge_base + (ridge_noise.fbm(x, 0, 4) - 0.5) * height as f32 * 0.3;
        for y in (ridge.max(0.0) as u32)..height {
            let shade = ridge_noise.fbm(x, y, 3);
            let c = Rgb::new(
                (rock.r as f32 * (0.7 + shade * 0.6)) as u8,
                (rock.g as f32 * (0.7 + shade * 0.6)) as u8,
                (rock.b as f32 * (0.7 + shade * 0.6)) as u8,
            );
            img.set(x, y, c);
        }
    }
    // Ground strip.
    let ground_y = height * 3 / 4;
    let grass = ValueNoise::new(seed ^ 0x5151, 10.0);
    for y in ground_y..height {
        for x in 0..width {
            let n = grass.fbm(x, y, 3);
            img.set(
                x,
                y,
                Rgb::new(
                    (40.0 + 40.0 * n) as u8,
                    (110.0 + 70.0 * n) as u8,
                    (40.0 + 30.0 * n) as u8,
                ),
            );
        }
    }
    // Sun.
    let sx = rng.gen_range(width / 8..width / 2) as i32;
    let sy = rng.gen_range(height / 10..height / 4) as i32;
    let sr = (width / 24).max(4) as i32;
    draw::fill_ellipse(&mut img, sx, sy, sr, sr, Rgb::new(255, 240, 180));
    add_grain(&mut img, seed ^ 0x9A11, 18.0);
    (img, GroundTruth::default())
}

/// A landscape with one or two people standing in it — the Fig. 1 scenario
/// (sensitive people, public background).
pub fn landscape_with_people<R: Rng + ?Sized>(
    rng: &mut R,
    width: u32,
    height: u32,
) -> (RgbImage, GroundTruth) {
    let (mut img, mut truth) = landscape(rng, width, height);
    let n_people = rng.gen_range(1..=2usize);
    for i in 0..n_people {
        let fw = (width / 5).clamp(30, 110);
        let fh = fw * 5 / 4;
        let x = (width / 5 + (i as u32) * width / 3 + rng.gen_range(0..width / 8))
            .min(width.saturating_sub(fw + 1));
        let y = (height / 3 + rng.gen_range(0..height / 8)).min(height.saturating_sub(fh * 2));
        let bbox = Rect::new(x, y, fw, fh);
        // Body below the face.
        let body = Rect::new(
            x.saturating_sub(fw / 4),
            y + fh,
            fw + fw / 2,
            (fh * 3 / 2).min(height - y - fh),
        );
        draw::fill_rect(
            &mut img,
            body,
            Rgb::new(
                rng.gen_range(40..200),
                rng.gen_range(40..200),
                rng.gen_range(40..200),
            ),
        );
        render_face(&mut img, bbox, skin_tone(rng), &random_geometry(rng));
        truth.faces.push(bbox);
    }
    add_grain(&mut img, rng.gen::<u64>() ^ 0x9A55, 5.0);
    (img, truth)
}

/// A street scene with a car and a readable license plate, per Fig. 15.
pub fn street_with_plate<R: Rng + ?Sized>(
    rng: &mut R,
    width: u32,
    height: u32,
) -> (RgbImage, GroundTruth) {
    let mut img = RgbImage::new(width, height);
    let seed = rng.gen();
    textured_background(
        &mut img,
        seed,
        Rgb::new(170, 180, 200),
        Rgb::new(120, 120, 125),
        12.0,
    );
    let mut truth = GroundTruth::default();
    // Building with windows.
    let b = Rect::new(0, 0, width / 2, height / 2);
    draw::fill_rect(&mut img, b, Rgb::new(150, 120, 100));
    for wy in 0..3u32 {
        for wx in 0..4u32 {
            let win = Rect::new(
                b.x + 8 + wx * (b.w / 4),
                b.y + 8 + wy * (b.h / 3),
                (b.w / 6).max(2),
                (b.h / 5).max(2),
            );
            draw::fill_rect(&mut img, win, Rgb::new(70, 90, 120));
        }
    }
    // Car body.
    let car_w = width * 2 / 5;
    let car_h = height / 4;
    let car_x = rng.gen_range(width / 8..width / 3);
    let car_y = height - car_h - height / 10;
    let car_color = Rgb::new(
        rng.gen_range(60..220),
        rng.gen_range(40..120),
        rng.gen_range(40..120),
    );
    let car = Rect::new(car_x, car_y, car_w, car_h);
    draw::fill_rect(&mut img, car, car_color);
    draw::fill_polygon(
        &mut img,
        &[
            Point::new(car_x as i32 + car_w as i32 / 6, car_y as i32),
            Point::new(car_x as i32 + car_w as i32 * 5 / 6, car_y as i32),
            Point::new(
                car_x as i32 + car_w as i32 * 2 / 3,
                car_y as i32 - car_h as i32 / 2,
            ),
            Point::new(
                car_x as i32 + car_w as i32 / 3,
                car_y as i32 - car_h as i32 / 2,
            ),
        ],
        car_color,
    );
    // Wheels.
    let wheel_r = (car_h / 3) as i32;
    for wx in [car_x + car_w / 5, car_x + car_w * 4 / 5] {
        draw::fill_ellipse(
            &mut img,
            wx as i32,
            (car_y + car_h) as i32,
            wheel_r,
            wheel_r,
            Rgb::new(25, 25, 25),
        );
    }
    truth.objects.push(Rect::new(
        car_x,
        car_y.saturating_sub(car_h / 2),
        car_w,
        car_h + car_h / 2,
    ));
    // License plate with readable text.
    let plate_text: String = format!(
        "{}{}{} {}{}{}",
        rng.gen_range(b'A'..=b'Z') as char,
        rng.gen_range(b'A'..=b'Z') as char,
        rng.gen_range(b'A'..=b'Z') as char,
        rng.gen_range(0..10),
        rng.gen_range(0..10),
        rng.gen_range(0..10),
    );
    let scale = (width / 200).max(1);
    let tw = text_width(&plate_text, scale);
    let th = GLYPH_H * scale;
    let px = car_x + car_w / 2 - tw.min(car_w) / 2;
    let py = car_y + car_h - th - 2;
    let plate_bg = Rect::new(px.saturating_sub(3), py.saturating_sub(2), tw + 6, th + 4);
    draw::fill_rect(&mut img, plate_bg, Rgb::new(240, 240, 230));
    draw_text(&mut img, &plate_text, px, py, scale, Rgb::new(15, 15, 25));
    truth.texts.push(plate_bg);
    add_grain(&mut img, seed ^ 0x9A22, 16.0);
    (img, truth)
}

/// An indoor scene with a document carrying an SSN — the "private text"
/// motivating example.
pub fn document_scene<R: Rng + ?Sized>(
    rng: &mut R,
    width: u32,
    height: u32,
) -> (RgbImage, GroundTruth) {
    let mut img = RgbImage::new(width, height);
    let seed = rng.gen();
    textured_background(
        &mut img,
        seed,
        Rgb::new(160, 140, 120),
        Rgb::new(110, 95, 80),
        14.0,
    );
    let mut truth = GroundTruth::default();
    // A paper sheet.
    let sheet = Rect::new(width / 6, height / 6, width * 3 / 5, height * 3 / 5);
    draw::fill_rect(&mut img, sheet, Rgb::new(245, 243, 235));
    draw::stroke_rect(&mut img, sheet, Rgb::new(180, 178, 170));
    // Filler lines.
    for i in 0..4u32 {
        let y = sheet.y + 8 + i * (sheet.h / 8);
        draw::line(
            &mut img,
            Point::new(sheet.x as i32 + 6, y as i32),
            Point::new((sheet.right() - 8) as i32, y as i32),
            Rgb::new(150, 150, 160),
        );
    }
    // The SSN.
    let ssn = format!(
        "{:03}-{:02}-{:04}",
        rng.gen_range(1..900),
        rng.gen_range(1..99),
        rng.gen_range(1..9999)
    );
    let scale = (width / 220).max(1);
    let tx = sheet.x + 8;
    let ty = sheet.y + sheet.h / 2;
    let rect = draw_text(&mut img, &ssn, tx, ty, scale, Rgb::new(20, 20, 30));
    truth.texts.push(rect.inflate_clamped(2, img.bounds()));
    truth.objects.push(sheet);
    add_grain(&mut img, seed ^ 0x9A33, 14.0);
    (img, truth)
}

/// A portrait in the Caltech/FERET mold: one large frontal face on a
/// plain-ish background. Returns the face bbox as ground truth.
pub fn portrait<R: Rng + ?Sized>(
    rng: &mut R,
    width: u32,
    height: u32,
    geometry: &FaceGeometry,
    skin: Rgb,
) -> (RgbImage, GroundTruth) {
    let mut img = RgbImage::new(width, height);
    let seed = rng.gen();
    let bg = Rgb::new(
        rng.gen_range(50..110),
        rng.gen_range(60..120),
        rng.gen_range(80..140),
    );
    textured_background(&mut img, seed, bg, bg.lerp(Rgb::BLACK, 0.3), 10.0);
    let fw = (width * 3 / 5).min(height * 12 / 25) & !1;
    let fh = fw * 5 / 4;
    let fx = width / 2 - fw / 2 + rng.gen_range(0..width / 16);
    let fy = height / 6 + rng.gen_range(0..height / 12);
    let bbox = Rect::new(
        fx.min(width - fw - 1),
        fy.min(height.saturating_sub(fh + 1)),
        fw,
        fh,
    );
    // Shoulders.
    let shoulder = Rect::new(
        bbox.x.saturating_sub(fw / 3),
        bbox.bottom().saturating_sub(4),
        fw + 2 * (fw / 3),
        height - bbox.bottom().saturating_sub(4).min(height),
    );
    draw::fill_rect(
        &mut img,
        shoulder,
        Rgb::new(
            rng.gen_range(30..160),
            rng.gen_range(30..160),
            rng.gen_range(30..160),
        ),
    );
    render_face(&mut img, bbox, skin, geometry);
    add_grain(&mut img, seed ^ 0x9A44, 8.0);
    (
        img,
        GroundTruth {
            faces: vec![bbox],
            texts: Vec::new(),
            objects: Vec::new(),
        },
    )
}

/// A PASCAL-flavoured mixed scene: randomly one of the object-bearing
/// generators.
pub fn pascal_scene<R: Rng + ?Sized>(
    rng: &mut R,
    width: u32,
    height: u32,
) -> (RgbImage, GroundTruth) {
    match rng.gen_range(0..4u32) {
        0 => landscape_with_people(rng, width, height),
        1 => street_with_plate(rng, width, height),
        2 => document_scene(rng, width, height),
        _ => landscape(rng, width, height),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_are_deterministic() {
        for gen in [
            landscape_with_people as fn(&mut StdRng, u32, u32) -> (RgbImage, GroundTruth),
            street_with_plate,
            document_scene,
            pascal_scene,
        ] {
            let (a, ta) = gen(&mut StdRng::seed_from_u64(5), 160, 120);
            let (b, tb) = gen(&mut StdRng::seed_from_u64(5), 160, 120);
            assert_eq!(a, b);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn ground_truth_boxes_inside_image() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..8 {
            let (img, truth) = pascal_scene(&mut rng, 200, 144);
            for r in truth.all_regions() {
                assert!(
                    img.bounds().contains_rect(r.intersect(img.bounds())),
                    "{r:?}"
                );
                assert!(!r.intersect(img.bounds()).is_empty(), "{r:?} fully outside");
            }
        }
    }

    #[test]
    fn people_scene_faces_are_detectable() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..5 {
            let (img, truth) = landscape_with_people(&mut rng, 240, 180);
            for face in &truth.faces {
                total += 1;
                let dets = puppies_vision::detect_faces(
                    &img.to_gray(),
                    &puppies_vision::FaceDetectorParams::default(),
                );
                if dets.iter().any(|d| d.rect.iou(*face) > 0.2) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 2 >= total,
            "detector found {hits}/{total} ground-truth faces"
        );
    }

    #[test]
    fn plate_text_is_detectable() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut hits = 0;
        for _ in 0..5 {
            let (img, truth) = street_with_plate(&mut rng, 240, 180);
            let boxes = puppies_vision::text::detect_text_blocks(
                &img.to_gray(),
                &puppies_vision::text::TextDetectorParams::default(),
            );
            let plate = truth.texts[0];
            if boxes.iter().any(|b| b.overlaps(plate)) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "plate found in only {hits}/5 scenes");
    }

    #[test]
    fn portrait_truth_matches_render() {
        let mut rng = StdRng::seed_from_u64(41);
        let geom = random_geometry(&mut rng);
        let (img, truth) = portrait(&mut rng, 128, 192, &geom, Rgb::new(220, 185, 150));
        assert_eq!(truth.faces.len(), 1);
        let bbox = truth.faces[0];
        assert!(img.bounds().contains_rect(bbox));
        // The face area is brighter than the background corners.
        let face_mean = img
            .crop(Rect::new(
                bbox.x + bbox.w / 4,
                bbox.y + bbox.h / 4,
                bbox.w / 2,
                bbox.h / 2,
            ))
            .unwrap()
            .to_gray()
            .mean();
        let corner_mean = img.crop(Rect::new(0, 0, 16, 16)).unwrap().to_gray().mean();
        assert!(face_mean > corner_mean + 20.0);
    }
}
