//! Procedural synthetic datasets for the PuPPIeS reproduction.
//!
//! The paper evaluates on four public datasets (Table III): PASCAL VOC
//! 2007, INRIA Holidays, the Caltech face set and FERET. This environment
//! has no network access, so each dataset is replaced by a seeded
//! procedural generator with the *same role*:
//!
//! | Paper dataset | Profile | What matters for the experiments |
//! |---|---|---|
//! | PASCAL (4,952 @ ~500×330) | [`DatasetProfile::pascal`] | natural-image DCT statistics at low/medium resolution, objects/text/faces with ground truth |
//! | INRIA (1,491 @ 2448×3264) | [`DatasetProfile::inria`] | high-resolution size distribution |
//! | Caltech faces (450 @ 896×592) | [`DatasetProfile::caltech`] | detectable frontal faces |
//! | FERET (11,338 @ 256×384) | [`DatasetProfile::feret`] | re-identifiable identities for recognition |
//!
//! Default image *counts* are scaled down so the full experiment suite
//! runs on a laptop; every profile exposes [`DatasetProfile::with_count`]
//! to restore paper-scale sweeps. Image content is deterministic in the
//! seed, so experiments are exactly reproducible.

pub mod dataset;
pub mod noise;
pub mod scene;

pub use dataset::{
    generate, generate_one, DatasetKind, DatasetProfile, FaceIdentitySet, LabeledImage,
};
pub use scene::GroundTruth;
