//! Deterministic value noise for natural-looking textures.
//!
//! JPEG-relevant statistics (coefficient distributions, run lengths) come
//! from smooth low-frequency structure plus mild texture; a seeded value
//! noise gives both without any asset files.

/// Smooth 2-D value noise in `[0, 1]`: bilinear interpolation of a hashed
/// integer lattice with `cell`-pixel spacing.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
    cell: f32,
}

impl ValueNoise {
    /// Creates a noise field with the given lattice spacing in pixels.
    ///
    /// # Panics
    /// Panics if `cell` is not positive.
    pub fn new(seed: u64, cell: f32) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        ValueNoise { seed, cell }
    }

    fn lattice(&self, ix: i64, iy: i64) -> f32 {
        // SplitMix64-style hash of (seed, ix, iy).
        let mut z = self
            .seed
            .wrapping_add((ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 40) as f32 / ((1u64 << 24) as f32)
    }

    /// Sample the noise at pixel coordinates.
    pub fn at(&self, x: u32, y: u32) -> f32 {
        let fx = x as f32 / self.cell;
        let fy = y as f32 / self.cell;
        let ix = fx.floor() as i64;
        let iy = fy.floor() as i64;
        let tx = fx - ix as f32;
        let ty = fy - iy as f32;
        // Smoothstep for C1 continuity.
        let sx = tx * tx * (3.0 - 2.0 * tx);
        let sy = ty * ty * (3.0 - 2.0 * ty);
        let v00 = self.lattice(ix, iy);
        let v10 = self.lattice(ix + 1, iy);
        let v01 = self.lattice(ix, iy + 1);
        let v11 = self.lattice(ix + 1, iy + 1);
        let top = v00 + (v10 - v00) * sx;
        let bot = v01 + (v11 - v01) * sx;
        top + (bot - top) * sy
    }

    /// Fractal (octave-summed) noise in `[0, 1]`.
    pub fn fbm(&self, x: u32, y: u32, octaves: u32) -> f32 {
        let mut sum = 0.0;
        let mut amp = 0.5;
        let mut total = 0.0;
        for o in 0..octaves.max(1) {
            let n = ValueNoise {
                seed: self
                    .seed
                    .wrapping_add((o as u64).wrapping_mul(0x5851_F42D_4C95_7F2D)),
                cell: (self.cell / (1 << o) as f32).max(1.0),
            };
            sum += amp * n.at(x, y);
            total += amp;
            amp *= 0.5;
        }
        sum / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = ValueNoise::new(42, 16.0);
        let b = ValueNoise::new(42, 16.0);
        let c = ValueNoise::new(43, 16.0);
        for (x, y) in [(0u32, 0u32), (7, 3), (100, 255)] {
            assert_eq!(a.at(x, y), b.at(x, y));
        }
        let differs = (0..50u32).any(|i| a.at(i, i) != c.at(i, i));
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn values_in_unit_range() {
        let n = ValueNoise::new(7, 8.0);
        for y in 0..64 {
            for x in 0..64 {
                let v = n.at(x, y);
                assert!((0.0..=1.0).contains(&v), "({x},{y}): {v}");
                let f = n.fbm(x, y, 4);
                assert!((0.0..=1.0).contains(&f), "fbm ({x},{y}): {f}");
            }
        }
    }

    #[test]
    fn noise_is_smooth() {
        let n = ValueNoise::new(9, 16.0);
        for y in 1..63u32 {
            for x in 1..63u32 {
                let d = (n.at(x, y) - n.at(x - 1, y)).abs();
                assert!(d < 0.25, "jump {d} at ({x},{y})");
            }
        }
    }

    #[test]
    fn noise_is_not_constant() {
        let n = ValueNoise::new(3, 8.0);
        let (mut lo, mut hi) = (1.0f32, 0.0f32);
        for y in 0..64 {
            for x in 0..64 {
                lo = lo.min(n.at(x, y));
                hi = hi.max(n.at(x, y));
            }
        }
        assert!(hi - lo > 0.3, "range {lo}..{hi} too flat");
    }
}
