//! Property-based invariants of the JPEG substrate.

use proptest::prelude::*;
use puppies_jpeg::dct;
use puppies_jpeg::huffman::{
    category, decode_block, encode_block, extend_magnitude, magnitude_bits, BitReader, BitWriter,
    HuffDecoder, HuffEncoder, HuffTable,
};
use puppies_jpeg::zigzag::{from_zigzag, to_zigzag};
use puppies_jpeg::QuantTable;

/// Centered spatial samples, the domain the FDCT actually sees.
fn arb_spatial_block() -> impl Strategy<Value = [f32; 64]> {
    proptest::collection::vec(-128f32..=127f32, 64).prop_map(|v| {
        let mut b = [0f32; 64];
        b.copy_from_slice(&v);
        b
    })
}

/// Dense float coefficient blocks within JPEG's representable range.
fn arb_coeff_block() -> impl Strategy<Value = [f32; 64]> {
    proptest::collection::vec(-1024f32..=1023f32, 64).prop_map(|v| {
        let mut b = [0f32; 64];
        b.copy_from_slice(&v);
        b
    })
}

fn arb_block() -> impl Strategy<Value = [i32; 64]> {
    // DC in [-1024, 1023], AC in [-1023, 1023], biased toward sparsity
    // like real blocks.
    (
        -1024i32..=1023,
        proptest::collection::vec((0usize..63, -1023i32..=1023), 0..24),
    )
        .prop_map(|(dc, acs)| {
            let mut b = [0i32; 64];
            b[0] = dc;
            for (i, v) in acs {
                b[1 + i] = v;
            }
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn zigzag_roundtrips(block in arb_block()) {
        prop_assert_eq!(from_zigzag(&to_zigzag(&block)), block);
    }

    #[test]
    fn magnitude_coding_roundtrips(v in -2047i32..=2047) {
        let len = category(v);
        prop_assert_eq!(extend_magnitude(magnitude_bits(v, len), len), v);
    }

    #[test]
    fn category_is_bit_length(v in -2047i32..=2047) {
        let c = category(v);
        prop_assert!(v.unsigned_abs() < (1u32 << c));
        if v != 0 {
            prop_assert!(v.unsigned_abs() >= (1u32 << (c - 1)));
        }
    }

    #[test]
    fn bit_io_roundtrips(chunks in proptest::collection::vec((any::<u32>(), 0u32..=24), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, l) in &chunks {
            w.put(v, l);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &(v, l) in &chunks {
            let masked = if l == 0 { 0 } else { v & ((1u32 << l) - 1) };
            prop_assert_eq!(r.bits(l).unwrap(), masked);
        }
    }

    #[test]
    fn block_entropy_roundtrips_standard_tables(
        blocks in proptest::collection::vec(arb_block(), 1..8),
    ) {
        let dc_t = HuffTable::std_dc_luma();
        let ac_t = HuffTable::std_ac_luma();
        let enc_dc = HuffEncoder::new(&dc_t);
        let enc_ac = HuffEncoder::new(&ac_t);
        let dec_dc = HuffDecoder::new(&dc_t);
        let dec_ac = HuffDecoder::new(&ac_t);
        let mut w = BitWriter::new();
        let mut pred = 0;
        for b in &blocks {
            let zz = to_zigzag(b);
            pred = encode_block(&mut w, &zz, pred, &enc_dc, &enc_ac).unwrap();
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        let mut pred = 0;
        for b in &blocks {
            let (zz, p) = decode_block(&mut r, pred, &dec_dc, &dec_ac).unwrap();
            pred = p;
            prop_assert_eq!(from_zigzag(&zz), *b);
        }
    }

    #[test]
    fn optimized_tables_encode_their_source_blocks(
        blocks in proptest::collection::vec(arb_block(), 1..8),
    ) {
        use puppies_jpeg::huffman::{tally_block, SymbolFreqs};
        let mut freqs = SymbolFreqs::new();
        let mut pred = 0;
        for b in &blocks {
            pred = tally_block(&mut freqs, &to_zigzag(b), pred);
        }
        let dc_t = HuffTable::build_optimized(&freqs.dc);
        let ac_t = if freqs.ac.iter().any(|&f| f > 0) {
            HuffTable::build_optimized(&freqs.ac)
        } else {
            HuffTable::std_ac_luma()
        };
        let enc_dc = HuffEncoder::new(&dc_t);
        let enc_ac = HuffEncoder::new(&ac_t);
        let dec_dc = HuffDecoder::new(&dc_t);
        let dec_ac = HuffDecoder::new(&ac_t);
        let mut w = BitWriter::new();
        let mut pred = 0;
        for b in &blocks {
            pred = encode_block(&mut w, &to_zigzag(b), pred, &enc_dc, &enc_ac).unwrap();
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        let mut pred = 0;
        for b in &blocks {
            let (zz, p) = decode_block(&mut r, pred, &dec_dc, &dec_ac).unwrap();
            pred = p;
            prop_assert_eq!(from_zigzag(&zz), *b);
        }
    }

    #[test]
    fn optimized_tables_are_canonical_for_any_freqs(
        entries in proptest::collection::vec((0u8..=255, 1u64..1_000_000), 1..64),
    ) {
        let mut freqs = [0u64; 256];
        for (s, f) in entries {
            freqs[s as usize] = f;
        }
        // Must not panic and must validate as canonical.
        let t = HuffTable::build_optimized(&freqs);
        let total: usize = t.counts().iter().map(|&c| c as usize).sum();
        prop_assert_eq!(total, t.values().len());
        // Every nonzero-frequency symbol must have a code.
        let enc = HuffEncoder::new(&t);
        for (s, &f) in freqs.iter().enumerate() {
            if f > 0 {
                prop_assert!(enc.code_len(s as u8) >= 1);
                prop_assert!(enc.code_len(s as u8) <= 16);
            }
        }
    }

    #[test]
    fn quantize_error_bounded_by_half_step(
        raw in proptest::collection::vec(-1000f32..1000f32, 64),
        quality in 1u8..=100,
    ) {
        let t = QuantTable::luma(quality);
        let mut block = [0f32; 64];
        block.copy_from_slice(&raw);
        let deq = t.dequantize(&t.quantize(&block));
        for i in 0..64 {
            let err = (deq[i] - block[i]).abs();
            prop_assert!(err <= t.steps()[i] as f32 / 2.0 + 1e-2, "i={} err={}", i, err);
        }
    }

    #[test]
    fn requantize_matches_direct(
        block in arb_block(),
        qa in 1u8..=100,
        qb in 1u8..=100,
    ) {
        let fine = QuantTable::luma(qa);
        let coarse = QuantTable::luma(qb);
        let re = fine.requantize_to(&block, &coarse);
        let direct = coarse.quantize(&fine.dequantize(&block));
        prop_assert_eq!(re, direct);
    }

    #[test]
    fn fast_fdct_matches_reference_within_1e3(block in arb_spatial_block()) {
        let reference = dct::forward(&block);
        let scaled = dct::forward_scaled(&block);
        for u in 0..8 {
            for v in 0..8 {
                let i = u * 8 + v;
                let descaled = scaled[i] as f64 / (8.0 * dct::aan_scale(u) * dct::aan_scale(v));
                prop_assert!(
                    (descaled - reference[i] as f64).abs() < 5e-3,
                    "({u},{v}): fast {} vs reference {}", descaled, reference[i]
                );
            }
        }
    }

    #[test]
    fn fast_idct_matches_reference_within_1e3(coeffs in arb_coeff_block()) {
        let reference = dct::inverse(&coeffs);
        let mut scaled = [0.0f32; 64];
        for u in 0..8 {
            for v in 0..8 {
                let i = u * 8 + v;
                scaled[i] = (coeffs[i] as f64 * dct::aan_scale(u) * dct::aan_scale(v) / 8.0) as f32;
            }
        }
        let fast = dct::inverse_scaled(&scaled);
        for i in 0..64 {
            prop_assert!(
                (fast[i] as f64 - reference[i] as f64).abs() < 1e-2,
                "idx {i}: fast {} vs reference {}", fast[i], reference[i]
            );
        }
    }

    #[test]
    fn fast_path_quantize_within_one_of_reference_across_annex_k_presets(
        block in arb_spatial_block(),
    ) {
        // The production encode path (forward_scaled + FoldedQuant) runs in
        // f32 with a single folded multiplier, so it is not bit-identical to
        // the f64 reference path (forward + QuantTable::quantize); quantizer
        // rounding can land one step away on near-tie inputs. The exactness
        // contract is SIMD == scalar (see the cross-backend identity tests);
        // here we pin the fast path to within one quantizer step of the
        // reference at every Annex-K preset, for both component tables.
        let reference_freq = dct::forward(&block);
        let fast_freq = dct::forward_scaled(&block);
        for quality in [25u8, 50, 75, 90] {
            for table in [QuantTable::luma(quality), QuantTable::chroma(quality)] {
                let reference = table.quantize(&reference_freq);
                let fast = table.folded().quantize_scaled(&fast_freq);
                for i in 0..64 {
                    prop_assert!(
                        (fast[i] - reference[i]).abs() <= 1,
                        "quality {} idx {}: fast {} vs reference {}",
                        quality, i, fast[i], reference[i]
                    );
                }
            }
        }
    }

    #[test]
    fn fast_path_dequantizes_identically(
        block in arb_block(),
        quality in 1u8..=100,
    ) {
        // Decode side: dequantize + inverse_scaled must reproduce the
        // reference dequantize + inverse samples to fast-path tolerance.
        let table = QuantTable::luma(quality);
        let dequantized = table.dequantize(&block);
        let reference = dct::inverse(&dequantized);
        let fast = dct::inverse_scaled(&table.folded().dequantize_scaled(&block));
        // The IDCT mixes all 64 coefficients into every sample, so f32
        // roundoff in the fast path scales with the block's peak dequantized
        // magnitude (up to coeff*step ~ 2.6e5 at quality 1), not with the
        // local sample value.
        let peak = dequantized.iter().fold(0.0f64, |m, &v| m.max(v.abs() as f64));
        let tol = 5e-3 + peak * 1e-5;
        for i in 0..64 {
            prop_assert!(
                ((fast[i] - reference[i]) as f64).abs() < tol,
                "idx {i}: fast {} vs reference {}", fast[i], reference[i]
            );
        }
    }
}
