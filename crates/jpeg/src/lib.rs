//! A baseline-sequential JPEG codec built from scratch for the PuPPIeS
//! reproduction.
//!
//! The paper's perturbation schemes operate on *quantized DCT coefficients*
//! of JPEG images (§II-A, §IV-B), and its storage-overhead experiments
//! (Table II, Figs. 17–18) measure *entropy-coded file sizes*, so the
//! reproduction needs a real codec, not a stand-in:
//!
//! - [`dct`] — exact 8×8 forward/inverse DCT-II
//! - [`quant`] — Annex-K quantization tables with IJG quality scaling
//! - [`zigzag`] — coefficient scan order
//! - [`huffman`] — canonical Huffman coding with both the Annex-K default
//!   tables and *per-image optimized* tables (the mechanism behind
//!   PuPPIeS-C, §IV-B.3)
//! - [`coeff`] — [`CoeffImage`], the quantized-coefficient representation
//!   perturbation operates on
//! - [`codec`] — JFIF marker framing: encode a [`CoeffImage`] to bytes and
//!   parse it back
//!
//! # Example
//!
//! ```
//! use puppies_image::RgbImage;
//! use puppies_jpeg::{CoeffImage, EncodeOptions};
//!
//! let img = RgbImage::filled(32, 32, puppies_image::Rgb::new(90, 120, 200));
//! let coeffs = CoeffImage::from_rgb(&img, 75);
//! let bytes = coeffs.encode(&EncodeOptions::default())?;
//! let back = CoeffImage::decode(&bytes)?;
//! assert_eq!(back.to_rgb().width(), 32);
//! # Ok::<(), puppies_jpeg::JpegError>(())
//! ```

pub mod codec;
pub mod coeff;
pub mod dct;
pub mod huffman;
pub mod quant;
pub mod zigzag;

pub use codec::{EncodeOptions, HuffmanMode};
pub use coeff::{Block, CoeffImage, Component, BLOCK_LEN, BLOCK_SIZE};
pub use quant::QuantTable;

use std::fmt;

/// Maximum legal quantized-coefficient value (inclusive) in baseline JPEG.
///
/// The paper's Lemma III.1 and the perturbation wrap-around all work in the
/// ring `[-1024, 1023]` (mod 2048); these bounds are enforced throughout.
pub const COEFF_MAX: i32 = 1023;
/// Minimum legal quantized-coefficient value (inclusive).
pub const COEFF_MIN: i32 = -1024;
/// Size of the coefficient ring (`COEFF_MAX - COEFF_MIN + 1`).
pub const COEFF_MODULUS: i32 = 2048;
/// Maximum legal AC coefficient (inclusive). Baseline JPEG caps AC
/// magnitude categories at 10, so AC lives in `[-1023, 1023]` while DC may
/// reach `-1024`; see the [`huffman`] module docs for why PuPPIeS-style
/// perturbation must respect the tighter ring.
pub const AC_MAX: i32 = 1023;
/// Minimum legal AC coefficient (inclusive).
pub const AC_MIN: i32 = -1023;
/// Size of the AC coefficient ring (`AC_MAX - AC_MIN + 1`).
pub const AC_MODULUS: i32 = 2047;

/// Errors produced by JPEG encoding and decoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum JpegError {
    /// The bitstream is not a valid baseline JPEG this decoder supports.
    Malformed(String),
    /// A feature of the bitstream (progressive scan, 12-bit precision,
    /// subsampling, arithmetic coding...) is outside the baseline subset
    /// this codec implements.
    Unsupported(String),
    /// A coefficient is outside `[-1024, 1023]` and cannot be entropy coded.
    CoefficientRange {
        /// The offending value.
        value: i32,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for JpegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JpegError::Malformed(m) => write!(f, "malformed JPEG stream: {m}"),
            JpegError::Unsupported(m) => write!(f, "unsupported JPEG feature: {m}"),
            JpegError::CoefficientRange { value } => {
                write!(f, "DCT coefficient {value} outside [-1024, 1023]")
            }
            JpegError::Io(e) => write!(f, "jpeg io error: {e}"),
        }
    }
}

impl std::error::Error for JpegError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JpegError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JpegError {
    fn from(e: std::io::Error) -> Self {
        JpegError::Io(e)
    }
}

/// Convenient result alias for JPEG operations.
pub type Result<T> = std::result::Result<T, JpegError>;

/// Encodes an RGB image as a baseline JPEG at the given quality (1..=100).
///
/// Convenience wrapper over [`CoeffImage::from_rgb`] + [`CoeffImage::encode`].
///
/// # Errors
/// Returns an error if entropy coding fails (it cannot for images produced
/// by [`CoeffImage::from_rgb`], but the signature is fallible for parity
/// with perturbed pipelines).
pub fn encode_rgb(img: &puppies_image::RgbImage, quality: u8) -> Result<Vec<u8>> {
    CoeffImage::from_rgb(img, quality).encode(&EncodeOptions::default())
}

/// Decodes a baseline JPEG produced by this crate (or any 4:4:4/grayscale
/// baseline encoder) back to RGB.
///
/// # Errors
/// Returns [`JpegError::Malformed`] or [`JpegError::Unsupported`] for
/// streams outside the supported subset.
pub fn decode_rgb(bytes: &[u8]) -> Result<puppies_image::RgbImage> {
    Ok(CoeffImage::decode(bytes)?.to_rgb())
}
