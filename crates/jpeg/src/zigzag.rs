//! The JPEG zigzag scan order.
//!
//! Quantized blocks are serialized in zigzag order so runs of trailing
//! zeros compress well — the property PuPPIeS-Z exploits by skipping
//! already-zero coefficients (§IV-B.4).

/// `ZIGZAG[i]` is the row-major index of the `i`-th coefficient in zigzag
/// order (index 0 is the DC term).
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// `UNZIGZAG[r]` is the zigzag position of row-major index `r`
/// (the inverse permutation of [`ZIGZAG`]).
pub const UNZIGZAG: [usize; 64] = {
    let mut inv = [0usize; 64];
    let mut i = 0;
    while i < 64 {
        inv[ZIGZAG[i]] = i;
        i += 1;
    }
    inv
};

/// Reorders a row-major block into zigzag order.
pub fn to_zigzag(block: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (i, o) in out.iter_mut().enumerate() {
        *o = block[ZIGZAG[i]];
    }
    out
}

/// Restores a zigzag-ordered block to row-major order.
pub fn from_zigzag(zz: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (i, &v) in zz.iter().enumerate() {
        out[ZIGZAG[i]] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inverse_permutation_correct() {
        for i in 0..64 {
            assert_eq!(UNZIGZAG[ZIGZAG[i]], i);
            assert_eq!(ZIGZAG[UNZIGZAG[i]], i);
        }
    }

    #[test]
    fn known_prefix_matches_spec() {
        // First nine entries of the standard order.
        assert_eq!(&ZIGZAG[..9], &[0, 1, 8, 16, 9, 2, 3, 10, 17]);
        // Last entry is the bottom-right corner.
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn roundtrip() {
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = i as i32 * 3 - 50;
        }
        assert_eq!(from_zigzag(&to_zigzag(&block)), block);
    }

    #[test]
    fn dc_stays_first() {
        let mut block = [0i32; 64];
        block[0] = 999;
        assert_eq!(to_zigzag(&block)[0], 999);
    }
}
