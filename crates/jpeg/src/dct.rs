//! The 8×8 type-II discrete cosine transform and its inverse.
//!
//! Two implementations live here:
//!
//! * [`forward`] / [`inverse`] — the textbook O(N²) orthonormal transform,
//!   computed with f64 cosine tables and f64 accumulation. Exactness matters
//!   more than raw speed for this pair: the shadow-ROI reconstruction
//!   (§IV-C) depends on the transform being linear and invertible to float
//!   precision, and it doubles as the differential-test reference for the
//!   fast path.
//! * [`forward_scaled`] / [`inverse_scaled`] — the AAN (Arai–Agui–Nakajima)
//!   factorization: 5 multiplies + 29 adds per 1-D pass instead of a
//!   64-multiply matrix pass. Outputs carry a per-coefficient scale factor
//!   of `8·aan(u)·aan(v)` that callers fold into the quantization step
//!   (see `quant::FoldedQuant`), so descaling costs nothing extra.

/// Number of samples per block side.
pub const N: usize = 8;

// cos((2x + 1) u π / 16) lookup, indexed [u][x].
fn cos_table() -> &'static [[f64; N]; N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f64; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f64; N]; N];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

#[inline]
fn alpha(u: usize) -> f64 {
    if u == 0 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

fn dct_1d(input: &[f64; N], t: &[[f64; N]; N]) -> [f64; N] {
    let mut out = [0.0f64; N];
    for (u, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for x in 0..N {
            acc += input[x] * t[u][x];
        }
        *o = 0.5 * alpha(u) * acc;
    }
    out
}

fn idct_1d(input: &[f64; N], t: &[[f64; N]; N]) -> [f64; N] {
    let mut out = [0.0f64; N];
    for (x, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for u in 0..N {
            acc += alpha(u) * input[u] * t[u][x];
        }
        *o = 0.5 * acc;
    }
    out
}

/// Forward 8×8 DCT-II of a row-major spatial block (typically level-shifted
/// samples in `[-128, 127]`). Output is row-major frequency coefficients
/// with the DC term at index 0.
pub fn forward(block: &[f32; 64]) -> [f32; 64] {
    let t = cos_table(); // once per block, shared by all 16 1-D passes
    let mut tmp = [0.0f64; 64];
    // Rows.
    for r in 0..N {
        let mut row = [0.0f64; N];
        for (x, v) in row.iter_mut().enumerate() {
            *v = block[r * N + x] as f64;
        }
        let out = dct_1d(&row, t);
        tmp[r * N..(r + 1) * N].copy_from_slice(&out);
    }
    // Columns.
    let mut out = [0.0f32; 64];
    for c in 0..N {
        let mut col = [0.0f64; N];
        for r in 0..N {
            col[r] = tmp[r * N + c];
        }
        let tcol = dct_1d(&col, t);
        for r in 0..N {
            out[r * N + c] = tcol[r] as f32;
        }
    }
    out
}

/// Inverse 8×8 DCT (type III), undoing [`forward`] to float precision.
pub fn inverse(block: &[f32; 64]) -> [f32; 64] {
    let t = cos_table(); // once per block, shared by all 16 1-D passes
    let mut tmp = [0.0f64; 64];
    // Columns.
    for c in 0..N {
        let mut col = [0.0f64; N];
        for r in 0..N {
            col[r] = block[r * N + c] as f64;
        }
        let tcol = idct_1d(&col, t);
        for r in 0..N {
            tmp[r * N + c] = tcol[r];
        }
    }
    // Rows.
    let mut out = [0.0f32; 64];
    for r in 0..N {
        let mut row = [0.0f64; N];
        row.copy_from_slice(&tmp[r * N..(r + 1) * N]);
        let trow = idct_1d(&row, t);
        for (x, &v) in trow.iter().enumerate() {
            out[r * N + x] = v as f32;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// AAN scaled fast path (f32 workspaces, explicit SIMD lanes).
// ---------------------------------------------------------------------------

use puppies_image::simd::Simd8;

// Rotation constants for the AAN flowgraph, with ck = cos(kπ/16).
const C4: f64 = std::f64::consts::FRAC_1_SQRT_2; // c4
const C6: f64 = 0.382_683_432_365_089_8; // c6
const C2_SUB_C6: f64 = 0.541_196_100_146_197; // c2 − c6
const C2_ADD_C6: f64 = 1.306_562_964_876_376_6; // c2 + c6
const SQRT2: f64 = std::f64::consts::SQRT_2; // 2·c4
const TWO_C2: f64 = 1.847_759_065_022_573_5; // 2·c2
const TWO_C2_SUB_C6: f64 = 1.082_392_200_292_394; // 2·(c2 − c6)
const TWO_C2_ADD_C6: f64 = 2.613_125_929_752_753; // 2·(c2 + c6)

// f32 narrowings for the lane kernels. The fast path runs entirely in
// single precision; the f64 pair above stays for `aan_scale` and the
// orthonormal reference.
const C4F: f32 = C4 as f32;
const C6F: f32 = C6 as f32;
const C2_SUB_C6F: f32 = C2_SUB_C6 as f32;
const C2_ADD_C6F: f32 = C2_ADD_C6 as f32;
const SQRT2F: f32 = SQRT2 as f32;
const TWO_C2F: f32 = TWO_C2 as f32;
const TWO_C2_SUB_C6F: f32 = TWO_C2_SUB_C6 as f32;
const TWO_C2_ADD_C6F: f32 = TWO_C2_ADD_C6 as f32;

/// The AAN per-axis scale factor: `aan(0) = 1`, `aan(k) = √2·cos(kπ/16)`.
///
/// [`forward_scaled`] output at frequency `(u, v)` equals the orthonormal
/// coefficient from [`forward`] times `8·aan(u)·aan(v)`; [`inverse_scaled`]
/// expects its input pre-multiplied by `aan(u)·aan(v)/8`.
pub fn aan_scale(k: usize) -> f64 {
    if k == 0 {
        1.0
    } else {
        (std::f64::consts::PI * k as f64 / 16.0).cos() * SQRT2
    }
}

/// One 1-D AAN forward pass (jfdctflt flowgraph): 5 multiplies, 29 adds.
/// Lane-parallel: each lane of the eight vectors is an independent 1-D
/// transform, so every backend performs the identical per-lane op sequence
/// (the bit-exactness contract of [`puppies_image::simd`]).
#[inline(always)]
unsafe fn fdct8_v<S: Simd8>(d: &mut [S::F; 8]) {
    unsafe {
        let tmp0 = S::f_add(d[0], d[7]);
        let tmp7 = S::f_sub(d[0], d[7]);
        let tmp1 = S::f_add(d[1], d[6]);
        let tmp6 = S::f_sub(d[1], d[6]);
        let tmp2 = S::f_add(d[2], d[5]);
        let tmp5 = S::f_sub(d[2], d[5]);
        let tmp3 = S::f_add(d[3], d[4]);
        let tmp4 = S::f_sub(d[3], d[4]);

        // Even part.
        let tmp10 = S::f_add(tmp0, tmp3);
        let tmp13 = S::f_sub(tmp0, tmp3);
        let tmp11 = S::f_add(tmp1, tmp2);
        let tmp12 = S::f_sub(tmp1, tmp2);

        d[0] = S::f_add(tmp10, tmp11);
        d[4] = S::f_sub(tmp10, tmp11);

        let z1 = S::f_mul(S::f_add(tmp12, tmp13), S::f_splat(C4F));
        d[2] = S::f_add(tmp13, z1);
        d[6] = S::f_sub(tmp13, z1);

        // Odd part.
        let tmp10 = S::f_add(tmp4, tmp5);
        let tmp11 = S::f_add(tmp5, tmp6);
        let tmp12 = S::f_add(tmp6, tmp7);

        let z5 = S::f_mul(S::f_sub(tmp10, tmp12), S::f_splat(C6F));
        let z2 = S::f_add(S::f_mul(S::f_splat(C2_SUB_C6F), tmp10), z5);
        let z4 = S::f_add(S::f_mul(S::f_splat(C2_ADD_C6F), tmp12), z5);
        let z3 = S::f_mul(tmp11, S::f_splat(C4F));

        let z11 = S::f_add(tmp7, z3);
        let z13 = S::f_sub(tmp7, z3);

        d[5] = S::f_add(z13, z2);
        d[3] = S::f_sub(z13, z2);
        d[1] = S::f_add(z11, z4);
        d[7] = S::f_sub(z11, z4);
    }
}

/// One 1-D AAN inverse pass (jidctflt flowgraph), lane-parallel like
/// [`fdct8_v`]. Input `u` must be the 1-D orthonormal coefficient times
/// `aan(u)/(2√2)`.
#[inline(always)]
unsafe fn idct8_v<S: Simd8>(d: &mut [S::F; 8]) {
    unsafe {
        // Even part.
        let tmp10 = S::f_add(d[0], d[4]);
        let tmp11 = S::f_sub(d[0], d[4]);
        let tmp13 = S::f_add(d[2], d[6]);
        let tmp12 = S::f_sub(S::f_mul(S::f_sub(d[2], d[6]), S::f_splat(SQRT2F)), tmp13);

        let tmp0 = S::f_add(tmp10, tmp13);
        let tmp3 = S::f_sub(tmp10, tmp13);
        let tmp1 = S::f_add(tmp11, tmp12);
        let tmp2 = S::f_sub(tmp11, tmp12);

        // Odd part.
        let z13 = S::f_add(d[5], d[3]);
        let z10 = S::f_sub(d[5], d[3]);
        let z11 = S::f_add(d[1], d[7]);
        let z12 = S::f_sub(d[1], d[7]);

        let tmp7 = S::f_add(z11, z13);
        let tmp11o = S::f_mul(S::f_sub(z11, z13), S::f_splat(SQRT2F));

        let z5 = S::f_mul(S::f_add(z10, z12), S::f_splat(TWO_C2F));
        let tmp10o = S::f_sub(S::f_mul(S::f_splat(TWO_C2_SUB_C6F), z12), z5);
        let tmp12o = S::f_sub(z5, S::f_mul(S::f_splat(TWO_C2_ADD_C6F), z10));

        let tmp6 = S::f_sub(tmp12o, tmp7);
        let tmp5 = S::f_sub(tmp11o, tmp6);
        let tmp4 = S::f_add(tmp10o, tmp5);

        d[0] = S::f_add(tmp0, tmp7);
        d[7] = S::f_sub(tmp0, tmp7);
        d[1] = S::f_add(tmp1, tmp6);
        d[6] = S::f_sub(tmp1, tmp6);
        d[2] = S::f_add(tmp2, tmp5);
        d[5] = S::f_sub(tmp2, tmp5);
        d[4] = S::f_add(tmp3, tmp4);
        d[3] = S::f_sub(tmp3, tmp4);
    }
}

/// Forward scaled DCT kernel: load the 8 rows into lane registers, then
/// transpose → butterfly (row pass) → transpose → butterfly (column pass).
/// The transposes are pure data movement, so per-element dataflow is
/// identical to running [`fdct8_v`] on every row then every column.
///
/// `#[inline(always)]` is load-bearing on every dispatched kernel: the
/// monomorphization must fuse into the `#[target_feature]` wrapper the
/// dispatch macro generates, or the `core::arch` intrinsics inside stay
/// un-inlinable opaque calls (the kernel itself carries no feature
/// attribute) and every lane op pays a function call through memory.
#[inline(always)]
pub(crate) unsafe fn fdct_scaled_kernel<S: Simd8>(block: &[f32; 64], ws: &mut [f32; 64]) {
    unsafe {
        let rows_in = &*(block.as_ptr() as *const [[f32; 8]; 8]);
        let mut d = [S::f_load(&rows_in[0]); 8];
        for i in 1..8 {
            d[i] = S::f_load(&rows_in[i]);
        }
        fdct_core::<S>(&mut d);
        let rows_out = &mut *(ws.as_mut_ptr() as *mut [[f32; 8]; 8]);
        for i in 0..8 {
            S::f_store(d[i], &mut rows_out[i]);
        }
    }
}

/// The fdct dataflow on already-loaded row registers: transpose → row pass
/// → transpose → column pass. Shared by [`fdct_scaled_kernel`] and the
/// fused quantizing kernel in `quant`, so both run the identical IEEE op
/// sequence.
#[inline(always)]
pub(crate) unsafe fn fdct_core<S: Simd8>(d: &mut [S::F; 8]) {
    unsafe {
        S::f_transpose8(d); // register k = source column k
        fdct8_v::<S>(d); // row pass (per lane = per source row)
        S::f_transpose8(d); // back to natural row-major layout
        fdct8_v::<S>(d); // column pass
    }
}

/// Inverse scaled DCT kernel: butterfly (column pass) → transpose →
/// butterfly (row pass) → transpose → store, mirroring the scalar
/// columns-then-rows order.
#[inline(always)]
unsafe fn idct_scaled_kernel<S: Simd8>(block: &[f32; 64], out: &mut [f32; 64]) {
    unsafe {
        let rows_in = &*(block.as_ptr() as *const [[f32; 8]; 8]);
        let mut d = [S::f_load(&rows_in[0]); 8];
        for i in 1..8 {
            d[i] = S::f_load(&rows_in[i]);
        }
        idct8_v::<S>(&mut d); // column pass
        S::f_transpose8(&mut d);
        idct8_v::<S>(&mut d); // row pass (per lane = per output row)
        S::f_transpose8(&mut d);
        let rows_out = &mut *(out.as_mut_ptr() as *mut [[f32; 8]; 8]);
        for i in 0..8 {
            S::f_store(d[i], &mut rows_out[i]);
        }
    }
}

puppies_image::simd_dispatch! {
    pub fn forward_scaled_into / forward_scaled_into_with(block: &[f32; 64], ws: &mut [f32; 64]) = fdct_scaled_kernel;
    pub fn inverse_scaled_into / inverse_scaled_into_with(block: &[f32; 64], out: &mut [f32; 64]) = idct_scaled_kernel;
}

/// Fast forward 8×8 DCT (AAN, f32). The output at row-major position
/// `(u, v)` is the [`forward`] coefficient times `8·aan(u)·aan(v)`;
/// quantize it with `quant::FoldedQuant`, which folds the descale in.
pub fn forward_scaled(block: &[f32; 64]) -> [f32; 64] {
    let mut ws = [0.0f32; 64];
    forward_scaled_into(block, &mut ws);
    ws
}

/// Fast inverse 8×8 DCT (AAN, f32), the inverse of [`forward_scaled`]:
/// input at `(u, v)` must be the orthonormal coefficient times
/// `aan(u)·aan(v)/8` (produced by `quant::FoldedQuant::dequantize_scaled`).
pub fn inverse_scaled(block: &[f32; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    inverse_scaled_into(block, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut b = [0.0f32; 64];
        let mut s = seed;
        for v in &mut b {
            // xorshift for determinism without a dependency.
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 256) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn constant_block_has_only_dc() {
        let block = [10.0f32; 64];
        let f = forward(&block);
        // DC of constant c is 8c for the orthonormal 2-D DCT.
        assert!((f[0] - 80.0).abs() < 1e-3, "dc = {}", f[0]);
        for &v in &f[1..] {
            assert!(v.abs() < 1e-3, "ac leak: {v}");
        }
    }

    #[test]
    fn roundtrip_is_exact_to_float_precision() {
        for seed in [1u32, 77, 90210] {
            let block = sample_block(seed);
            let back = inverse(&forward(&block));
            for (a, b) in block.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn transform_is_linear() {
        let a = sample_block(3);
        let b = sample_block(1234);
        let mut sum = [0.0f32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let fa = forward(&a);
        let fb = forward(&b);
        let fsum = forward(&sum);
        for i in 0..64 {
            assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let block = sample_block(42);
        let f = forward(&block);
        let e_spatial: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        let e_freq: f64 = f.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }

    #[test]
    fn dc_range_fits_jpeg_bounds() {
        // Extreme blocks (all -128 or all +127) must produce DC within
        // [-1024, 1023] before quantization.
        let lo = [-128.0f32; 64];
        let hi = [127.0f32; 64];
        assert!(forward(&lo)[0] >= -1024.0);
        assert!(forward(&hi)[0] <= 1023.0);
    }

    #[test]
    fn single_basis_function_roundtrip() {
        // An impulse in frequency space maps to a cosine pattern and back.
        let mut f = [0.0f32; 64];
        f[9] = 100.0; // (u,v) = (1,1)
        let spatial = inverse(&f);
        let back = forward(&spatial);
        for (i, &v) in back.iter().enumerate() {
            let want = if i == 9 { 100.0 } else { 0.0 };
            assert!((v - want).abs() < 1e-2, "idx {i}: {v}");
        }
    }

    #[test]
    fn forward_scaled_matches_reference_after_descale() {
        for seed in [1u32, 77, 90210, 0xDEAD] {
            let block = sample_block(seed);
            let reference = forward(&block);
            let scaled = forward_scaled(&block);
            for u in 0..N {
                for v in 0..N {
                    let i = u * N + v;
                    let descaled = scaled[i] as f64 / (8.0 * aan_scale(u) * aan_scale(v));
                    // Tolerance bounded by f32 accumulation in the fast path.
                    assert!(
                        (descaled - reference[i] as f64).abs() < 5e-3,
                        "seed {seed} idx {i}: {descaled} vs {}",
                        reference[i]
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_scaled_matches_reference() {
        for seed in [2u32, 555, 31415] {
            let block = sample_block(seed);
            // Treat the sample as frequency coefficients.
            let reference = inverse(&block);
            let mut scaled = [0.0f32; 64];
            for u in 0..N {
                for v in 0..N {
                    let i = u * N + v;
                    scaled[i] = (block[i] as f64 * aan_scale(u) * aan_scale(v) / 8.0) as f32;
                }
            }
            let fast = inverse_scaled(&scaled);
            for i in 0..64 {
                assert!(
                    (fast[i] - reference[i]).abs() < 1e-3,
                    "seed {seed} idx {i}: {} vs {}",
                    fast[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn scaled_roundtrip_recovers_spatial_block() {
        for seed in [9u32, 4242] {
            let block = sample_block(seed);
            let scaled = forward_scaled(&block);
            // Undo the combined forward/inverse scale: ÷(8·aan·aan) for the
            // forward factor, ×(aan·aan/8) for the inverse convention.
            let mut freq = [0.0f32; 64];
            for u in 0..N {
                for v in 0..N {
                    let i = u * N + v;
                    freq[i] = scaled[i] / 64.0;
                }
            }
            let back = inverse_scaled(&freq);
            for (a, b) in block.iter().zip(back.iter()) {
                assert!((a - b).abs() < 5e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn scaled_dct_bit_identical_across_backends() {
        use puppies_image::simd::Backend;
        for seed in [1u32, 77, 90210, 0xDEAD, 0xBEEF] {
            let block = sample_block(seed);
            let mut want_f = [0.0f32; 64];
            forward_scaled_into_with(Backend::Scalar, &block, &mut want_f);
            let mut want_i = [0.0f32; 64];
            inverse_scaled_into_with(Backend::Scalar, &want_f, &mut want_i);
            for backend in Backend::ALL.into_iter().filter(|b| b.available()) {
                let mut got_f = [0.0f32; 64];
                forward_scaled_into_with(backend, &block, &mut got_f);
                assert_eq!(
                    want_f.map(f32::to_bits),
                    got_f.map(f32::to_bits),
                    "forward_scaled diverges on {} (seed {seed})",
                    backend.name()
                );
                let mut got_i = [0.0f32; 64];
                inverse_scaled_into_with(backend, &want_f, &mut got_i);
                assert_eq!(
                    want_i.map(f32::to_bits),
                    got_i.map(f32::to_bits),
                    "inverse_scaled diverges on {} (seed {seed})",
                    backend.name()
                );
            }
        }
    }
}
