//! The 8×8 type-II discrete cosine transform and its inverse.
//!
//! Implemented as two passes of the 1-D orthonormal DCT (rows, then
//! columns). Exactness matters more than raw speed here: the shadow-ROI
//! reconstruction (§IV-C) depends on the transform being linear and
//! invertible to float precision.

/// Number of samples per block side.
pub const N: usize = 8;

// cos((2x + 1) u π / 16) lookup, indexed [u][x].
fn cos_table() -> &'static [[f32; N]; N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; N]; N];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos() as f32;
            }
        }
        t
    })
}

#[inline]
fn alpha(u: usize) -> f32 {
    if u == 0 {
        std::f32::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

fn dct_1d(input: &[f32; N]) -> [f32; N] {
    let t = cos_table();
    let mut out = [0.0f32; N];
    for (u, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for x in 0..N {
            acc += input[x] * t[u][x];
        }
        *o = 0.5 * alpha(u) * acc;
    }
    out
}

fn idct_1d(input: &[f32; N]) -> [f32; N] {
    let t = cos_table();
    let mut out = [0.0f32; N];
    for (x, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for u in 0..N {
            acc += alpha(u) * input[u] * t[u][x];
        }
        *o = 0.5 * acc;
    }
    out
}

/// Forward 8×8 DCT-II of a row-major spatial block (typically level-shifted
/// samples in `[-128, 127]`). Output is row-major frequency coefficients
/// with the DC term at index 0.
pub fn forward(block: &[f32; 64]) -> [f32; 64] {
    let mut tmp = [0.0f32; 64];
    // Rows.
    for r in 0..N {
        let mut row = [0.0f32; N];
        row.copy_from_slice(&block[r * N..(r + 1) * N]);
        let out = dct_1d(&row);
        tmp[r * N..(r + 1) * N].copy_from_slice(&out);
    }
    // Columns.
    let mut out = [0.0f32; 64];
    for c in 0..N {
        let mut col = [0.0f32; N];
        for r in 0..N {
            col[r] = tmp[r * N + c];
        }
        let t = dct_1d(&col);
        for r in 0..N {
            out[r * N + c] = t[r];
        }
    }
    out
}

/// Inverse 8×8 DCT (type III), undoing [`forward`] to float precision.
pub fn inverse(block: &[f32; 64]) -> [f32; 64] {
    let mut tmp = [0.0f32; 64];
    // Columns.
    for c in 0..N {
        let mut col = [0.0f32; N];
        for r in 0..N {
            col[r] = block[r * N + c];
        }
        let t = idct_1d(&col);
        for r in 0..N {
            tmp[r * N + c] = t[r];
        }
    }
    // Rows.
    let mut out = [0.0f32; 64];
    for r in 0..N {
        let mut row = [0.0f32; N];
        row.copy_from_slice(&tmp[r * N..(r + 1) * N]);
        let t = idct_1d(&row);
        out[r * N..(r + 1) * N].copy_from_slice(&t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut b = [0.0f32; 64];
        let mut s = seed;
        for v in &mut b {
            // xorshift for determinism without a dependency.
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 256) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn constant_block_has_only_dc() {
        let block = [10.0f32; 64];
        let f = forward(&block);
        // DC of constant c is 8c for the orthonormal 2-D DCT.
        assert!((f[0] - 80.0).abs() < 1e-3, "dc = {}", f[0]);
        for &v in &f[1..] {
            assert!(v.abs() < 1e-3, "ac leak: {v}");
        }
    }

    #[test]
    fn roundtrip_is_exact_to_float_precision() {
        for seed in [1u32, 77, 90210] {
            let block = sample_block(seed);
            let back = inverse(&forward(&block));
            for (a, b) in block.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn transform_is_linear() {
        let a = sample_block(3);
        let b = sample_block(1234);
        let mut sum = [0.0f32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let fa = forward(&a);
        let fb = forward(&b);
        let fsum = forward(&sum);
        for i in 0..64 {
            assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let block = sample_block(42);
        let f = forward(&block);
        let e_spatial: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        let e_freq: f64 = f.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }

    #[test]
    fn dc_range_fits_jpeg_bounds() {
        // Extreme blocks (all -128 or all +127) must produce DC within
        // [-1024, 1023] before quantization.
        let lo = [-128.0f32; 64];
        let hi = [127.0f32; 64];
        assert!(forward(&lo)[0] >= -1024.0);
        assert!(forward(&hi)[0] <= 1023.0);
    }

    #[test]
    fn single_basis_function_roundtrip() {
        // An impulse in frequency space maps to a cosine pattern and back.
        let mut f = [0.0f32; 64];
        f[9] = 100.0; // (u,v) = (1,1)
        let spatial = inverse(&f);
        let back = forward(&spatial);
        for (i, &v) in back.iter().enumerate() {
            let want = if i == 9 { 100.0 } else { 0.0 };
            assert!((v - want).abs() < 1e-2, "idx {i}: {v}");
        }
    }
}
