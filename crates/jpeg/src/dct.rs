//! The 8×8 type-II discrete cosine transform and its inverse.
//!
//! Two implementations live here:
//!
//! * [`forward`] / [`inverse`] — the textbook O(N²) orthonormal transform,
//!   computed with f64 cosine tables and f64 accumulation. Exactness matters
//!   more than raw speed for this pair: the shadow-ROI reconstruction
//!   (§IV-C) depends on the transform being linear and invertible to float
//!   precision, and it doubles as the differential-test reference for the
//!   fast path.
//! * [`forward_scaled`] / [`inverse_scaled`] — the AAN (Arai–Agui–Nakajima)
//!   factorization: 5 multiplies + 29 adds per 1-D pass instead of a
//!   64-multiply matrix pass. Outputs carry a per-coefficient scale factor
//!   of `8·aan(u)·aan(v)` that callers fold into the quantization step
//!   (see `quant::FoldedQuant`), so descaling costs nothing extra.

/// Number of samples per block side.
pub const N: usize = 8;

// cos((2x + 1) u π / 16) lookup, indexed [u][x].
fn cos_table() -> &'static [[f64; N]; N] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f64; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f64; N]; N];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

#[inline]
fn alpha(u: usize) -> f64 {
    if u == 0 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

fn dct_1d(input: &[f64; N], t: &[[f64; N]; N]) -> [f64; N] {
    let mut out = [0.0f64; N];
    for (u, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for x in 0..N {
            acc += input[x] * t[u][x];
        }
        *o = 0.5 * alpha(u) * acc;
    }
    out
}

fn idct_1d(input: &[f64; N], t: &[[f64; N]; N]) -> [f64; N] {
    let mut out = [0.0f64; N];
    for (x, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for u in 0..N {
            acc += alpha(u) * input[u] * t[u][x];
        }
        *o = 0.5 * acc;
    }
    out
}

/// Forward 8×8 DCT-II of a row-major spatial block (typically level-shifted
/// samples in `[-128, 127]`). Output is row-major frequency coefficients
/// with the DC term at index 0.
pub fn forward(block: &[f32; 64]) -> [f32; 64] {
    let t = cos_table(); // once per block, shared by all 16 1-D passes
    let mut tmp = [0.0f64; 64];
    // Rows.
    for r in 0..N {
        let mut row = [0.0f64; N];
        for (x, v) in row.iter_mut().enumerate() {
            *v = block[r * N + x] as f64;
        }
        let out = dct_1d(&row, t);
        tmp[r * N..(r + 1) * N].copy_from_slice(&out);
    }
    // Columns.
    let mut out = [0.0f32; 64];
    for c in 0..N {
        let mut col = [0.0f64; N];
        for r in 0..N {
            col[r] = tmp[r * N + c];
        }
        let tcol = dct_1d(&col, t);
        for r in 0..N {
            out[r * N + c] = tcol[r] as f32;
        }
    }
    out
}

/// Inverse 8×8 DCT (type III), undoing [`forward`] to float precision.
pub fn inverse(block: &[f32; 64]) -> [f32; 64] {
    let t = cos_table(); // once per block, shared by all 16 1-D passes
    let mut tmp = [0.0f64; 64];
    // Columns.
    for c in 0..N {
        let mut col = [0.0f64; N];
        for r in 0..N {
            col[r] = block[r * N + c] as f64;
        }
        let tcol = idct_1d(&col, t);
        for r in 0..N {
            tmp[r * N + c] = tcol[r];
        }
    }
    // Rows.
    let mut out = [0.0f32; 64];
    for r in 0..N {
        let mut row = [0.0f64; N];
        row.copy_from_slice(&tmp[r * N..(r + 1) * N]);
        let trow = idct_1d(&row, t);
        for (x, &v) in trow.iter().enumerate() {
            out[r * N + x] = v as f32;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// AAN scaled fast path.
// ---------------------------------------------------------------------------

// Rotation constants for the AAN flowgraph, with ck = cos(kπ/16).
const C4: f64 = std::f64::consts::FRAC_1_SQRT_2; // c4
const C6: f64 = 0.382_683_432_365_089_8; // c6
const C2_SUB_C6: f64 = 0.541_196_100_146_197; // c2 − c6
const C2_ADD_C6: f64 = 1.306_562_964_876_376_6; // c2 + c6
const SQRT2: f64 = std::f64::consts::SQRT_2; // 2·c4
const TWO_C2: f64 = 1.847_759_065_022_573_5; // 2·c2
const TWO_C2_SUB_C6: f64 = 1.082_392_200_292_394; // 2·(c2 − c6)
const TWO_C2_ADD_C6: f64 = 2.613_125_929_752_753; // 2·(c2 + c6)

/// The AAN per-axis scale factor: `aan(0) = 1`, `aan(k) = √2·cos(kπ/16)`.
///
/// [`forward_scaled`] output at frequency `(u, v)` equals the orthonormal
/// coefficient from [`forward`] times `8·aan(u)·aan(v)`; [`inverse_scaled`]
/// expects its input pre-multiplied by `aan(u)·aan(v)/8`.
pub fn aan_scale(k: usize) -> f64 {
    if k == 0 {
        1.0
    } else {
        (std::f64::consts::PI * k as f64 / 16.0).cos() * SQRT2
    }
}

/// One 1-D AAN forward pass (jfdctflt flowgraph): 5 multiplies, 29 adds.
/// Output `u` is the 1-D orthonormal DCT times `2√2·aan(u)`.
#[inline]
fn fdct8(d: &mut [f64; N]) {
    let tmp0 = d[0] + d[7];
    let tmp7 = d[0] - d[7];
    let tmp1 = d[1] + d[6];
    let tmp6 = d[1] - d[6];
    let tmp2 = d[2] + d[5];
    let tmp5 = d[2] - d[5];
    let tmp3 = d[3] + d[4];
    let tmp4 = d[3] - d[4];

    // Even part.
    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    d[0] = tmp10 + tmp11;
    d[4] = tmp10 - tmp11;

    let z1 = (tmp12 + tmp13) * C4;
    d[2] = tmp13 + z1;
    d[6] = tmp13 - z1;

    // Odd part.
    let tmp10 = tmp4 + tmp5;
    let tmp11 = tmp5 + tmp6;
    let tmp12 = tmp6 + tmp7;

    let z5 = (tmp10 - tmp12) * C6;
    let z2 = C2_SUB_C6 * tmp10 + z5;
    let z4 = C2_ADD_C6 * tmp12 + z5;
    let z3 = tmp11 * C4;

    let z11 = tmp7 + z3;
    let z13 = tmp7 - z3;

    d[5] = z13 + z2;
    d[3] = z13 - z2;
    d[1] = z11 + z4;
    d[7] = z11 - z4;
}

/// One 1-D AAN inverse pass (jidctflt flowgraph). Input `u` must be the
/// 1-D orthonormal coefficient times `aan(u)/(2√2)`.
#[inline]
fn idct8(d: &mut [f64; N]) {
    // Even part.
    let tmp10 = d[0] + d[4];
    let tmp11 = d[0] - d[4];
    let tmp13 = d[2] + d[6];
    let tmp12 = (d[2] - d[6]) * SQRT2 - tmp13;

    let tmp0 = tmp10 + tmp13;
    let tmp3 = tmp10 - tmp13;
    let tmp1 = tmp11 + tmp12;
    let tmp2 = tmp11 - tmp12;

    // Odd part.
    let z13 = d[5] + d[3];
    let z10 = d[5] - d[3];
    let z11 = d[1] + d[7];
    let z12 = d[1] - d[7];

    let tmp7 = z11 + z13;
    let tmp11o = (z11 - z13) * SQRT2;

    let z5 = (z10 + z12) * TWO_C2;
    let tmp10o = TWO_C2_SUB_C6 * z12 - z5;
    let tmp12o = z5 - TWO_C2_ADD_C6 * z10;

    let tmp6 = tmp12o - tmp7;
    let tmp5 = tmp11o - tmp6;
    let tmp4 = tmp10o + tmp5;

    d[0] = tmp0 + tmp7;
    d[7] = tmp0 - tmp7;
    d[1] = tmp1 + tmp6;
    d[6] = tmp1 - tmp6;
    d[2] = tmp2 + tmp5;
    d[5] = tmp2 - tmp5;
    d[4] = tmp3 + tmp4;
    d[3] = tmp3 - tmp4;
}

// Whole-row helpers for the column passes: each operation applies the
// same f64 arithmetic to all 8 columns at once (lane k is column k), so
// the column pass is bit-identical to running the 1-D kernel per column
// while giving the vectorizer contiguous 8-wide loops instead of strided
// gathers.

#[inline]
fn radd(a: &[f64; N], b: &[f64; N]) -> [f64; N] {
    let mut o = [0.0; N];
    for i in 0..N {
        o[i] = a[i] + b[i];
    }
    o
}

#[inline]
fn rsub(a: &[f64; N], b: &[f64; N]) -> [f64; N] {
    let mut o = [0.0; N];
    for i in 0..N {
        o[i] = a[i] - b[i];
    }
    o
}

#[inline]
fn rscale(a: &[f64; N], s: f64) -> [f64; N] {
    let mut o = [0.0; N];
    for i in 0..N {
        o[i] = a[i] * s;
    }
    o
}

#[inline]
fn row(ws: &[f64; 64], r: usize) -> [f64; N] {
    ws[r * N..(r + 1) * N].try_into().unwrap()
}

#[inline]
fn set_row(ws: &mut [f64; 64], r: usize, v: &[f64; N]) {
    ws[r * N..(r + 1) * N].copy_from_slice(v);
}

/// [`fdct8`] applied to all 8 columns of `ws` at once.
fn fdct8_cols(ws: &mut [f64; 64]) {
    let (d0, d1, d2, d3) = (row(ws, 0), row(ws, 1), row(ws, 2), row(ws, 3));
    let (d4, d5, d6, d7) = (row(ws, 4), row(ws, 5), row(ws, 6), row(ws, 7));
    let tmp0 = radd(&d0, &d7);
    let tmp7 = rsub(&d0, &d7);
    let tmp1 = radd(&d1, &d6);
    let tmp6 = rsub(&d1, &d6);
    let tmp2 = radd(&d2, &d5);
    let tmp5 = rsub(&d2, &d5);
    let tmp3 = radd(&d3, &d4);
    let tmp4 = rsub(&d3, &d4);

    // Even part.
    let tmp10 = radd(&tmp0, &tmp3);
    let tmp13 = rsub(&tmp0, &tmp3);
    let tmp11 = radd(&tmp1, &tmp2);
    let tmp12 = rsub(&tmp1, &tmp2);

    set_row(ws, 0, &radd(&tmp10, &tmp11));
    set_row(ws, 4, &rsub(&tmp10, &tmp11));

    let z1 = rscale(&radd(&tmp12, &tmp13), C4);
    set_row(ws, 2, &radd(&tmp13, &z1));
    set_row(ws, 6, &rsub(&tmp13, &z1));

    // Odd part.
    let tmp10 = radd(&tmp4, &tmp5);
    let tmp11 = radd(&tmp5, &tmp6);
    let tmp12 = radd(&tmp6, &tmp7);

    let z5 = rscale(&rsub(&tmp10, &tmp12), C6);
    let z2 = radd(&rscale(&tmp10, C2_SUB_C6), &z5);
    let z4 = radd(&rscale(&tmp12, C2_ADD_C6), &z5);
    let z3 = rscale(&tmp11, C4);

    let z11 = radd(&tmp7, &z3);
    let z13 = rsub(&tmp7, &z3);

    set_row(ws, 5, &radd(&z13, &z2));
    set_row(ws, 3, &rsub(&z13, &z2));
    set_row(ws, 1, &radd(&z11, &z4));
    set_row(ws, 7, &rsub(&z11, &z4));
}

/// [`idct8`] applied to all 8 columns of `ws` at once.
fn idct8_cols(ws: &mut [f64; 64]) {
    let (d0, d1, d2, d3) = (row(ws, 0), row(ws, 1), row(ws, 2), row(ws, 3));
    let (d4, d5, d6, d7) = (row(ws, 4), row(ws, 5), row(ws, 6), row(ws, 7));
    // Even part.
    let tmp10 = radd(&d0, &d4);
    let tmp11 = rsub(&d0, &d4);
    let tmp13 = radd(&d2, &d6);
    let tmp12 = rsub(&rscale(&rsub(&d2, &d6), SQRT2), &tmp13);

    let tmp0 = radd(&tmp10, &tmp13);
    let tmp3 = rsub(&tmp10, &tmp13);
    let tmp1 = radd(&tmp11, &tmp12);
    let tmp2 = rsub(&tmp11, &tmp12);

    // Odd part.
    let z13 = radd(&d5, &d3);
    let z10 = rsub(&d5, &d3);
    let z11 = radd(&d1, &d7);
    let z12 = rsub(&d1, &d7);

    let tmp7 = radd(&z11, &z13);
    let tmp11o = rscale(&rsub(&z11, &z13), SQRT2);

    let z5 = rscale(&radd(&z10, &z12), TWO_C2);
    let tmp10o = rsub(&rscale(&z12, TWO_C2_SUB_C6), &z5);
    let tmp12o = rsub(&z5, &rscale(&z10, TWO_C2_ADD_C6));

    let tmp6 = rsub(&tmp12o, &tmp7);
    let tmp5 = rsub(&tmp11o, &tmp6);
    let tmp4 = radd(&tmp10o, &tmp5);

    set_row(ws, 0, &radd(&tmp0, &tmp7));
    set_row(ws, 7, &rsub(&tmp0, &tmp7));
    set_row(ws, 1, &radd(&tmp1, &tmp6));
    set_row(ws, 6, &rsub(&tmp1, &tmp6));
    set_row(ws, 2, &radd(&tmp2, &tmp5));
    set_row(ws, 5, &rsub(&tmp2, &tmp5));
    set_row(ws, 4, &radd(&tmp3, &tmp4));
    set_row(ws, 3, &rsub(&tmp3, &tmp4));
}

/// Fast forward 8×8 DCT (AAN). The output at row-major position
/// `(u, v)` is the [`forward`] coefficient times `8·aan(u)·aan(v)`;
/// quantize it with `quant::FoldedQuant`, which folds the descale in.
pub fn forward_scaled(block: &[f32; 64]) -> [f64; 64] {
    let mut ws = [0.0f64; 64];
    forward_scaled_into(block, &mut ws);
    ws
}

/// [`forward_scaled`] writing into a caller-provided buffer, so per-block
/// loops can reuse one scratch array instead of copying 512-byte returns.
pub fn forward_scaled_into(block: &[f32; 64], ws: &mut [f64; 64]) {
    for (w, &b) in ws.iter_mut().zip(block.iter()) {
        *w = b as f64;
    }
    // Rows, in place.
    for r in 0..N {
        let d: &mut [f64; N] = (&mut ws[r * N..(r + 1) * N]).try_into().unwrap();
        fdct8(d);
    }
    // Columns, 8 lanes at a time.
    fdct8_cols(ws);
}

/// Fast inverse 8×8 DCT (AAN), the inverse of [`forward_scaled`]: input at
/// `(u, v)` must be the orthonormal coefficient times `aan(u)·aan(v)/8`
/// (produced by `quant::FoldedQuant::dequantize_scaled`).
pub fn inverse_scaled(block: &[f64; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    inverse_scaled_into(block, &mut out);
    out
}

/// [`inverse_scaled`] writing into a caller-provided buffer.
pub fn inverse_scaled_into(block: &[f64; 64], out: &mut [f32; 64]) {
    let mut ws = *block;
    // Columns, 8 lanes at a time.
    idct8_cols(&mut ws);
    // Rows, in place, narrowing to f32 on the way out.
    for r in 0..N {
        let d: &mut [f64; N] = (&mut ws[r * N..(r + 1) * N]).try_into().unwrap();
        idct8(d);
        for (x, &s) in d.iter().enumerate() {
            out[r * N + x] = s as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut b = [0.0f32; 64];
        let mut s = seed;
        for v in &mut b {
            // xorshift for determinism without a dependency.
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 256) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn constant_block_has_only_dc() {
        let block = [10.0f32; 64];
        let f = forward(&block);
        // DC of constant c is 8c for the orthonormal 2-D DCT.
        assert!((f[0] - 80.0).abs() < 1e-3, "dc = {}", f[0]);
        for &v in &f[1..] {
            assert!(v.abs() < 1e-3, "ac leak: {v}");
        }
    }

    #[test]
    fn roundtrip_is_exact_to_float_precision() {
        for seed in [1u32, 77, 90210] {
            let block = sample_block(seed);
            let back = inverse(&forward(&block));
            for (a, b) in block.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn transform_is_linear() {
        let a = sample_block(3);
        let b = sample_block(1234);
        let mut sum = [0.0f32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let fa = forward(&a);
        let fb = forward(&b);
        let fsum = forward(&sum);
        for i in 0..64 {
            assert!((fa[i] + fb[i] - fsum[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let block = sample_block(42);
        let f = forward(&block);
        let e_spatial: f64 = block.iter().map(|&v| (v as f64).powi(2)).sum();
        let e_freq: f64 = f.iter().map(|&v| (v as f64).powi(2)).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }

    #[test]
    fn dc_range_fits_jpeg_bounds() {
        // Extreme blocks (all -128 or all +127) must produce DC within
        // [-1024, 1023] before quantization.
        let lo = [-128.0f32; 64];
        let hi = [127.0f32; 64];
        assert!(forward(&lo)[0] >= -1024.0);
        assert!(forward(&hi)[0] <= 1023.0);
    }

    #[test]
    fn single_basis_function_roundtrip() {
        // An impulse in frequency space maps to a cosine pattern and back.
        let mut f = [0.0f32; 64];
        f[9] = 100.0; // (u,v) = (1,1)
        let spatial = inverse(&f);
        let back = forward(&spatial);
        for (i, &v) in back.iter().enumerate() {
            let want = if i == 9 { 100.0 } else { 0.0 };
            assert!((v - want).abs() < 1e-2, "idx {i}: {v}");
        }
    }

    #[test]
    fn forward_scaled_matches_reference_after_descale() {
        for seed in [1u32, 77, 90210, 0xDEAD] {
            let block = sample_block(seed);
            let reference = forward(&block);
            let scaled = forward_scaled(&block);
            for u in 0..N {
                for v in 0..N {
                    let i = u * N + v;
                    let descaled = scaled[i] / (8.0 * aan_scale(u) * aan_scale(v));
                    // Tolerance bounded by the reference's f32 output rounding.
                    assert!(
                        (descaled - reference[i] as f64).abs() < 1e-3,
                        "seed {seed} idx {i}: {descaled} vs {}",
                        reference[i]
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_scaled_matches_reference() {
        for seed in [2u32, 555, 31415] {
            let block = sample_block(seed);
            // Treat the sample as frequency coefficients.
            let reference = inverse(&block);
            let mut scaled = [0.0f64; 64];
            for u in 0..N {
                for v in 0..N {
                    let i = u * N + v;
                    scaled[i] = block[i] as f64 * aan_scale(u) * aan_scale(v) / 8.0;
                }
            }
            let fast = inverse_scaled(&scaled);
            for i in 0..64 {
                assert!(
                    (fast[i] - reference[i]).abs() < 1e-4,
                    "seed {seed} idx {i}: {} vs {}",
                    fast[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn scaled_roundtrip_recovers_spatial_block() {
        for seed in [9u32, 4242] {
            let block = sample_block(seed);
            let scaled = forward_scaled(&block);
            // Undo the combined forward/inverse scale: ÷(8·aan·aan) for the
            // forward factor, ×(aan·aan/8) for the inverse convention.
            let mut freq = [0.0f64; 64];
            for u in 0..N {
                for v in 0..N {
                    let i = u * N + v;
                    freq[i] = scaled[i] / 64.0;
                }
            }
            let back = inverse_scaled(&freq);
            for (a, b) in block.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }
}
