//! Quantization tables (JPEG Annex K) and IJG-style quality scaling.
//!
//! §II-A step 3 of the paper: larger step sizes for higher frequencies,
//! which is why visual information concentrates in the low-frequency
//! coefficients PuPPIeS protects most strongly (Algorithm 3).

/// The Annex K.1 luminance quantization table (row-major).
pub const ANNEX_K_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The Annex K.2 chrominance quantization table (row-major).
pub const ANNEX_K_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// An 8×8 quantization table (row-major step sizes, each in `1..=255` for
/// baseline 8-bit streams).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTable {
    steps: [u16; 64],
}

impl QuantTable {
    /// Creates a table from explicit step sizes.
    ///
    /// # Panics
    /// Panics if any step is zero.
    pub fn new(steps: [u16; 64]) -> Self {
        assert!(
            steps.iter().all(|&s| s > 0),
            "quantization steps must be positive"
        );
        QuantTable { steps }
    }

    /// The standard luminance table scaled to `quality` (1..=100) with the
    /// IJG formula used by libjpeg.
    pub fn luma(quality: u8) -> Self {
        Self::scaled(&ANNEX_K_LUMA, quality)
    }

    /// The standard chrominance table scaled to `quality` (1..=100).
    pub fn chroma(quality: u8) -> Self {
        Self::scaled(&ANNEX_K_CHROMA, quality)
    }

    /// Scales an arbitrary base table with the IJG quality mapping:
    /// `q < 50` scales by `5000/q` percent, `q >= 50` by `200 - 2q` percent.
    pub fn scaled(base: &[u16; 64], quality: u8) -> Self {
        let q = quality.clamp(1, 100) as i32;
        let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
        let mut steps = [0u16; 64];
        for (s, &b) in steps.iter_mut().zip(base.iter()) {
            let v = (b as i32 * scale + 50) / 100;
            *s = v.clamp(1, 255) as u16;
        }
        QuantTable { steps }
    }

    /// The step sizes (row-major).
    pub fn steps(&self) -> &[u16; 64] {
        &self.steps
    }

    /// Quantizes one raw DCT block (row-major floats) to integer
    /// coefficients by rounding to the nearest step multiple.
    pub fn quantize(&self, raw: &[f32; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        for i in 0..64 {
            out[i] = (raw[i] / self.steps[i] as f32).round() as i32;
        }
        out
    }

    /// Dequantizes integer coefficients back to raw DCT values.
    pub fn dequantize(&self, q: &[i32; 64]) -> [f32; 64] {
        let mut out = [0.0f32; 64];
        for i in 0..64 {
            out[i] = (q[i] * self.steps[i] as i32) as f32;
        }
        out
    }

    /// The table with AAN descale factors folded in, for the fast
    /// scaled-DCT paths. Build once per component, not per block.
    pub fn folded(&self) -> FoldedQuant {
        FoldedQuant::new(self)
    }

    /// The IJG quality setting (1..=100) whose scaling of `base` lands
    /// closest to this table, minimizing total absolute step distance.
    /// Exact matches win outright (ties go to the higher quality, i.e. the
    /// finer table — the conservative choice when re-encoding). This is the
    /// standard way to recover "what quality was this stream encoded at"
    /// from a decoded DQT segment, which the PSP needs so pixel-domain
    /// re-encodes match the source's compression setting instead of a
    /// hardcoded default.
    pub fn nearest_quality(&self, base: &[u16; 64]) -> u8 {
        let mut best_q = 100u8;
        let mut best_dist = u64::MAX;
        for q in 1..=100u8 {
            let candidate = QuantTable::scaled(base, q);
            let dist: u64 = candidate
                .steps
                .iter()
                .zip(self.steps.iter())
                .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
                .sum();
            // `<=` so higher qualities win ties (including exact ones).
            if dist <= best_dist {
                best_dist = dist;
                best_q = q;
            }
        }
        best_q
    }

    /// Requantizes coefficients from this table to a `coarser` one, the
    /// coefficient-domain equivalent of JPEG recompression (the paper's
    /// "compression" transformation, §IV-C.2).
    pub fn requantize_to(&self, q: &[i32; 64], coarser: &QuantTable) -> [i32; 64] {
        let mut out = [0i32; 64];
        for i in 0..64 {
            let raw = q[i] as i64 * self.steps[i] as i64;
            let step = coarser.steps[i] as i64;
            // Round half away from zero, matching quantize() on exact values.
            let v = if raw >= 0 {
                (raw + step / 2) / step
            } else {
                (raw - step / 2) / step
            };
            out[i] = v as i32;
        }
        out
    }
}

/// A quantization table with the AAN scale factors folded in, pairing with
/// [`crate::dct::forward_scaled`] / [`crate::dct::inverse_scaled`].
///
/// The forward side folds the AAN descale *and* the quantization step into
/// a single f32 multiplier per coefficient (`1/(8·aan·aan·step)`, computed
/// in f64 and narrowed once), so quantizing is one multiply plus a
/// magic-number round. The contract this preserves is exact **integer
/// identity across SIMD backends** — every backend performs the identical
/// IEEE f32 op sequence — while the f64 orthonormal reference pipeline
/// (`QuantTable::quantize(dct::forward(..))`) becomes a bounded
/// differential (±1 on half-step ties), pinned by
/// `folded_quantize_matches_reference_pipeline`.
#[derive(Debug, Clone)]
pub struct FoldedQuant {
    /// `1/(8·aan(u)·aan(v)·step)`: takes `forward_scaled` output straight
    /// to the (unrounded) quantized value.
    fold: [f32; 64],
    /// `step·aan(u)·aan(v)/8`: dequantizes integer coefficients straight
    /// into `inverse_scaled` input, one multiply per coefficient.
    idct_mult: [f32; 64],
}

use puppies_image::simd::Simd8;

/// Adding/subtracting 1.5·2^23 rounds an f32 to the nearest integer (ties
/// to even) exactly for |q| < 2^22; see the kernel comments.
const ROUND_MAGIC: f32 = 12_582_912.0;
const ROUND_MAGIC_BITS: i32 = 0x4B40_0000;
const ROUND_LIMIT: f32 = 4_194_304.0;

/// Quantize kernel: `out = round_half_away(scaled · fold)` per coefficient.
/// (`inline(always)`: must fuse into the `#[target_feature]` dispatch
/// wrapper or the intrinsics inside cannot be inlined.)
#[inline(always)]
unsafe fn quantize_kernel<S: Simd8>(scaled: &[f32; 64], fold: &[f32; 64], out: &mut [i32; 64]) {
    unsafe {
        let magic = S::f_splat(ROUND_MAGIC);
        let limit = S::f_splat(ROUND_LIMIT);
        let magic_bits = S::i_splat(ROUND_MAGIC_BITS);
        let half = S::f_splat(0.5);
        let neg_half = S::f_splat(-0.5);
        let zero = S::f_splat(0.0);
        let s8 = &*(scaled.as_ptr() as *const [[f32; 8]; 8]);
        let f8 = &*(fold.as_ptr() as *const [[f32; 8]; 8]);
        let o8 = &mut *(out.as_mut_ptr() as *mut [[i32; 8]; 8]);
        for g in 0..8 {
            let q = S::f_mul(S::f_load(&s8[g]), S::f_load(&f8[g]));
            // Range check: a NaN lane fails `lt` exactly like the scalar
            // guard `!(q.abs() < limit)`, so it reaches the fallback too.
            if !S::f_all(S::f_cmp_lt(S::f_abs(q), limit)) {
                // Rare out-of-range/NaN group. The same scalar sequence on
                // every backend keeps results deterministic everywhere.
                for i in 0..8 {
                    o8[g][i] = (s8[g][i] * f8[g][i]).round() as i32;
                }
                continue;
            }
            let y = S::f_add(q, magic);
            let r = S::f_sub(y, magic);
            // For y in [2^23, 2^24) the mantissa bits *are* y − 2^23, so
            // round_even(q) = bits(y) − bits(1.5·2^23) as plain integers —
            // no float→int cast (whose saturating semantics cost extra
            // instructions) anywhere in the loop.
            let base = S::i_sub(S::f_bits(y), magic_bits);
            // The residual d = q − r is exact (Sterbenz) with |d| ≤ 0.5; a
            // tie (|d| = 0.5) is where round-to-even may disagree with the
            // round-half-away the reference uses. The compare masks are
            // all-ones (−1 as i32), so subtract/add fixes up by ±1.
            let d = S::f_sub(q, r);
            let up = S::f_and(S::f_cmp_ge(d, half), S::f_cmp_gt(q, zero));
            let down = S::f_and(S::f_cmp_le(d, neg_half), S::f_cmp_lt(q, zero));
            let v = S::i_add(S::i_sub(base, S::f_bits(up)), S::f_bits(down));
            S::i_store(v, &mut o8[g]);
        }
    }
}

/// Dequantize kernel: `out = q · idct_mult` per coefficient (exact: |q| is
/// far below 2^24, so the int→float conversion never rounds).
#[inline(always)]
unsafe fn dequantize_kernel<S: Simd8>(q: &[i32; 64], mult: &[f32; 64], out: &mut [f32; 64]) {
    unsafe {
        let q8 = &*(q.as_ptr() as *const [[i32; 8]; 8]);
        let m8 = &*(mult.as_ptr() as *const [[f32; 8]; 8]);
        let o8 = &mut *(out.as_mut_ptr() as *mut [[f32; 8]; 8]);
        for g in 0..8 {
            let v = S::f_mul(S::i_to_f(S::i_load(&q8[g])), S::f_load(&m8[g]));
            S::f_store(v, &mut o8[g]);
        }
    }
}

/// Per-group f32 clamp floors for the fused kernel: DC (group 0, lane 0)
/// admits `COEFF_MIN = -1024`, every AC lane `AC_MIN = -1023`. The ceiling
/// is uniformly `1023.0`. Clamping the *unrounded* product against exact
/// integer bounds before magic-rounding equals clamping after rounding:
/// an in-range product is untouched, and a clamped lane lands exactly on
/// the integer bound, where the rounder is the identity and the tie fixup
/// a no-op.
const FUSED_CLAMP_LO: [f32; 8] = [
    -1024.0, -1023.0, -1023.0, -1023.0, -1023.0, -1023.0, -1023.0, -1023.0,
];

/// Fused level-shift + forward DCT + quantize + range clamp, reading the
/// 8 sample rows of a block directly at `stride` spacing: one dispatch per
/// block, no spatial staging, and the scaled-frequency intermediate stays
/// in lane registers between the stages. The op sequence is exactly the
/// staged pipeline's — lane-subtract 128 (the gather's level shift),
/// [`crate::dct::fdct_core`], then [`quantize_kernel`]'s rounding — so
/// outputs are bit-identical to
/// `quantize_scaled_into(&forward_scaled(shifted), ..)` + `clamp_block`.
///
/// # Safety
/// `src` must be valid for reads of `7 * stride + 8` `f32`s, and `out`
/// valid for writes of 64 `i32`s (it may be uninitialized — every slot is
/// written, which is what lets `from_plane` fill fresh capacity without a
/// zero-fill pass).
#[inline(always)]
unsafe fn fdct_quantize_rows_kernel<S: Simd8>(
    src: *const f32,
    stride: usize,
    fold: &[f32; 64],
    out: *mut i32,
) {
    unsafe {
        let shift = S::f_splat(128.0);
        let mut d = [S::f_sub(S::f_load(&*(src as *const [f32; 8])), shift); 8];
        for (i, row) in d.iter_mut().enumerate().skip(1) {
            *row = S::f_sub(S::f_load(&*(src.add(i * stride) as *const [f32; 8])), shift);
        }
        crate::dct::fdct_core::<S>(&mut d);

        let magic = S::f_splat(ROUND_MAGIC);
        let limit = S::f_splat(ROUND_LIMIT);
        let magic_bits = S::i_splat(ROUND_MAGIC_BITS);
        let half = S::f_splat(0.5);
        let neg_half = S::f_splat(-0.5);
        let zero = S::f_splat(0.0);
        let hi = S::f_splat(1023.0);
        let f8 = &*(fold.as_ptr() as *const [[f32; 8]; 8]);
        let o8 = out as *mut [i32; 8];
        for g in 0..8 {
            let q = S::f_mul(d[g], S::f_load(&f8[g]));
            // Same NaN/out-of-range guard as `quantize_kernel`, evaluated
            // *before* the clamp so a NaN lane still takes the scalar
            // fallback (min/max would silently absorb it).
            if !S::f_all(S::f_cmp_lt(S::f_abs(q), limit)) {
                let mut tmp = [0.0f32; 8];
                S::f_store(d[g], &mut tmp);
                for i in 0..8 {
                    let v = (tmp[i] * f8[g][i]).round() as i32;
                    (*o8.add(g))[i] = if g == 0 && i == 0 {
                        v.clamp(crate::COEFF_MIN, crate::COEFF_MAX)
                    } else {
                        v.clamp(crate::AC_MIN, crate::AC_MAX)
                    };
                }
                continue;
            }
            let lo = if g == 0 {
                S::f_load(&FUSED_CLAMP_LO)
            } else {
                S::f_splat(-1023.0)
            };
            let c = S::f_min(S::f_max(q, lo), hi);
            let y = S::f_add(c, magic);
            let r = S::f_sub(y, magic);
            let base = S::i_sub(S::f_bits(y), magic_bits);
            let dd = S::f_sub(c, r);
            let up = S::f_and(S::f_cmp_ge(dd, half), S::f_cmp_gt(c, zero));
            let down = S::f_and(S::f_cmp_le(dd, neg_half), S::f_cmp_lt(c, zero));
            let v = S::i_add(S::i_sub(base, S::f_bits(up)), S::f_bits(down));
            S::i_store(v, &mut *o8.add(g));
        }
    }
}

/// [`fdct_quantize_rows_kernel`] over `nblocks` horizontally adjacent
/// blocks: block `i` reads rows at `src + 8i` and writes `out + 64i`. One
/// dispatch per block *row* instead of per block lets the compiler hoist
/// every splat constant of the DCT and quantizer out of the block loop.
///
/// # Safety
/// `src` must be valid for reads of `7 * stride + 8 * nblocks` `f32`s and
/// `out` for `64 * nblocks` `i32` writes (may be uninitialized; every slot
/// is written).
#[inline(always)]
unsafe fn fdct_quantize_row_band_kernel<S: Simd8>(
    src: *const f32,
    stride: usize,
    nblocks: usize,
    fold: &[f32; 64],
    out: *mut i32,
) {
    unsafe {
        for i in 0..nblocks {
            fdct_quantize_rows_kernel::<S>(src.add(8 * i), stride, fold, out.add(64 * i));
        }
    }
}

puppies_image::simd_dispatch! {
    fn quantize_folded / quantize_folded_with(scaled: &[f32; 64], fold: &[f32; 64], out: &mut [i32; 64]) = quantize_kernel;
    fn dequantize_folded / dequantize_folded_with(q: &[i32; 64], mult: &[f32; 64], out: &mut [f32; 64]) = dequantize_kernel;
    fn fdct_quantize_rows / fdct_quantize_rows_with(src: *const f32, stride: usize, fold: &[f32; 64], out: *mut i32) = fdct_quantize_rows_kernel;
    fn fdct_quantize_row_band / fdct_quantize_row_band_with(src: *const f32, stride: usize, nblocks: usize, fold: &[f32; 64], out: *mut i32) = fdct_quantize_row_band_kernel;
}

impl FoldedQuant {
    fn new(table: &QuantTable) -> Self {
        let mut fold = [0.0f32; 64];
        let mut idct_mult = [0.0f32; 64];
        for u in 0..8 {
            for v in 0..8 {
                let i = u * 8 + v;
                let aan = crate::dct::aan_scale(u) * crate::dct::aan_scale(v);
                fold[i] = (1.0 / (8.0 * aan * table.steps[i] as f64)) as f32;
                idct_mult[i] = (table.steps[i] as f64 * aan / 8.0) as f32;
            }
        }
        FoldedQuant { fold, idct_mult }
    }

    /// Quantizes the output of [`crate::dct::forward_scaled`]. Produces the
    /// same integers as `QuantTable::quantize(dct::forward(..))` up to ±1
    /// on half-step ties (see the type-level docs), identically on every
    /// SIMD backend.
    pub fn quantize_scaled(&self, scaled: &[f32; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        self.quantize_scaled_into(scaled, &mut out);
        out
    }

    /// [`Self::quantize_scaled`] writing into a caller-provided block, so
    /// per-block loops can fill their destination in place.
    pub fn quantize_scaled_into(&self, scaled: &[f32; 64], out: &mut [i32; 64]) {
        quantize_folded(scaled, &self.fold, out);
    }

    /// Fused level shift + forward DCT + quantize + range clamp over a
    /// block whose 8 sample rows start at `src` spaced `stride` `f32`s
    /// apart (raw `[0, 255]`-nominal samples — the kernel applies the
    /// `-128` level shift in-lane). Bit-identical to staging the shifted
    /// block, running `forward_scaled_into` + `quantize_scaled_into`, and
    /// `clamp_block`ing the result.
    ///
    /// # Safety
    /// `src` must be valid for reads of `7 * stride + 8` `f32`s, and `out`
    /// for writes of 64 `i32`s. `out` may point at uninitialized memory:
    /// every slot is written, so `from_plane` can quantize straight into
    /// fresh `Vec` capacity without a zero-fill pass.
    pub unsafe fn fdct_quantize_rows_into(&self, src: *const f32, stride: usize, out: *mut i32) {
        fdct_quantize_rows(src, stride, &self.fold, out);
    }

    /// [`Self::fdct_quantize_rows_into`] over `nblocks` horizontally
    /// adjacent blocks (block `i` at `src + 8i` → `out + 64i`): one
    /// dispatch per block row.
    ///
    /// # Safety
    /// `src` must be valid for reads of `7 * stride + 8 * nblocks` `f32`s
    /// and `out` for `64 * nblocks` `i32` writes (may be uninitialized;
    /// every slot is written).
    pub unsafe fn fdct_quantize_row_band_into(
        &self,
        src: *const f32,
        stride: usize,
        nblocks: usize,
        out: *mut i32,
    ) {
        fdct_quantize_row_band(src, stride, nblocks, &self.fold, out);
    }

    /// [`Self::fdct_quantize_rows_into`] over a contiguous row-major block
    /// of raw samples — the safe form used for edge blocks and tests.
    pub fn fdct_quantize_block_into(&self, raw: &[f32; 64], out: &mut [i32; 64]) {
        fdct_quantize_rows(raw.as_ptr(), 8, &self.fold, out.as_mut_ptr());
    }

    /// [`Self::fdct_quantize_block_into`] on an explicit SIMD backend
    /// (test-facing; asserts the backend is available).
    pub fn fdct_quantize_block_into_with(
        &self,
        backend: puppies_image::simd::Backend,
        raw: &[f32; 64],
        out: &mut [i32; 64],
    ) {
        fdct_quantize_rows_with(backend, raw.as_ptr(), 8, &self.fold, out.as_mut_ptr());
    }

    /// [`Self::quantize_scaled_into`] on an explicit SIMD backend
    /// (test-facing; asserts the backend is available).
    pub fn quantize_scaled_into_with(
        &self,
        backend: puppies_image::simd::Backend,
        scaled: &[f32; 64],
        out: &mut [i32; 64],
    ) {
        quantize_folded_with(backend, scaled, &self.fold, out);
    }

    /// Dequantizes integer coefficients into [`crate::dct::inverse_scaled`]
    /// input. Equivalent to `dct`-scaling `QuantTable::dequantize` output.
    pub fn dequantize_scaled(&self, q: &[i32; 64]) -> [f32; 64] {
        let mut out = [0.0f32; 64];
        self.dequantize_scaled_into(q, &mut out);
        out
    }

    /// [`Self::dequantize_scaled`] writing into a caller-provided buffer.
    pub fn dequantize_scaled_into(&self, q: &[i32; 64], out: &mut [f32; 64]) {
        dequantize_folded(q, &self.idct_mult, out);
    }

    /// [`Self::dequantize_scaled_into`] on an explicit SIMD backend
    /// (test-facing; asserts the backend is available).
    pub fn dequantize_scaled_into_with(
        &self,
        backend: puppies_image::simd::Backend,
        q: &[i32; 64],
        out: &mut [f32; 64],
    ) {
        dequantize_folded_with(backend, q, &self.idct_mult, out);
    }
}

impl Default for QuantTable {
    /// The quality-75 luminance table.
    fn default() -> Self {
        QuantTable::luma(75)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_reproduces_base_tables() {
        assert_eq!(QuantTable::luma(50).steps(), &ANNEX_K_LUMA);
        assert_eq!(QuantTable::chroma(50).steps(), &ANNEX_K_CHROMA);
    }

    #[test]
    fn quality_100_is_all_ones() {
        assert!(QuantTable::luma(100).steps().iter().all(|&s| s == 1));
    }

    #[test]
    fn lower_quality_means_larger_steps() {
        let q20 = QuantTable::luma(20);
        let q80 = QuantTable::luma(80);
        for i in 0..64 {
            assert!(q20.steps()[i] >= q80.steps()[i], "index {i}");
        }
    }

    #[test]
    fn steps_clamped_to_255() {
        let q1 = QuantTable::luma(1);
        assert!(q1.steps().iter().all(|&s| s <= 255));
        assert!(q1.steps().iter().all(|&s| s >= 1));
    }

    #[test]
    fn quantize_dequantize_bounds_error_by_half_step() {
        let t = QuantTable::luma(75);
        let mut raw = [0.0f32; 64];
        for (i, v) in raw.iter_mut().enumerate() {
            *v = (i as f32 * 7.3) - 200.0;
        }
        let deq = t.dequantize(&t.quantize(&raw));
        for i in 0..64 {
            assert!(
                (deq[i] - raw[i]).abs() <= t.steps()[i] as f32 / 2.0 + 1e-3,
                "index {i}: {} vs {}",
                deq[i],
                raw[i]
            );
        }
    }

    #[test]
    fn requantize_matches_direct_quantization() {
        let fine = QuantTable::luma(90);
        let coarse = QuantTable::luma(40);
        let mut q = [0i32; 64];
        for (i, v) in q.iter_mut().enumerate() {
            *v = (i as i32 % 17) - 8;
        }
        let re = fine.requantize_to(&q, &coarse);
        let direct = coarse.quantize(&fine.dequantize(&q));
        assert_eq!(re, direct);
    }

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut b = [0.0f32; 64];
        let mut s = seed;
        for v in &mut b {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 256) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn folded_quantize_matches_reference_pipeline() {
        // The fast path is all-f32 with a folded multiplier, so against the
        // f64 orthonormal reference it is a bounded differential: every
        // coefficient within ±1 (half-step ties land either way), and the
        // overwhelming majority identical. Exactness lives in the
        // cross-backend identity test below instead.
        let mut total = 0u64;
        let mut mismatched = 0u64;
        for quality in [25u8, 50, 75, 92] {
            for table in [QuantTable::luma(quality), QuantTable::chroma(quality)] {
                let folded = table.folded();
                for seed in [1u32, 77, 90210, 0xC0FFEE, 7_654_321] {
                    let block = sample_block(seed ^ quality as u32);
                    let reference = table.quantize(&crate::dct::forward(&block));
                    let fast = folded.quantize_scaled(&crate::dct::forward_scaled(&block));
                    for i in 0..64 {
                        assert!(
                            (reference[i] - fast[i]).abs() <= 1,
                            "q{quality} seed {seed} idx {i}: {} vs {}",
                            reference[i],
                            fast[i]
                        );
                        total += 1;
                        mismatched += u64::from(reference[i] != fast[i]);
                    }
                }
            }
        }
        assert!(
            mismatched * 100 <= total,
            "more than 1% of coefficients off-by-one: {mismatched}/{total}"
        );
    }

    #[test]
    fn folded_quantize_bit_identical_across_backends() {
        use puppies_image::simd::Backend;
        for quality in [25u8, 50, 75, 90] {
            let table = QuantTable::luma(quality);
            let folded = table.folded();
            for seed in [1u32, 77, 90210] {
                let block = sample_block(seed ^ quality as u32);
                let scaled = crate::dct::forward_scaled(&block);
                let mut want = [0i32; 64];
                folded.quantize_scaled_into_with(Backend::Scalar, &scaled, &mut want);
                let mut want_dq = [0.0f32; 64];
                folded.dequantize_scaled_into_with(Backend::Scalar, &want, &mut want_dq);
                for backend in Backend::ALL.into_iter().filter(|b| b.available()) {
                    let mut got = [0i32; 64];
                    folded.quantize_scaled_into_with(backend, &scaled, &mut got);
                    assert_eq!(want, got, "quantize diverges on {}", backend.name());
                    let mut got_dq = [0.0f32; 64];
                    folded.dequantize_scaled_into_with(backend, &got, &mut got_dq);
                    assert_eq!(
                        want_dq.map(f32::to_bits),
                        got_dq.map(f32::to_bits),
                        "dequantize diverges on {}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_rows_matches_staged_pipeline_and_clamp() {
        use puppies_image::simd::Backend;
        // Ordinary, clamp-triggering (huge amplitude), and NaN-poisoned
        // blocks: the fused kernel must match stage-shift →
        // `forward_scaled_into` → `quantize_scaled_into` → clamp exactly,
        // on every backend.
        let mut cases: Vec<[f32; 64]> = vec![sample_block(42), sample_block(0xBEEF)];
        let mut big = [0.0f32; 64];
        for (i, v) in big.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1.0e7 } else { -9.5e6 };
        }
        cases.push(big);
        let mut poisoned = sample_block(7);
        poisoned[3] = f32::NAN;
        poisoned[60] = f32::INFINITY;
        cases.push(poisoned);

        for quality in [25u8, 50, 75, 90] {
            let folded = QuantTable::luma(quality).folded();
            for raw in &cases {
                let mut shifted = [0.0f32; 64];
                for i in 0..64 {
                    shifted[i] = raw[i] - 128.0;
                }
                let mut scaled = [0.0f32; 64];
                crate::dct::forward_scaled_into(&shifted, &mut scaled);
                let mut want = [0i32; 64];
                folded.quantize_scaled_into(&scaled, &mut want);
                want[0] = want[0].clamp(crate::COEFF_MIN, crate::COEFF_MAX);
                for v in &mut want[1..] {
                    *v = (*v).clamp(crate::AC_MIN, crate::AC_MAX);
                }
                for backend in Backend::ALL.into_iter().filter(|b| b.available()) {
                    let mut got = [0i32; 64];
                    folded.fdct_quantize_block_into_with(backend, raw, &mut got);
                    assert_eq!(want, got, "fused diverges on {}", backend.name());
                }
            }
        }
    }

    #[test]
    fn folded_dequantize_feeds_inverse_scaled_matching_reference() {
        let table = QuantTable::luma(75);
        let folded = table.folded();
        let mut q = [0i32; 64];
        let mut s = 0xABCDu32;
        for v in &mut q {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 41) as i32 - 20;
        }
        let reference = crate::dct::inverse(&table.dequantize(&q));
        let fast = crate::dct::inverse_scaled(&folded.dequantize_scaled(&q));
        for i in 0..64 {
            assert!(
                (reference[i] - fast[i]).abs() < 1e-3,
                "idx {i}: {} vs {}",
                reference[i],
                fast[i]
            );
        }
    }

    #[test]
    fn nearest_quality_roundtrips_ijg_scaling() {
        for q in [1u8, 10, 25, 50, 75, 90, 95, 99, 100] {
            assert_eq!(QuantTable::luma(q).nearest_quality(&ANNEX_K_LUMA), q);
        }
        // Chroma saturates to an all-255 table for q <= 3 (the base table's
        // smallest step is 17), so those qualities are indistinguishable —
        // start at 4 where the scaling is injective again.
        for q in [4u8, 10, 25, 50, 75, 90, 95, 99, 100] {
            assert_eq!(QuantTable::chroma(q).nearest_quality(&ANNEX_K_CHROMA), q);
        }
    }

    #[test]
    fn nearest_quality_tolerates_small_perturbations() {
        // A table one step off in one slot still resolves to the quality
        // that generated it.
        let mut steps = *QuantTable::luma(75).steps();
        steps[5] += 1;
        assert_eq!(QuantTable::new(steps).nearest_quality(&ANNEX_K_LUMA), 75);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let mut s = ANNEX_K_LUMA;
        s[5] = 0;
        let _ = QuantTable::new(s);
    }

    #[test]
    fn luma_low_frequencies_have_smaller_steps() {
        // The premise behind Algorithm 3's wide-range protection of low
        // frequencies: the standard table quantizes them more finely.
        let t = QuantTable::luma(50);
        assert!(t.steps()[0] < t.steps()[63]);
        assert!(t.steps()[1] < t.steps()[62]);
    }
}
