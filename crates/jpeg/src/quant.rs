//! Quantization tables (JPEG Annex K) and IJG-style quality scaling.
//!
//! §II-A step 3 of the paper: larger step sizes for higher frequencies,
//! which is why visual information concentrates in the low-frequency
//! coefficients PuPPIeS protects most strongly (Algorithm 3).

/// The Annex K.1 luminance quantization table (row-major).
pub const ANNEX_K_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The Annex K.2 chrominance quantization table (row-major).
pub const ANNEX_K_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// An 8×8 quantization table (row-major step sizes, each in `1..=255` for
/// baseline 8-bit streams).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTable {
    steps: [u16; 64],
}

impl QuantTable {
    /// Creates a table from explicit step sizes.
    ///
    /// # Panics
    /// Panics if any step is zero.
    pub fn new(steps: [u16; 64]) -> Self {
        assert!(
            steps.iter().all(|&s| s > 0),
            "quantization steps must be positive"
        );
        QuantTable { steps }
    }

    /// The standard luminance table scaled to `quality` (1..=100) with the
    /// IJG formula used by libjpeg.
    pub fn luma(quality: u8) -> Self {
        Self::scaled(&ANNEX_K_LUMA, quality)
    }

    /// The standard chrominance table scaled to `quality` (1..=100).
    pub fn chroma(quality: u8) -> Self {
        Self::scaled(&ANNEX_K_CHROMA, quality)
    }

    /// Scales an arbitrary base table with the IJG quality mapping:
    /// `q < 50` scales by `5000/q` percent, `q >= 50` by `200 - 2q` percent.
    pub fn scaled(base: &[u16; 64], quality: u8) -> Self {
        let q = quality.clamp(1, 100) as i32;
        let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
        let mut steps = [0u16; 64];
        for (s, &b) in steps.iter_mut().zip(base.iter()) {
            let v = (b as i32 * scale + 50) / 100;
            *s = v.clamp(1, 255) as u16;
        }
        QuantTable { steps }
    }

    /// The step sizes (row-major).
    pub fn steps(&self) -> &[u16; 64] {
        &self.steps
    }

    /// Quantizes one raw DCT block (row-major floats) to integer
    /// coefficients by rounding to the nearest step multiple.
    pub fn quantize(&self, raw: &[f32; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        for i in 0..64 {
            out[i] = (raw[i] / self.steps[i] as f32).round() as i32;
        }
        out
    }

    /// Dequantizes integer coefficients back to raw DCT values.
    pub fn dequantize(&self, q: &[i32; 64]) -> [f32; 64] {
        let mut out = [0.0f32; 64];
        for i in 0..64 {
            out[i] = (q[i] * self.steps[i] as i32) as f32;
        }
        out
    }

    /// Requantizes coefficients from this table to a `coarser` one, the
    /// coefficient-domain equivalent of JPEG recompression (the paper's
    /// "compression" transformation, §IV-C.2).
    pub fn requantize_to(&self, q: &[i32; 64], coarser: &QuantTable) -> [i32; 64] {
        let mut out = [0i32; 64];
        for i in 0..64 {
            let raw = q[i] as i64 * self.steps[i] as i64;
            let step = coarser.steps[i] as i64;
            // Round half away from zero, matching quantize() on exact values.
            let v = if raw >= 0 {
                (raw + step / 2) / step
            } else {
                (raw - step / 2) / step
            };
            out[i] = v as i32;
        }
        out
    }
}

impl Default for QuantTable {
    /// The quality-75 luminance table.
    fn default() -> Self {
        QuantTable::luma(75)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_reproduces_base_tables() {
        assert_eq!(QuantTable::luma(50).steps(), &ANNEX_K_LUMA);
        assert_eq!(QuantTable::chroma(50).steps(), &ANNEX_K_CHROMA);
    }

    #[test]
    fn quality_100_is_all_ones() {
        assert!(QuantTable::luma(100).steps().iter().all(|&s| s == 1));
    }

    #[test]
    fn lower_quality_means_larger_steps() {
        let q20 = QuantTable::luma(20);
        let q80 = QuantTable::luma(80);
        for i in 0..64 {
            assert!(q20.steps()[i] >= q80.steps()[i], "index {i}");
        }
    }

    #[test]
    fn steps_clamped_to_255() {
        let q1 = QuantTable::luma(1);
        assert!(q1.steps().iter().all(|&s| s <= 255));
        assert!(q1.steps().iter().all(|&s| s >= 1));
    }

    #[test]
    fn quantize_dequantize_bounds_error_by_half_step() {
        let t = QuantTable::luma(75);
        let mut raw = [0.0f32; 64];
        for (i, v) in raw.iter_mut().enumerate() {
            *v = (i as f32 * 7.3) - 200.0;
        }
        let deq = t.dequantize(&t.quantize(&raw));
        for i in 0..64 {
            assert!(
                (deq[i] - raw[i]).abs() <= t.steps()[i] as f32 / 2.0 + 1e-3,
                "index {i}: {} vs {}",
                deq[i],
                raw[i]
            );
        }
    }

    #[test]
    fn requantize_matches_direct_quantization() {
        let fine = QuantTable::luma(90);
        let coarse = QuantTable::luma(40);
        let mut q = [0i32; 64];
        for (i, v) in q.iter_mut().enumerate() {
            *v = (i as i32 % 17) - 8;
        }
        let re = fine.requantize_to(&q, &coarse);
        let direct = coarse.quantize(&fine.dequantize(&q));
        assert_eq!(re, direct);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let mut s = ANNEX_K_LUMA;
        s[5] = 0;
        let _ = QuantTable::new(s);
    }

    #[test]
    fn luma_low_frequencies_have_smaller_steps() {
        // The premise behind Algorithm 3's wide-range protection of low
        // frequencies: the standard table quantizes them more finely.
        let t = QuantTable::luma(50);
        assert!(t.steps()[0] < t.steps()[63]);
        assert!(t.steps()[1] < t.steps()[62]);
    }
}
