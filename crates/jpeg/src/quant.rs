//! Quantization tables (JPEG Annex K) and IJG-style quality scaling.
//!
//! §II-A step 3 of the paper: larger step sizes for higher frequencies,
//! which is why visual information concentrates in the low-frequency
//! coefficients PuPPIeS protects most strongly (Algorithm 3).

/// The Annex K.1 luminance quantization table (row-major).
pub const ANNEX_K_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The Annex K.2 chrominance quantization table (row-major).
pub const ANNEX_K_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// An 8×8 quantization table (row-major step sizes, each in `1..=255` for
/// baseline 8-bit streams).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTable {
    steps: [u16; 64],
}

impl QuantTable {
    /// Creates a table from explicit step sizes.
    ///
    /// # Panics
    /// Panics if any step is zero.
    pub fn new(steps: [u16; 64]) -> Self {
        assert!(
            steps.iter().all(|&s| s > 0),
            "quantization steps must be positive"
        );
        QuantTable { steps }
    }

    /// The standard luminance table scaled to `quality` (1..=100) with the
    /// IJG formula used by libjpeg.
    pub fn luma(quality: u8) -> Self {
        Self::scaled(&ANNEX_K_LUMA, quality)
    }

    /// The standard chrominance table scaled to `quality` (1..=100).
    pub fn chroma(quality: u8) -> Self {
        Self::scaled(&ANNEX_K_CHROMA, quality)
    }

    /// Scales an arbitrary base table with the IJG quality mapping:
    /// `q < 50` scales by `5000/q` percent, `q >= 50` by `200 - 2q` percent.
    pub fn scaled(base: &[u16; 64], quality: u8) -> Self {
        let q = quality.clamp(1, 100) as i32;
        let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
        let mut steps = [0u16; 64];
        for (s, &b) in steps.iter_mut().zip(base.iter()) {
            let v = (b as i32 * scale + 50) / 100;
            *s = v.clamp(1, 255) as u16;
        }
        QuantTable { steps }
    }

    /// The step sizes (row-major).
    pub fn steps(&self) -> &[u16; 64] {
        &self.steps
    }

    /// Quantizes one raw DCT block (row-major floats) to integer
    /// coefficients by rounding to the nearest step multiple.
    pub fn quantize(&self, raw: &[f32; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        for i in 0..64 {
            out[i] = (raw[i] / self.steps[i] as f32).round() as i32;
        }
        out
    }

    /// Dequantizes integer coefficients back to raw DCT values.
    pub fn dequantize(&self, q: &[i32; 64]) -> [f32; 64] {
        let mut out = [0.0f32; 64];
        for i in 0..64 {
            out[i] = (q[i] * self.steps[i] as i32) as f32;
        }
        out
    }

    /// The table with AAN descale factors folded in, for the fast
    /// scaled-DCT paths. Build once per component, not per block.
    pub fn folded(&self) -> FoldedQuant {
        FoldedQuant::new(self)
    }

    /// The IJG quality setting (1..=100) whose scaling of `base` lands
    /// closest to this table, minimizing total absolute step distance.
    /// Exact matches win outright (ties go to the higher quality, i.e. the
    /// finer table — the conservative choice when re-encoding). This is the
    /// standard way to recover "what quality was this stream encoded at"
    /// from a decoded DQT segment, which the PSP needs so pixel-domain
    /// re-encodes match the source's compression setting instead of a
    /// hardcoded default.
    pub fn nearest_quality(&self, base: &[u16; 64]) -> u8 {
        let mut best_q = 100u8;
        let mut best_dist = u64::MAX;
        for q in 1..=100u8 {
            let candidate = QuantTable::scaled(base, q);
            let dist: u64 = candidate
                .steps
                .iter()
                .zip(self.steps.iter())
                .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
                .sum();
            // `<=` so higher qualities win ties (including exact ones).
            if dist <= best_dist {
                best_dist = dist;
                best_q = q;
            }
        }
        best_q
    }

    /// Requantizes coefficients from this table to a `coarser` one, the
    /// coefficient-domain equivalent of JPEG recompression (the paper's
    /// "compression" transformation, §IV-C.2).
    pub fn requantize_to(&self, q: &[i32; 64], coarser: &QuantTable) -> [i32; 64] {
        let mut out = [0i32; 64];
        for i in 0..64 {
            let raw = q[i] as i64 * self.steps[i] as i64;
            let step = coarser.steps[i] as i64;
            // Round half away from zero, matching quantize() on exact values.
            let v = if raw >= 0 {
                (raw + step / 2) / step
            } else {
                (raw - step / 2) / step
            };
            out[i] = v as i32;
        }
        out
    }
}

/// A quantization table with the AAN scale factors folded in, pairing with
/// [`crate::dct::forward_scaled`] / [`crate::dct::inverse_scaled`].
///
/// Bit-identity with the reference path is preserved by *staging*: the
/// forward side first descales the AAN output to the orthonormal
/// coefficient and rounds it through f32 — reproducing exactly the f32
/// value [`crate::dct::forward`] emits — then performs the same f32
/// divide-and-round that [`QuantTable::quantize`] performs. Folding the
/// descale and the step into one multiplier would be one multiply cheaper
/// but rounds differently on half-step ties (e.g. a coefficient of exactly
/// 4.5 against step 3), which would break fast == reference.
#[derive(Debug, Clone)]
pub struct FoldedQuant {
    /// `1/(8·aan(u)·aan(v))`: descales `forward_scaled` output to the
    /// orthonormal coefficient the reference `forward` produces.
    descale: [f64; 64],
    /// Step sizes as f32, so the divide matches `quantize` bit for bit.
    steps_f32: [f32; 64],
    /// `step·aan(u)·aan(v)/8`: dequantizes integer coefficients straight
    /// into `inverse_scaled` input, one multiply per coefficient.
    idct_mult: [f64; 64],
}

impl FoldedQuant {
    fn new(table: &QuantTable) -> Self {
        let mut descale = [0.0f64; 64];
        let mut steps_f32 = [0.0f32; 64];
        let mut idct_mult = [0.0f64; 64];
        for u in 0..8 {
            for v in 0..8 {
                let i = u * 8 + v;
                let aan = crate::dct::aan_scale(u) * crate::dct::aan_scale(v);
                descale[i] = 1.0 / (8.0 * aan);
                steps_f32[i] = table.steps[i] as f32;
                idct_mult[i] = table.steps[i] as f64 * aan / 8.0;
            }
        }
        FoldedQuant {
            descale,
            steps_f32,
            idct_mult,
        }
    }

    /// Quantizes the output of [`crate::dct::forward_scaled`]. Produces the
    /// same integers as `QuantTable::quantize(dct::forward(..))`.
    pub fn quantize_scaled(&self, scaled: &[f64; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        self.quantize_scaled_into(scaled, &mut out);
        out
    }

    /// [`Self::quantize_scaled`] writing into a caller-provided block, so
    /// per-block loops can fill their destination in place.
    pub fn quantize_scaled_into(&self, scaled: &[f64; 64], out: &mut [i32; 64]) {
        // Stage through f32 so both paths round the identical value. Kept
        // as its own (2-wide f64) loop so the f32 divide loop below stays
        // uniform for the vectorizer.
        let mut un = [0.0f32; 64];
        for i in 0..64 {
            un[i] = (scaled[i] * self.descale[i]) as f32;
        }
        // Exact round-half-away-from-zero, equal to `q.round() as i32`,
        // without the libm `roundf` call that keeps the SSE2 baseline from
        // vectorizing this loop. Adding/subtracting 1.5·2^23 rounds q to
        // the nearest integer (ties to even) exactly for |q| < 2^22; the
        // residual d = q - r is then exact (Sterbenz) and |d| <= 0.5, so a
        // tie (|d| = 0.5, where round-to-even may disagree with
        // round-half-away) is fixed up by one sign-aware compare per side.
        // NaN, ±inf, and finite |q| >= 2^22 all trip the (negated, so NaN
        // is caught) range check and take the scalar `.round()` fallback,
        // keeping every input bit-identical to the reference.
        let mut fallback = false;
        for i in 0..64 {
            let q = un[i] / self.steps_f32[i];
            // The negated compare is load-bearing: unlike `>=`, it is true
            // for NaN, which must take the fallback path.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            {
                fallback |= !(q.abs() < 4_194_304.0);
            }
            let y = q + 12_582_912.0;
            // For y in [2^23, 2^24) the mantissa bits *are* y - 2^23, so
            // round_even(q) = bits(y) - bits(1.5·2^23) as a plain integer
            // subtraction — no float→int cast (whose saturating semantics
            // keep it scalar) anywhere in the loop.
            let base = (y.to_bits() as i32).wrapping_sub(0x4B40_0000);
            let d = q - (y - 12_582_912.0);
            let up = (d >= 0.5 && q > 0.0) as i32;
            let down = (d <= -0.5 && q < 0.0) as i32;
            out[i] = base + up - down;
        }
        if fallback {
            for i in 0..64 {
                out[i] = (un[i] / self.steps_f32[i]).round() as i32;
            }
        }
    }

    /// Dequantizes integer coefficients into [`crate::dct::inverse_scaled`]
    /// input. Equivalent to `dct`-scaling `QuantTable::dequantize` output.
    pub fn dequantize_scaled(&self, q: &[i32; 64]) -> [f64; 64] {
        let mut out = [0.0f64; 64];
        self.dequantize_scaled_into(q, &mut out);
        out
    }

    /// [`Self::dequantize_scaled`] writing into a caller-provided buffer.
    pub fn dequantize_scaled_into(&self, q: &[i32; 64], out: &mut [f64; 64]) {
        for i in 0..64 {
            out[i] = q[i] as f64 * self.idct_mult[i];
        }
    }
}

impl Default for QuantTable {
    /// The quality-75 luminance table.
    fn default() -> Self {
        QuantTable::luma(75)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_reproduces_base_tables() {
        assert_eq!(QuantTable::luma(50).steps(), &ANNEX_K_LUMA);
        assert_eq!(QuantTable::chroma(50).steps(), &ANNEX_K_CHROMA);
    }

    #[test]
    fn quality_100_is_all_ones() {
        assert!(QuantTable::luma(100).steps().iter().all(|&s| s == 1));
    }

    #[test]
    fn lower_quality_means_larger_steps() {
        let q20 = QuantTable::luma(20);
        let q80 = QuantTable::luma(80);
        for i in 0..64 {
            assert!(q20.steps()[i] >= q80.steps()[i], "index {i}");
        }
    }

    #[test]
    fn steps_clamped_to_255() {
        let q1 = QuantTable::luma(1);
        assert!(q1.steps().iter().all(|&s| s <= 255));
        assert!(q1.steps().iter().all(|&s| s >= 1));
    }

    #[test]
    fn quantize_dequantize_bounds_error_by_half_step() {
        let t = QuantTable::luma(75);
        let mut raw = [0.0f32; 64];
        for (i, v) in raw.iter_mut().enumerate() {
            *v = (i as f32 * 7.3) - 200.0;
        }
        let deq = t.dequantize(&t.quantize(&raw));
        for i in 0..64 {
            assert!(
                (deq[i] - raw[i]).abs() <= t.steps()[i] as f32 / 2.0 + 1e-3,
                "index {i}: {} vs {}",
                deq[i],
                raw[i]
            );
        }
    }

    #[test]
    fn requantize_matches_direct_quantization() {
        let fine = QuantTable::luma(90);
        let coarse = QuantTable::luma(40);
        let mut q = [0i32; 64];
        for (i, v) in q.iter_mut().enumerate() {
            *v = (i as i32 % 17) - 8;
        }
        let re = fine.requantize_to(&q, &coarse);
        let direct = coarse.quantize(&fine.dequantize(&q));
        assert_eq!(re, direct);
    }

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut b = [0.0f32; 64];
        let mut s = seed;
        for v in &mut b {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 256) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn folded_quantize_matches_reference_pipeline() {
        for quality in [25u8, 50, 75, 92] {
            for table in [QuantTable::luma(quality), QuantTable::chroma(quality)] {
                let folded = table.folded();
                for seed in [1u32, 77, 90210, 0xC0FFEE, 7_654_321] {
                    let block = sample_block(seed ^ quality as u32);
                    let reference = table.quantize(&crate::dct::forward(&block));
                    let fast = folded.quantize_scaled(&crate::dct::forward_scaled(&block));
                    assert_eq!(reference, fast, "q{quality} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn folded_dequantize_feeds_inverse_scaled_matching_reference() {
        let table = QuantTable::luma(75);
        let folded = table.folded();
        let mut q = [0i32; 64];
        let mut s = 0xABCDu32;
        for v in &mut q {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s % 41) as i32 - 20;
        }
        let reference = crate::dct::inverse(&table.dequantize(&q));
        let fast = crate::dct::inverse_scaled(&folded.dequantize_scaled(&q));
        for i in 0..64 {
            assert!(
                (reference[i] - fast[i]).abs() < 1e-4,
                "idx {i}: {} vs {}",
                reference[i],
                fast[i]
            );
        }
    }

    #[test]
    fn nearest_quality_roundtrips_ijg_scaling() {
        for q in [1u8, 10, 25, 50, 75, 90, 95, 99, 100] {
            assert_eq!(QuantTable::luma(q).nearest_quality(&ANNEX_K_LUMA), q);
        }
        // Chroma saturates to an all-255 table for q <= 3 (the base table's
        // smallest step is 17), so those qualities are indistinguishable —
        // start at 4 where the scaling is injective again.
        for q in [4u8, 10, 25, 50, 75, 90, 95, 99, 100] {
            assert_eq!(QuantTable::chroma(q).nearest_quality(&ANNEX_K_CHROMA), q);
        }
    }

    #[test]
    fn nearest_quality_tolerates_small_perturbations() {
        // A table one step off in one slot still resolves to the quality
        // that generated it.
        let mut steps = *QuantTable::luma(75).steps();
        steps[5] += 1;
        assert_eq!(QuantTable::new(steps).nearest_quality(&ANNEX_K_LUMA), 75);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let mut s = ANNEX_K_LUMA;
        s[5] = 0;
        let _ = QuantTable::new(s);
    }

    #[test]
    fn luma_low_frequencies_have_smaller_steps() {
        // The premise behind Algorithm 3's wide-range protection of low
        // frequencies: the standard table quantizes them more finely.
        let t = QuantTable::luma(50);
        assert!(t.steps()[0] < t.steps()[63]);
        assert!(t.steps()[1] < t.steps()[62]);
    }
}
