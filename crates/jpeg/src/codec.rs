//! JFIF marker framing: serializing a [`CoeffImage`] to a baseline JPEG
//! byte stream and parsing it back.
//!
//! The encoder emits SOI, APP0/JFIF, DQT, SOF0 (baseline sequential, 8-bit,
//! 4:4:4 or grayscale), DHT, SOS, entropy-coded data and EOI. The decoder
//! accepts the same subset, skipping unknown APPn/COM segments. Restart
//! markers, subsampling, progressive scans and arithmetic coding are out of
//! scope — none are needed by the evaluation, and 4:4:4 is required anyway
//! to keep ROI block grids aligned across components.

use crate::coeff::{CoeffImage, Component};
use crate::huffman::{
    decode_block_natural_into, encode_block_natural, encode_block_natural_masked,
    tally_block_natural_mask, BitReader, BitWriter, HuffDecoder, HuffEncoder, HuffTable,
    SymbolFreqs,
};
use crate::quant::QuantTable;
use crate::{JpegError, Result};

/// Huffman table strategy for encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HuffmanMode {
    /// The Annex K default tables. What a stock camera/encoder uses, and
    /// the setting under which PuPPIeS-B's ~10× blow-up appears.
    Standard,
    /// Per-image tables rebuilt from the actual (possibly perturbed)
    /// coefficient statistics — the PuPPIeS-C mechanism (§IV-B.3). This is
    /// the default because every libjpeg-based PSP pipeline enables
    /// `optimize_coding` for re-encodes.
    #[default]
    Optimized,
}

/// Options controlling [`encode`].
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct EncodeOptions {
    /// Huffman table strategy.
    pub huffman: HuffmanMode,
}

impl EncodeOptions {
    /// Options selecting the Annex K default tables.
    pub fn standard() -> Self {
        EncodeOptions {
            huffman: HuffmanMode::Standard,
        }
    }

    /// Options selecting per-image optimized tables.
    pub fn optimized() -> Self {
        EncodeOptions {
            huffman: HuffmanMode::Optimized,
        }
    }
}

// Marker bytes.
const SOI: u8 = 0xD8;
const EOI: u8 = 0xD9;
const SOF0: u8 = 0xC0;
const DHT: u8 = 0xC4;
const DQT: u8 = 0xDB;
const SOS: u8 = 0xDA;
const APP0: u8 = 0xE0;
const COM: u8 = 0xFE;

fn push_marker(out: &mut Vec<u8>, marker: u8) {
    out.push(0xFF);
    out.push(marker);
}

fn push_segment(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    push_marker(out, marker);
    let len = (payload.len() + 2) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a coefficient image to a JFIF byte stream.
///
/// # Errors
/// Returns [`JpegError::CoefficientRange`] if a coefficient falls outside
/// `[-1024, 1023]`.
pub fn encode(img: &CoeffImage, opts: &EncodeOptions) -> Result<Vec<u8>> {
    let _span = puppies_obs::span("jpeg.encode", "jpeg");
    let comps = img.components();
    let ncomp = comps.len();

    // Choose Huffman tables. Table class 0 = DC, 1 = AC; id 0 = luma,
    // id 1 = chroma.
    let (dc_tables, ac_tables, band_masks) = match opts.huffman {
        HuffmanMode::Standard => (
            vec![HuffTable::std_dc_luma(), HuffTable::std_dc_chroma()],
            vec![HuffTable::std_ac_luma(), HuffTable::std_ac_chroma()],
            None,
        ),
        HuffmanMode::Optimized => {
            let _span = puppies_obs::span("jpeg.huffman_build", "jpeg");
            // The tally pass records each block's zigzag nonzero mask so
            // the emission pass below skips its own 64-lane rescan.
            let (dc, ac, masks) = build_optimized_tables(img);
            (dc, ac, Some(masks))
        }
    };

    let mut out = Vec::new();
    push_marker(&mut out, SOI);

    // APP0 / JFIF 1.1.
    let mut app0 = Vec::new();
    app0.extend_from_slice(b"JFIF\0");
    app0.extend_from_slice(&[1, 1, 0, 0, 1, 0, 1, 0, 0]);
    push_segment(&mut out, APP0, &app0);

    // DQT: one table per distinct component table (luma id 0, chroma id 1).
    let mut dqt = Vec::new();
    emit_quant_table(&mut dqt, 0, comps[0].quant());
    if ncomp == 3 {
        emit_quant_table(&mut dqt, 1, comps[1].quant());
    }
    push_segment(&mut out, DQT, &dqt);

    // SOF0.
    let mut sof = Vec::new();
    sof.push(8); // precision
    sof.extend_from_slice(&(img.height() as u16).to_be_bytes());
    sof.extend_from_slice(&(img.width() as u16).to_be_bytes());
    sof.push(ncomp as u8);
    for (i, c) in comps.iter().enumerate() {
        sof.push(c.id());
        sof.push(0x11); // 1x1 sampling (4:4:4)
        sof.push(if i == 0 { 0 } else { 1 }); // quant table id
    }
    push_segment(&mut out, SOF0, &sof);

    // DHT.
    let mut dht = Vec::new();
    for (id, t) in dc_tables.iter().enumerate().take(ncomp.min(2)) {
        emit_huff_table(&mut dht, 0, id as u8, t);
    }
    for (id, t) in ac_tables.iter().enumerate().take(ncomp.min(2)) {
        emit_huff_table(&mut dht, 1, id as u8, t);
    }
    push_segment(&mut out, DHT, &dht);

    // SOS.
    let mut sos = Vec::new();
    sos.push(ncomp as u8);
    for (i, c) in comps.iter().enumerate() {
        sos.push(c.id());
        let tid = if i == 0 { 0 } else { 1 };
        sos.push((tid << 4) | tid);
    }
    sos.extend_from_slice(&[0, 63, 0]); // Ss, Se, AhAl
    push_segment(&mut out, SOS, &sos);

    // Entropy-coded data, interleaved MCUs (one block per component at
    // 4:4:4). Block-row bands are encoded in parallel into separate bit
    // writers and spliced in order, which reproduces the serial bit
    // stream exactly (see `encode_band` for why the DC prediction chain
    // survives the split).
    let _entropy_span = puppies_obs::span("jpeg.entropy_encode", "jpeg");
    let enc_dc: Vec<HuffEncoder> = dc_tables.iter().map(HuffEncoder::new).collect();
    let enc_ac: Vec<HuffEncoder> = ac_tables.iter().map(HuffEncoder::new).collect();
    let bands = crate::coeff::band_rows(comps[0].blocks_h());
    let pool = puppies_parallel::current();
    let bw_blocks = comps[0].blocks_w() as usize;
    // Pair each band with its tally-pass masks (`build_optimized_tables`
    // iterates the same `band_rows` split, so index `i` lines up).
    if let Some(masks) = &band_masks {
        debug_assert_eq!(masks.len(), bands.len());
    }
    let band_inputs: Vec<(std::ops::Range<u32>, Option<&[u64]>)> = bands
        .iter()
        .enumerate()
        .map(|(i, band)| {
            let m = band_masks.as_ref().map(|ms| ms[i].as_slice());
            (band.clone(), m)
        })
        .collect();
    let writers = pool.map_slice(&band_inputs, |(band, masks)| {
        // ~8 entropy bytes per block is a comfortable overestimate for
        // photographic content; growing past it is still amortized.
        let mut w = BitWriter::with_capacity(band.len() * bw_blocks * ncomp * 8);
        encode_band(img, band.clone(), &enc_dc, &enc_ac, *masks, &mut w).map(|()| w)
    });
    let mut w = BitWriter::with_capacity(bw_blocks * comps[0].blocks_h() as usize * ncomp * 8);
    for band_writer in writers {
        w.append(band_writer?);
    }
    out.extend_from_slice(&w.finish());
    push_marker(&mut out, EOI);
    Ok(out)
}

/// The DC predictor each component carries *into* block row `row`: the
/// DC value of that component's last block of the previous row (scan
/// order is row-major and interleaved per MCU, so within one component
/// the predecessor of block (0, row) is block (bw-1, row-1)). This is
/// what makes bands independently encodable: a band's starting
/// predictors are plain coefficient reads, not a function of the
/// preceding band's encoder state.
fn band_entry_predictors(img: &CoeffImage, row: u32) -> Vec<i32> {
    img.components()
        .iter()
        .map(|c| {
            if row == 0 {
                0
            } else {
                c.block(c.blocks_w() - 1, row - 1)[0]
            }
        })
        .collect()
}

fn encode_band(
    img: &CoeffImage,
    rows: std::ops::Range<u32>,
    enc_dc: &[HuffEncoder],
    enc_ac: &[HuffEncoder],
    masks: Option<&[u64]>,
    w: &mut BitWriter,
) -> Result<()> {
    let comps = img.components();
    let bw = comps[0].blocks_w();
    let mut pred = band_entry_predictors(img, rows.start);
    let mut mi = 0;
    for by in rows {
        for bx in 0..bw {
            for (ci, c) in comps.iter().enumerate() {
                let tid = if ci == 0 { 0 } else { 1 };
                let block = c.block(bx, by);
                pred[ci] = if let Some(ms) = masks {
                    // Reuse the zigzag mask the tally pass computed for
                    // this block (same scan order, same index).
                    let m = ms[mi];
                    mi += 1;
                    encode_block_natural_masked(w, block, m, pred[ci], &enc_dc[tid], &enc_ac[tid])?
                } else {
                    encode_block_natural(w, block, pred[ci], &enc_dc[tid], &enc_ac[tid])?
                };
            }
        }
    }
    Ok(())
}

/// Builds optimized Huffman tables and returns, per band of
/// [`crate::coeff::band_rows`], each block's zigzag nonzero mask in scan
/// order (by, bx, component) so the emission pass can skip recomputing
/// them.
fn build_optimized_tables(img: &CoeffImage) -> (Vec<HuffTable>, Vec<HuffTable>, Vec<Vec<u64>>) {
    let comps = img.components();
    let ncomp = comps.len();
    let ntab = ncomp.min(2);
    let bw = comps[0].blocks_w();
    // Tally block-row bands in parallel and sum the counters; symbol
    // frequencies are additive so the merged tally is exact.
    let bands = crate::coeff::band_rows(comps[0].blocks_h());
    let pool = puppies_parallel::current();
    let band_results = pool.map_slice(&bands, |band| {
        let mut freqs: Vec<SymbolFreqs> = (0..ntab).map(|_| SymbolFreqs::new()).collect();
        let mut masks: Vec<u64> = Vec::with_capacity(band.len() * bw as usize * ncomp);
        let mut pred = band_entry_predictors(img, band.start);
        for by in band.clone() {
            for bx in 0..bw {
                for (ci, c) in comps.iter().enumerate() {
                    let tid = if ci == 0 { 0 } else { 1 };
                    let (p, m) =
                        tally_block_natural_mask(&mut freqs[tid], c.block(bx, by), pred[ci]);
                    pred[ci] = p;
                    masks.push(m);
                }
            }
        }
        (freqs, masks)
    });
    let mut freqs: Vec<SymbolFreqs> = (0..ntab).map(|_| SymbolFreqs::new()).collect();
    let mut all_masks = Vec::with_capacity(band_results.len());
    for (band_freqs, masks) in band_results {
        for (total, part) in freqs.iter_mut().zip(band_freqs.iter()) {
            total.merge(part);
        }
        all_masks.push(masks);
    }
    let dc = freqs
        .iter()
        .map(|f| HuffTable::build_optimized(&f.dc))
        .collect();
    let ac = freqs
        .iter()
        .map(|f| HuffTable::build_optimized(&f.ac))
        .collect();
    (dc, ac, all_masks)
}

fn emit_quant_table(out: &mut Vec<u8>, id: u8, table: &QuantTable) {
    out.push(id); // Pq=0 (8-bit), Tq=id
    for i in 0..64 {
        let s = table.steps()[crate::zigzag::ZIGZAG[i]];
        out.push(s.min(255) as u8);
    }
}

fn emit_huff_table(out: &mut Vec<u8>, class: u8, id: u8, table: &HuffTable) {
    out.push((class << 4) | id);
    out.extend_from_slice(table.counts());
    out.extend_from_slice(table.values());
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

struct SofComponent {
    id: u8,
    quant_id: u8,
}

/// Decodes a baseline JFIF byte stream into a [`CoeffImage`].
///
/// # Errors
/// Returns [`JpegError::Malformed`] for framing errors and
/// [`JpegError::Unsupported`] for features outside the baseline 4:4:4 /
/// grayscale subset.
pub fn decode(bytes: &[u8]) -> Result<CoeffImage> {
    let _span = puppies_obs::span("jpeg.decode", "jpeg");
    let mut pos = 0usize;
    let need = |pos: usize, n: usize| -> Result<()> {
        if pos + n > bytes.len() {
            Err(JpegError::Malformed("unexpected end of stream".into()))
        } else {
            Ok(())
        }
    };
    need(pos, 2)?;
    if bytes[0] != 0xFF || bytes[1] != SOI {
        return Err(JpegError::Malformed("missing SOI".into()));
    }
    pos += 2;

    let mut quant_tables: Vec<Option<QuantTable>> = vec![None; 4];
    let mut dc_tables: Vec<Option<HuffDecoder>> = vec![None, None, None, None];
    let mut ac_tables: Vec<Option<HuffDecoder>> = vec![None, None, None, None];
    let mut sof: Option<(u16, u16, Vec<SofComponent>)> = None;

    loop {
        need(pos, 2)?;
        if bytes[pos] != 0xFF {
            return Err(JpegError::Malformed(format!(
                "expected marker at {pos}, found {:#04x}",
                bytes[pos]
            )));
        }
        let marker = bytes[pos + 1];
        pos += 2;
        match marker {
            EOI => return Err(JpegError::Malformed("EOI before SOS".into())),
            0xC2 => return Err(JpegError::Unsupported("progressive JPEG".into())),
            0xC1 | 0xC3 | 0xC5..=0xC7 | 0xC9..=0xCB | 0xCD..=0xCF => {
                return Err(JpegError::Unsupported(format!("SOF marker {marker:#04x}")))
            }
            SOF0 => {
                let (seg, next) = read_segment(bytes, pos)?;
                pos = next;
                sof = Some(parse_sof(seg)?);
            }
            DQT => {
                let (seg, next) = read_segment(bytes, pos)?;
                pos = next;
                parse_dqt(seg, &mut quant_tables)?;
            }
            DHT => {
                let (seg, next) = read_segment(bytes, pos)?;
                pos = next;
                parse_dht(seg, &mut dc_tables, &mut ac_tables)?;
            }
            SOS => {
                let (seg, next) = read_segment(bytes, pos)?;
                pos = next;
                let (w, h, sof_comps) =
                    sof.ok_or_else(|| JpegError::Malformed("SOS before SOF".into()))?;
                return decode_scan(
                    bytes,
                    pos,
                    seg,
                    w,
                    h,
                    &sof_comps,
                    &quant_tables,
                    &dc_tables,
                    &ac_tables,
                );
            }
            0xDD => return Err(JpegError::Unsupported("restart intervals (DRI)".into())),
            // Skippable segments: APPn, COM.
            m if (0xE0..=0xEF).contains(&m) || m == COM => {
                let (_, next) = read_segment(bytes, pos)?;
                pos = next;
            }
            0xD0..=0xD7 | 0x01 => {} // standalone markers: skip
            other => {
                return Err(JpegError::Malformed(format!(
                    "unexpected marker {other:#04x}"
                )))
            }
        }
    }
}

fn read_segment(bytes: &[u8], pos: usize) -> Result<(&[u8], usize)> {
    if pos + 2 > bytes.len() {
        return Err(JpegError::Malformed("truncated segment length".into()));
    }
    let len = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]) as usize;
    if len < 2 || pos + len > bytes.len() {
        return Err(JpegError::Malformed("bad segment length".into()));
    }
    Ok((&bytes[pos + 2..pos + len], pos + len))
}

fn parse_sof(seg: &[u8]) -> Result<(u16, u16, Vec<SofComponent>)> {
    if seg.len() < 6 {
        return Err(JpegError::Malformed("short SOF".into()));
    }
    if seg[0] != 8 {
        return Err(JpegError::Unsupported(format!("{}-bit precision", seg[0])));
    }
    let h = u16::from_be_bytes([seg[1], seg[2]]);
    let w = u16::from_be_bytes([seg[3], seg[4]]);
    if w == 0 || h == 0 {
        return Err(JpegError::Malformed("zero dimensions".into()));
    }
    let n = seg[5] as usize;
    if n != 1 && n != 3 {
        return Err(JpegError::Unsupported(format!("{n} components")));
    }
    if seg.len() != 6 + 3 * n {
        return Err(JpegError::Malformed("SOF length mismatch".into()));
    }
    let mut comps = Vec::with_capacity(n);
    for i in 0..n {
        let id = seg[6 + 3 * i];
        let sampling = seg[7 + 3 * i];
        if sampling != 0x11 {
            return Err(JpegError::Unsupported(format!(
                "chroma subsampling {sampling:#04x} (only 4:4:4)"
            )));
        }
        comps.push(SofComponent {
            id,
            quant_id: seg[8 + 3 * i],
        });
    }
    Ok((w, h, comps))
}

fn parse_dqt(mut seg: &[u8], tables: &mut [Option<QuantTable>]) -> Result<()> {
    while !seg.is_empty() {
        let pq_tq = seg[0];
        let (pq, tq) = (pq_tq >> 4, (pq_tq & 0x0F) as usize);
        if pq != 0 {
            return Err(JpegError::Unsupported("16-bit quant table".into()));
        }
        if tq >= 4 || seg.len() < 65 {
            return Err(JpegError::Malformed("bad DQT".into()));
        }
        let mut steps = [1u16; 64];
        for i in 0..64 {
            let v = seg[1 + i] as u16;
            if v == 0 {
                return Err(JpegError::Malformed("zero quant step".into()));
            }
            steps[crate::zigzag::ZIGZAG[i]] = v;
        }
        tables[tq] = Some(QuantTable::new(steps));
        seg = &seg[65..];
    }
    Ok(())
}

fn parse_dht(
    mut seg: &[u8],
    dc: &mut [Option<HuffDecoder>],
    ac: &mut [Option<HuffDecoder>],
) -> Result<()> {
    while !seg.is_empty() {
        if seg.len() < 17 {
            return Err(JpegError::Malformed("short DHT".into()));
        }
        let tc_th = seg[0];
        let (class, id) = (tc_th >> 4, (tc_th & 0x0F) as usize);
        if class > 1 || id >= 4 {
            return Err(JpegError::Malformed("bad DHT header".into()));
        }
        let mut counts = [0u8; 16];
        counts.copy_from_slice(&seg[1..17]);
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if seg.len() < 17 + total {
            return Err(JpegError::Malformed("DHT values truncated".into()));
        }
        let values = seg[17..17 + total].to_vec();
        let table = HuffTable::new(counts, values)?;
        let dec = HuffDecoder::new(&table);
        if class == 0 {
            dc[id] = Some(dec);
        } else {
            ac[id] = Some(dec);
        }
        seg = &seg[17 + total..];
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn decode_scan(
    bytes: &[u8],
    pos: usize,
    sos: &[u8],
    width: u16,
    height: u16,
    sof_comps: &[SofComponent],
    quant_tables: &[Option<QuantTable>],
    dc_tables: &[Option<HuffDecoder>],
    ac_tables: &[Option<HuffDecoder>],
) -> Result<CoeffImage> {
    let n = sof_comps.len();
    if sos.len() != 1 + 2 * n + 3 || sos[0] as usize != n {
        return Err(JpegError::Malformed("SOS header mismatch".into()));
    }
    // Table selectors per component.
    let mut sel = Vec::with_capacity(n);
    for i in 0..n {
        let cid = sos[1 + 2 * i];
        if cid != sof_comps[i].id {
            return Err(JpegError::Malformed("SOS component order mismatch".into()));
        }
        let t = sos[2 + 2 * i];
        sel.push(((t >> 4) as usize, (t & 0x0F) as usize));
    }

    // Locate the end of entropy data (the next non-stuffed, non-RST marker).
    let mut end = pos;
    while end + 1 < bytes.len() {
        if bytes[end] == 0xFF {
            let m = bytes[end + 1];
            if m != 0x00 && !(0xD0..=0xD7).contains(&m) {
                break;
            }
            end += 2;
        } else {
            end += 1;
        }
    }
    let entropy = &bytes[pos..end];

    let bw = (width as u32).div_ceil(8);
    let bh = (height as u32).div_ceil(8);
    let nblocks = (bw as usize) * (bh as usize);
    // Guard against lying SOF dimensions before allocating: every block
    // costs at least 2 entropy bits (shortest DC code + EOB), so the
    // declared geometry cannot exceed 4 blocks per entropy byte.
    if nblocks * n > entropy.len().saturating_mul(4).max(4) {
        return Err(JpegError::Malformed(format!(
            "{nblocks} declared blocks cannot fit in {} entropy bytes",
            entropy.len()
        )));
    }
    // Resolve each component's tables once, not once per block.
    let mut tables: Vec<(&HuffDecoder, &HuffDecoder)> = Vec::with_capacity(n);
    for &(dci, aci) in &sel {
        let dct = dc_tables
            .get(dci)
            .and_then(|t| t.as_ref())
            .ok_or_else(|| JpegError::Malformed("missing DC table".into()))?;
        let act = ac_tables
            .get(aci)
            .and_then(|t| t.as_ref())
            .ok_or_else(|| JpegError::Malformed("missing AC table".into()))?;
        tables.push((dct, act));
    }
    let _entropy_span = puppies_obs::span("jpeg.entropy_decode", "jpeg");
    let mut blocks: Vec<Vec<[i32; 64]>> = vec![Vec::with_capacity(nblocks); n];
    let mut pred = vec![0i32; n];
    let mut r = BitReader::new(entropy);
    let mut blk = [0i32; 64]; // scratch reused across every block
    for _ in 0..nblocks {
        for ci in 0..n {
            let (dct, act) = tables[ci];
            pred[ci] = decode_block_natural_into(&mut blk, &mut r, pred[ci], dct, act)?;
            blocks[ci].push(blk);
        }
    }

    let mut components = Vec::with_capacity(n);
    for (ci, sc) in sof_comps.iter().enumerate() {
        let qt = quant_tables
            .get(sc.quant_id as usize)
            .and_then(|t| t.clone())
            .ok_or_else(|| JpegError::Malformed("missing quant table".into()))?;
        components.push(Component::from_raw(
            sc.id,
            width as u32,
            height as u32,
            qt,
            std::mem::take(&mut blocks[ci]),
        )?);
    }
    CoeffImage::from_components(width as u32, height as u32, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::{Rgb, RgbImage};

    fn test_image(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Rgb::new(
                ((x * 7 + y * 3) % 256) as u8,
                ((x + y * 11) % 256) as u8,
                ((x * 2 + y * y / 3) % 256) as u8,
            )
        })
    }

    #[test]
    fn encode_decode_roundtrip_exact_coefficients() {
        let img = test_image(48, 33);
        let c = CoeffImage::from_rgb(&img, 80);
        for opts in [EncodeOptions::standard(), EncodeOptions::optimized()] {
            let bytes = c.encode(&opts).unwrap();
            let back = CoeffImage::decode(&bytes).unwrap();
            assert_eq!(back.width(), 48);
            assert_eq!(back.height(), 33);
            for (a, b) in c.components().iter().zip(back.components()) {
                assert_eq!(a.blocks(), b.blocks(), "coefficients must survive framing");
                assert_eq!(a.quant(), b.quant());
            }
        }
    }

    #[test]
    fn gray_roundtrip() {
        let img = test_image(24, 24).to_gray();
        let c = CoeffImage::from_gray(&img, 70);
        let bytes = c.encode(&EncodeOptions::default()).unwrap();
        let back = CoeffImage::decode(&bytes).unwrap();
        assert!(back.is_gray());
        assert_eq!(c.components()[0].blocks(), back.components()[0].blocks());
    }

    #[test]
    fn stream_starts_with_soi_ends_with_eoi() {
        let img = test_image(16, 16);
        let bytes = crate::encode_rgb(&img, 75).unwrap();
        assert_eq!(&bytes[..2], &[0xFF, 0xD8]);
        assert_eq!(&bytes[bytes.len() - 2..], &[0xFF, 0xD9]);
        // JFIF APP0 present.
        assert_eq!(&bytes[2..4], &[0xFF, 0xE0]);
        assert_eq!(&bytes[6..11], b"JFIF\0");
    }

    #[test]
    fn optimized_tables_never_larger_much() {
        // Optimized Huffman coding should not be significantly worse than
        // the default tables for a natural-ish image.
        let img = test_image(96, 96);
        let c = CoeffImage::from_rgb(&img, 75);
        let std = c.encode(&EncodeOptions::standard()).unwrap().len();
        let opt = c.encode(&EncodeOptions::optimized()).unwrap().len();
        assert!(
            (opt as f64) < std as f64 * 1.05,
            "optimized {opt} vs standard {std}"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CoeffImage::decode(&[0, 1, 2, 3]).is_err());
        assert!(CoeffImage::decode(&[0xFF, 0xD8, 0xFF, 0xD9]).is_err());
        assert!(CoeffImage::decode(&[]).is_err());
    }

    #[test]
    fn decode_rejects_progressive_sof() {
        let img = test_image(16, 16);
        let mut bytes = crate::encode_rgb(&img, 75).unwrap();
        // Find the SOF0 marker and rewrite it to SOF2 (progressive).
        for i in 0..bytes.len() - 1 {
            if bytes[i] == 0xFF && bytes[i + 1] == 0xC0 {
                bytes[i + 1] = 0xC2;
                break;
            }
        }
        assert!(matches!(
            CoeffImage::decode(&bytes),
            Err(JpegError::Unsupported(_))
        ));
    }

    #[test]
    fn decode_skips_comment_segments() {
        let img = test_image(16, 16);
        let bytes = crate::encode_rgb(&img, 75).unwrap();
        // Splice a COM segment right after SOI.
        let mut patched = bytes[..2].to_vec();
        patched.extend_from_slice(&[0xFF, 0xFE, 0x00, 0x07, b'h', b'e', b'l', b'l', b'o']);
        patched.extend_from_slice(&bytes[2..]);
        let back = CoeffImage::decode(&patched).unwrap();
        assert_eq!(back.width(), 16);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let img = test_image(32, 32);
        let bytes = crate::encode_rgb(&img, 75).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        assert!(CoeffImage::decode(cut).is_err());
    }

    #[test]
    fn pixel_roundtrip_through_bytes() {
        let img = test_image(40, 28);
        let bytes = crate::encode_rgb(&img, 90).unwrap();
        let back = crate::decode_rgb(&bytes).unwrap();
        let psnr = puppies_image::metrics::psnr_rgb(&img, &back);
        assert!(psnr > 30.0, "PSNR {psnr}");
    }

    #[test]
    fn higher_quality_produces_larger_files() {
        let img = test_image(64, 64);
        let small = crate::encode_rgb(&img, 30).unwrap().len();
        let large = crate::encode_rgb(&img, 95).unwrap().len();
        assert!(large > small, "{large} <= {small}");
    }
}
