//! Canonical Huffman coding for baseline JPEG entropy coding.
//!
//! Provides the Annex K.3 default tables, *per-image optimized* table
//! construction (the JPEG Annex K.2 two-list algorithm with the 16-bit
//! length limit), and the DC-differential / AC-run-length block coder.
//!
//! Per-image optimization is load-bearing for the paper: PuPPIeS-B bloats
//! files ~10× precisely because perturbed coefficients no longer match the
//! default code assignment, and PuPPIeS-C recovers most of that by
//! rebuilding the tables from the *perturbed* statistics (§IV-B.3).
//!
//! # Coefficient rings
//!
//! The paper's Lemma III.1 wraps all coefficients in `[-1024, 1023]`
//! (mod 2048). Baseline JPEG, however, only admits magnitude category 11
//! for *DC differences*; an AC value of exactly `-1024` is unencodable with
//! the standard tables (their code space is full — there is no room to
//! extend them within the 16-bit length limit). This codec therefore
//! enforces the strictly-standard ranges: DC in `[-1024, 1023]` and AC in
//! `[-1023, 1023]`. `puppies-core` correspondingly perturbs DC mod 2048 and
//! AC mod 2047 — exact recovery à la Lemma III.1 holds for any modulus that
//! covers the value range, and every perturbed stream stays decodable by a
//! stock baseline decoder. The deviation is recorded in DESIGN.md.

use crate::{JpegError, Result};

/// Number of distinct (run, size) AC symbols including the category-11
/// extension, plus DC categories. Symbols are `u8`-valued.
const MAX_SYMBOLS: usize = 256;

// ---------------------------------------------------------------------------
// Bit IO with JPEG byte stuffing.
// ---------------------------------------------------------------------------

/// MSB-first bit writer with JPEG `0xFF 0x00` byte stuffing.
///
/// Uses a 64-bit accumulator so a Huffman code plus its magnitude bits
/// (up to 16 + 11 bits) lands in a single [`BitWriter::put`].
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with `bytes` of output capacity reserved.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `len` bits of `bits`, MSB first.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn put(&mut self, bits: u32, len: u32) {
        assert!(len <= 32, "at most 32 bits per put");
        if len == 0 {
            return;
        }
        self.acc = (self.acc << len) | (bits as u64 & ((1u64 << len) - 1));
        self.nbits += len;
        // Defer draining until the accumulator could overflow on the next
        // put (32 pending + 32 incoming = 64). Most puts are then a pure
        // shift-and-or; the drain itself moves up to four bytes at once.
        if self.nbits > 32 {
            self.drain();
        }
    }

    /// Flushes all whole bytes in the accumulator to the output, applying
    /// JPEG 0xFF byte stuffing.
    fn drain(&mut self) {
        let nbytes = (self.nbits / 8) as usize;
        if nbytes == 0 {
            return;
        }
        let rem = self.nbits & 7;
        let chunk = self.acc >> rem;
        // SWAR check for any 0xFF byte among the low `nbytes` bytes: a
        // byte of `chunk` is 0xFF iff the matching byte of `!chunk` is 0,
        // and the high zero-padding bytes of `chunk` can't false-trigger.
        let inv = !chunk;
        let any_ff = inv.wrapping_sub(0x0101_0101_0101_0101) & !inv & 0x8080_8080_8080_8080 != 0;
        let be = chunk.to_be_bytes();
        let bytes = &be[8 - nbytes..];
        if !any_ff {
            self.out.extend_from_slice(bytes);
        } else {
            for &byte in bytes {
                self.out.push(byte);
                if byte == 0xFF {
                    self.out.push(0x00);
                }
            }
        }
        self.nbits = rem;
        self.acc &= (1u64 << rem) - 1;
    }

    /// Pads the final partial byte with 1-bits (as the JPEG spec requires)
    /// and returns the stuffed byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.drain();
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1u32 << pad) - 1, pad);
            self.drain();
        }
        self.out
    }

    /// Appends another writer's bit stream after this one's, preserving
    /// the exact bit sequence: the result is byte-identical to having
    /// `put` every bit into `self` directly. This is what lets the
    /// encoder entropy-code block bands in parallel and splice them.
    pub fn append(&mut self, mut other: BitWriter) {
        self.drain();
        other.drain();
        if self.nbits == 0 {
            // Byte-aligned: other's stuffed bytes are already exactly what
            // this writer would have produced.
            self.out.extend_from_slice(&other.out);
        } else {
            // Replay other's bytes through `put`, undoing its stuffing
            // (put re-stuffs at the new alignment). Every 0x00 after an
            // 0xFF in a writer's output is stuffing by construction.
            let mut bytes = other.out.iter();
            while let Some(&byte) = bytes.next() {
                self.put(byte as u32, 8);
                if byte == 0xFF {
                    let stuffing = bytes.next();
                    debug_assert_eq!(stuffing, Some(&0x00));
                }
            }
        }
        // After a put, at most 7 bits stay buffered, so this fits in u32.
        self.put(other.acc as u32, other.nbits);
    }

    /// Number of whole bytes emitted so far (excluding buffered bits).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.nbits == 0
    }
}

/// MSB-first bit reader that un-stuffs `0xFF 0x00` sequences.
///
/// The accumulator is 64 bits wide and refills eight bytes at a time when
/// the window contains no `0xFF` (so no stuffing or marker can occur in
/// it). A naked marker — `0xFF` followed by anything but `0x00` — ends the
/// readable stream: further reads fail with "entropy data exhausted".
/// `codec::decode_scan` slices the entropy segment just before its
/// trailing marker, so an in-stream marker only arises in malformed input.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Bits `nbits-1..0` are valid; anything above is stale and masked out
    /// on extraction.
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over entropy-coded data.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Tops the accumulator up to at least 57 bits, or to stream end.
    fn refill(&mut self) {
        while self.nbits <= 56 {
            if self.pos + 8 <= self.data.len() {
                let w = u64::from_be_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
                // SWAR: !w has a zero byte exactly where w has an 0xFF.
                let inv = !w;
                if inv.wrapping_sub(0x0101_0101_0101_0101) & !inv & 0x8080_8080_8080_8080 == 0 {
                    let take = ((64 - self.nbits) / 8) as usize;
                    if take == 8 {
                        self.acc = w;
                        self.nbits = 64;
                    } else {
                        self.acc = (self.acc << (8 * take)) | (w >> (64 - 8 * take));
                        self.nbits += 8 * take as u32;
                    }
                    self.pos += take;
                    continue;
                }
            }
            // Byte path: stuffing, markers, and the last 7 bytes.
            match self.data.get(self.pos) {
                None => break,
                Some(&0xFF) => match self.data.get(self.pos + 1) {
                    Some(&0x00) => {
                        self.pos += 2;
                        self.acc = (self.acc << 8) | 0xFF;
                        self.nbits += 8;
                    }
                    _ => {
                        // Naked marker (or trailing 0xFF): end of stream.
                        self.pos = self.data.len();
                        break;
                    }
                },
                Some(&b) => {
                    self.pos += 1;
                    self.acc = (self.acc << 8) | b as u64;
                    self.nbits += 8;
                }
            }
        }
    }

    /// Reads a single bit.
    ///
    /// # Errors
    /// Fails if the stream is exhausted.
    pub fn bit(&mut self) -> Result<u32> {
        if self.nbits == 0 {
            self.refill();
            if self.nbits == 0 {
                return Err(JpegError::Malformed("entropy data exhausted".into()));
            }
        }
        self.nbits -= 1;
        Ok(((self.acc >> self.nbits) & 1) as u32)
    }

    /// Reads `len` bits MSB-first in one accumulator extraction (0 bits
    /// yields 0). `len` must be at most 32.
    ///
    /// # Errors
    /// Fails if the stream is exhausted.
    pub fn bits(&mut self, len: u32) -> Result<u32> {
        debug_assert!(len <= 32, "at most 32 bits per read");
        if len == 0 {
            return Ok(0);
        }
        if self.nbits < len {
            self.refill();
            if self.nbits < len {
                return Err(JpegError::Malformed("entropy data exhausted".into()));
            }
        }
        self.nbits -= len;
        Ok((self.acc >> self.nbits) as u32 & (((1u64 << len) - 1) as u32))
    }

    /// Peeks the next 8 bits without consuming them, or `None` when fewer
    /// than 8 bits remain (the bitwise decode path handles the tail).
    #[inline]
    pub(crate) fn peek8(&mut self) -> Option<u32> {
        if self.nbits < 8 {
            self.refill();
            if self.nbits < 8 {
                return None;
            }
        }
        Some(((self.acc >> (self.nbits - 8)) & 0xFF) as u32)
    }

    /// Discards `len` bits previously seen via [`BitReader::peek8`].
    #[inline]
    pub(crate) fn consume(&mut self, len: u32) {
        debug_assert!(len <= self.nbits);
        self.nbits -= len;
    }
}

// ---------------------------------------------------------------------------
// Tables.
// ---------------------------------------------------------------------------

/// A Huffman table in the JPEG wire form: `counts[l]` symbols of code
/// length `l + 1`, with `values` listed in canonical order.
///
/// The values live behind an `Arc` so deriving per-table decoder state
/// shares them instead of cloning a `Vec<u8>` per decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffTable {
    counts: [u8; 16],
    values: std::sync::Arc<[u8]>,
}

impl HuffTable {
    /// Creates a table from length counts and ordered symbol values.
    ///
    /// # Errors
    /// Returns [`JpegError::Malformed`] if the counts and values disagree or
    /// the code space overflows 16 bits.
    pub fn new(counts: [u8; 16], values: Vec<u8>) -> Result<Self> {
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if total != values.len() {
            return Err(JpegError::Malformed(format!(
                "huffman counts sum {} != value count {}",
                total,
                values.len()
            )));
        }
        if total == 0 || total > MAX_SYMBOLS {
            return Err(JpegError::Malformed(format!("bad symbol count {total}")));
        }
        // Validate the canonical code space.
        let mut code: u32 = 0;
        for (l, &c) in counts.iter().enumerate() {
            code += c as u32;
            if code > (1u32 << (l + 1)) {
                return Err(JpegError::Malformed("huffman code space overflow".into()));
            }
            code <<= 1;
        }
        Ok(HuffTable {
            counts,
            values: values.into(),
        })
    }

    /// Code-length histogram (`counts[l]` codes of length `l + 1`).
    pub fn counts(&self) -> &[u8; 16] {
        &self.counts
    }

    /// Symbols in canonical order.
    pub fn values(&self) -> &[u8] {
        &self.values
    }

    /// The Annex K.3.1 DC luminance table.
    pub fn std_dc_luma() -> HuffTable {
        HuffTable::new(
            [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
            (0..=11).collect(),
        )
        .expect("standard table is valid")
    }

    /// The Annex K.3.2 DC chrominance table.
    pub fn std_dc_chroma() -> HuffTable {
        HuffTable::new(
            [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0],
            (0..=11).collect(),
        )
        .expect("standard table is valid")
    }

    /// The Annex K.3.3 AC luminance table.
    pub fn std_ac_luma() -> HuffTable {
        let counts = [0u8, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D];
        HuffTable::new(counts, STD_AC_LUMA_VALUES.to_vec()).expect("standard table is valid")
    }

    /// The Annex K.3.4 AC chrominance table.
    pub fn std_ac_chroma() -> HuffTable {
        let counts = [0u8, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77];
        HuffTable::new(counts, STD_AC_CHROMA_VALUES.to_vec()).expect("standard table is valid")
    }

    /// Builds a length-limited optimal table from symbol frequencies using
    /// the JPEG Annex K.2 procedure (two-list merge, `Adjust_BITS` to cap
    /// lengths at 16, reserved all-ones code via a dummy symbol).
    ///
    /// Symbols with zero frequency get no code. At least one symbol must
    /// have nonzero frequency.
    ///
    /// # Panics
    /// Panics if every frequency is zero.
    pub fn build_optimized(freqs: &[u64; 256]) -> HuffTable {
        assert!(
            freqs.iter().any(|&f| f > 0),
            "cannot build a Huffman table from all-zero frequencies"
        );
        // Working arrays sized 257: index 256 is the reserved dummy symbol.
        let mut freq = [0i64; 257];
        for (i, &f) in freqs.iter().enumerate() {
            freq[i] = f as i64;
        }
        freq[256] = 1;
        let mut codesize = [0u32; 257];
        let mut others = [-1i32; 257];

        loop {
            // v1: least nonzero freq, ties -> larger symbol value.
            let mut v1: i32 = -1;
            let mut least = i64::MAX;
            for (i, &f) in freq.iter().enumerate() {
                if f > 0 && (f < least || (f == least && (i as i32) > v1)) {
                    least = f;
                    v1 = i as i32;
                }
            }
            // v2: next least, excluding v1.
            let mut v2: i32 = -1;
            let mut least2 = i64::MAX;
            for (i, &f) in freq.iter().enumerate() {
                if f > 0 && i as i32 != v1 && (f < least2 || (f == least2 && (i as i32) > v2)) {
                    least2 = f;
                    v2 = i as i32;
                }
            }
            if v2 < 0 {
                break;
            }
            let (v1u, v2u) = (v1 as usize, v2 as usize);
            freq[v1u] += freq[v2u];
            freq[v2u] = 0;
            codesize[v1u] += 1;
            let mut t = v1u;
            while others[t] >= 0 {
                t = others[t] as usize;
                codesize[t] += 1;
            }
            others[t] = v2;
            codesize[v2u] += 1;
            let mut t = v2u;
            while others[t] >= 0 {
                t = others[t] as usize;
                codesize[t] += 1;
            }
        }

        // Count codes per length (lengths can exceed 16 before adjustment;
        // JPEG caps the working histogram at 32).
        let mut bits = [0i32; 33];
        for (i, &cs) in codesize.iter().enumerate() {
            if cs > 0 {
                assert!(cs <= 32, "code length {cs} for symbol {i} exceeds 32");
                bits[cs as usize] += 1;
            }
        }

        // Adjust_BITS: fold lengths > 16 down.
        let mut i = 32;
        while i > 16 {
            while bits[i] > 0 {
                // Find the longest length < i with at least one code.
                let mut j = i - 2;
                while bits[j] == 0 {
                    j -= 1;
                }
                bits[i] -= 2;
                bits[i - 1] += 1;
                bits[j + 1] += 2;
                bits[j] -= 1;
            }
            i -= 1;
        }
        // Remove the reserved dummy code from the longest used length.
        let mut i = 16;
        while bits[i] == 0 {
            i -= 1;
        }
        bits[i] -= 1;

        // Sort symbols by (codesize, symbol value), excluding the dummy.
        let mut order: Vec<usize> = (0..256).filter(|&s| codesize[s] > 0).collect();
        order.sort_by_key(|&s| (codesize[s], s));

        let mut counts = [0u8; 16];
        for (l, c) in counts.iter_mut().enumerate() {
            *c = bits[l + 1] as u8;
        }
        let values: Vec<u8> = order.iter().map(|&s| s as u8).collect();
        HuffTable::new(counts, values).expect("optimized table must be canonical")
    }
}

const STD_AC_LUMA_VALUES: [u8; 162] = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
];

const STD_AC_CHROMA_VALUES: [u8; 162] = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
    0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
    0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34, 0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
    0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
    0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
    0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
    0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
    0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
    0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
];

// ---------------------------------------------------------------------------
// Encoder / decoder state derived from a table.
// ---------------------------------------------------------------------------

/// Symbol → (code, length) lookup for encoding.
#[derive(Debug, Clone)]
pub struct HuffEncoder {
    code: [u32; 256],
    size: [u8; 256],
}

impl HuffEncoder {
    /// Derives the canonical code assignment from `table`.
    pub fn new(table: &HuffTable) -> Self {
        let mut code = [0u32; 256];
        let mut size = [0u8; 256];
        let mut next_code: u32 = 0;
        let mut vi = 0usize;
        for (l, &c) in table.counts.iter().enumerate() {
            for _ in 0..c {
                let sym = table.values[vi] as usize;
                code[sym] = next_code;
                size[sym] = (l + 1) as u8;
                next_code += 1;
                vi += 1;
            }
            next_code <<= 1;
        }
        HuffEncoder { code, size }
    }

    /// Emits the code for `symbol`.
    ///
    /// # Errors
    /// Returns [`JpegError::Malformed`] if the symbol has no code in this
    /// table.
    pub fn emit(&self, w: &mut BitWriter, symbol: u8) -> Result<()> {
        let s = symbol as usize;
        if self.size[s] == 0 {
            return Err(JpegError::Malformed(format!(
                "symbol {symbol:#04x} has no Huffman code"
            )));
        }
        w.put(self.code[s], self.size[s] as u32);
        Ok(())
    }

    /// Emits the code for `symbol` immediately followed by `extra_len`
    /// magnitude bits, as a single accumulator push (at most 16 + 11 bits).
    ///
    /// # Errors
    /// Returns [`JpegError::Malformed`] if the symbol has no code in this
    /// table.
    #[inline]
    pub fn emit_with(
        &self,
        w: &mut BitWriter,
        symbol: u8,
        extra: u32,
        extra_len: u32,
    ) -> Result<()> {
        let s = symbol as usize;
        let size = self.size[s] as u32;
        if size == 0 {
            return Err(JpegError::Malformed(format!(
                "symbol {symbol:#04x} has no Huffman code"
            )));
        }
        let mask = ((1u64 << extra_len) - 1) as u32;
        w.put(
            (self.code[s] << extra_len) | (extra & mask),
            size + extra_len,
        );
        Ok(())
    }

    /// Code length in bits for `symbol` (0 if absent) — used for size
    /// accounting without materializing a stream.
    pub fn code_len(&self, symbol: u8) -> u32 {
        self.size[symbol as usize] as u32
    }
}

/// Canonical Huffman decoder: an 8-bit lookahead LUT for short codes with
/// a mincode/maxcode/valptr walk as the long-code and near-end fallback.
#[derive(Debug, Clone)]
pub struct HuffDecoder {
    /// Peeked byte → `(code length << 8) | symbol` for codes of ≤ 8 bits;
    /// 0 means "no such code" (unambiguous: real entries have a nonzero
    /// length in the high byte).
    lut: [u16; 256],
    mincode: [i32; 17],
    maxcode: [i32; 17],
    valptr: [i32; 17],
    values: std::sync::Arc<[u8]>,
}

impl HuffDecoder {
    /// Derives decoding state from `table`.
    pub fn new(table: &HuffTable) -> Self {
        let mut mincode = [0i32; 17];
        let mut maxcode = [-1i32; 17];
        let mut valptr = [0i32; 17];
        let mut code: i32 = 0;
        let mut vi: i32 = 0;
        for l in 1..=16usize {
            let c = table.counts[l - 1] as i32;
            if c > 0 {
                valptr[l] = vi;
                mincode[l] = code;
                code += c;
                vi += c;
                maxcode[l] = code - 1;
            } else {
                maxcode[l] = -1;
            }
            code <<= 1;
        }
        // Fill the lookahead LUT: a code of length l ≤ 8 owns every byte
        // value whose top l bits equal the code.
        let mut lut = [0u16; 256];
        let mut code: u32 = 0;
        let mut vi = 0usize;
        for l in 1..=8usize {
            for _ in 0..table.counts[l - 1] {
                let entry = ((l as u16) << 8) | table.values[vi] as u16;
                let first = (code << (8 - l)) as usize;
                for e in &mut lut[first..first + (1 << (8 - l))] {
                    *e = entry;
                }
                code += 1;
                vi += 1;
            }
            code <<= 1;
        }
        HuffDecoder {
            lut,
            mincode,
            maxcode,
            valptr,
            values: table.values.clone(),
        }
    }

    /// Decodes the next symbol from the reader.
    ///
    /// # Errors
    /// Fails on exhausted input or a code not present in the table.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u8> {
        if let Some(peek) = r.peek8() {
            let e = self.lut[peek as usize];
            if e != 0 {
                r.consume((e >> 8) as u32);
                return Ok((e & 0xFF) as u8);
            }
        }
        // Code longer than 8 bits, or fewer than 8 bits left in the
        // stream. The peek consumed nothing, so restart bit by bit.
        self.decode_bitwise(r)
    }

    /// The bit-at-a-time canonical walk. [`HuffDecoder::decode`] is
    /// bit-identical to this; it is public as the reference path for the
    /// differential fuzz campaign.
    ///
    /// # Errors
    /// Fails on exhausted input or a code not present in the table.
    pub fn decode_bitwise(&self, r: &mut BitReader<'_>) -> Result<u8> {
        let mut code: i32 = 0;
        for l in 1..=16usize {
            code = (code << 1) | r.bit()? as i32;
            if self.maxcode[l] >= 0 && code <= self.maxcode[l] && code >= self.mincode[l] {
                let idx = (self.valptr[l] + (code - self.mincode[l])) as usize;
                return Ok(self.values[idx]);
            }
        }
        Err(JpegError::Malformed("invalid Huffman code".into()))
    }
}

// ---------------------------------------------------------------------------
// Magnitude categories and block-level coding.
// ---------------------------------------------------------------------------

/// JPEG magnitude category: the number of bits needed to represent `v`
/// (0 for 0, `n` for `|v|` in `[2^(n-1), 2^n - 1]`).
pub fn category(v: i32) -> u32 {
    u32::BITS - v.unsigned_abs().leading_zeros()
}

/// The `len`-bit magnitude encoding of `v` (one's complement for negative
/// values, per the JPEG spec).
pub fn magnitude_bits(v: i32, len: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v - 1) as u32 & ((1u32 << len) - 1)
    }
}

/// Inverts [`magnitude_bits`]: reconstructs `v` from its category and raw
/// bits.
pub fn extend_magnitude(bits: u32, len: u32) -> i32 {
    if len == 0 {
        return 0;
    }
    let v = bits as i32;
    if v < (1 << (len - 1)) {
        v - (1 << len) + 1
    } else {
        v
    }
}

/// Frequency accumulator for optimized-table construction.
#[derive(Debug, Clone)]
pub struct SymbolFreqs {
    /// DC category frequencies.
    pub dc: [u64; 256],
    /// AC (run, size) symbol frequencies.
    pub ac: [u64; 256],
}

impl Default for SymbolFreqs {
    fn default() -> Self {
        SymbolFreqs {
            dc: [0; 256],
            ac: [0; 256],
        }
    }
}

impl SymbolFreqs {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another tally into this one. Frequencies are additive, so
    /// block bands can be tallied independently and merged.
    pub fn merge(&mut self, other: &SymbolFreqs) {
        for (a, b) in self.dc.iter_mut().zip(other.dc.iter()) {
            *a += b;
        }
        for (a, b) in self.ac.iter_mut().zip(other.ac.iter()) {
            *a += b;
        }
    }
}

/// Encodes one zigzag-ordered quantized block.
///
/// `prev_dc` is the previous block's DC value for this component; returns
/// the new DC predictor.
///
/// # Errors
/// Fails if the DC coefficient is outside `[-1024, 1023]`, an AC
/// coefficient is outside `[-1023, 1023]`, or a needed symbol is missing
/// from the tables.
pub fn encode_block(
    w: &mut BitWriter,
    zz: &[i32; 64],
    prev_dc: i32,
    dc: &HuffEncoder,
    ac: &HuffEncoder,
) -> Result<i32> {
    encode_block_perm(w, zz, prev_dc, dc, ac, &IDENTITY)
}

/// [`encode_block`] taking the block in row-major (natural) order: the
/// zigzag permutation happens during the coefficient scan, so the encode
/// loop needs no per-block zigzag copy. Bit-identical to
/// `encode_block(w, &to_zigzag(block), ..)`.
///
/// # Errors
/// Same conditions as [`encode_block`].
pub fn encode_block_natural(
    w: &mut BitWriter,
    block: &[i32; 64],
    prev_dc: i32,
    dc: &HuffEncoder,
    ac: &HuffEncoder,
) -> Result<i32> {
    encode_block_natural_masked(w, block, zigzag_nonzero_mask(block), prev_dc, dc, ac)
}

/// [`encode_block_natural`] with the block's zigzag nonzero mask supplied
/// by the caller — bit `k` set iff the coefficient at zigzag position `k`
/// is nonzero, exactly what [`tally_block_natural_mask`] returns. Reusing
/// the tally pass's mask saves one 64-lane scan per block on the
/// optimized-Huffman path. The mask must describe this `block`: a stale
/// mask yields a corrupt (but memory-safe) stream.
///
/// # Errors
/// Same conditions as [`encode_block`].
pub fn encode_block_natural_masked(
    w: &mut BitWriter,
    block: &[i32; 64],
    mask: u64,
    prev_dc: i32,
    dc: &HuffEncoder,
    ac: &HuffEncoder,
) -> Result<i32> {
    if !(crate::COEFF_MIN..=crate::COEFF_MAX).contains(&block[0]) {
        return Err(JpegError::CoefficientRange { value: block[0] });
    }
    let diff = block[0] - prev_dc;
    let cat = category(diff);
    dc.emit_with(w, cat as u8, magnitude_bits(diff, cat), cat)?;

    // Walk only the nonzero coefficients: the run length before each
    // symbol is the gap between consecutive set bits. A typical
    // photographic block has ~10-20 nonzero ACs, so this skips the ~3/4
    // of the scan a coefficient-at-a-time loop burns on zeros.
    let mut mask = mask & !1;
    let mut prev_k = 0u32;
    while mask != 0 {
        let k = mask.trailing_zeros();
        mask &= mask - 1;
        let mut run = k - prev_k - 1;
        while run >= 16 {
            ac.emit(w, 0xF0)?; // ZRL
            run -= 16;
        }
        let v = block[crate::zigzag::ZIGZAG[k as usize & 63] & 63];
        // Range-check inside the nonzero walk: zeros are trivially in
        // range, so this sees every coefficient the old whole-block sweep
        // could reject (the writer holds a partial block on error, which
        // is fine — the caller discards the stream).
        if !(crate::AC_MIN..=crate::AC_MAX).contains(&v) {
            return Err(JpegError::CoefficientRange { value: v });
        }
        let size = category(v);
        ac.emit_with(
            w,
            ((run as u8) << 4) | size as u8,
            magnitude_bits(v, size),
            size,
        )?;
        prev_k = k;
    }
    if prev_k != 63 {
        ac.emit(w, 0x00)?; // EOB
    }
    Ok(block[0])
}

/// Per-byte scatter tables mapping a natural-order nonzero byte to its
/// zigzag-position bits: `ZZ_SCATTER[c][byte]` spreads the bits of `byte`
/// (natural indices `8c..8c+8`) to their [`crate::zigzag::UNZIGZAG`]
/// positions.
static ZZ_SCATTER: [[u64; 256]; 8] = {
    let mut t = [[0u64; 256]; 8];
    let mut c = 0;
    while c < 8 {
        let mut byte = 0usize;
        while byte < 256 {
            let mut m = 0u64;
            let mut j = 0;
            while j < 8 {
                if byte >> j & 1 == 1 {
                    m |= 1u64 << crate::zigzag::UNZIGZAG[c * 8 + j];
                }
                j += 1;
            }
            t[c][byte] = m;
            byte += 1;
        }
        c += 1;
    }
    t
};

/// [`zigzag_nonzero_mask`] kernel: one lane compare + movemask per 8-wide
/// natural-order group; the 8-bit group mask indexes the scatter table
/// directly (the table already maps natural byte `c` to zigzag positions).
unsafe fn nonzero_mask_kernel<S: puppies_image::simd::Simd8>(block: &[i32; 64]) -> u64 {
    unsafe {
        let groups = &*(block.as_ptr() as *const [[i32; 8]; 8]);
        let mut m = 0u64;
        for (c, g) in groups.iter().enumerate() {
            let bits = S::i_nonzero_mask(S::i_load(g)) as usize;
            m |= ZZ_SCATTER[c][bits];
        }
        m
    }
}

puppies_image::simd_dispatch! {
    // Bit `k` of the result is set iff the coefficient at *zigzag* position
    // `k` of the natural-order `block` is nonzero. Used twice per block on
    // the encode path (symbol tally + emission).
    fn zigzag_nonzero_mask / zigzag_nonzero_mask_with(block: &[i32; 64]) -> u64 = nonzero_mask_kernel;
}

/// The identity permutation: [`encode_block`]'s input is already in scan
/// order.
const IDENTITY: [usize; 64] = {
    let mut p = [0usize; 64];
    let mut i = 0;
    while i < 64 {
        p[i] = i;
        i += 1;
    }
    p
};

fn encode_block_perm(
    w: &mut BitWriter,
    b: &[i32; 64],
    prev_dc: i32,
    dc: &HuffEncoder,
    ac: &HuffEncoder,
    perm: &[usize; 64],
) -> Result<i32> {
    if !(crate::COEFF_MIN..=crate::COEFF_MAX).contains(&b[0]) {
        return Err(JpegError::CoefficientRange { value: b[0] });
    }
    // Branchless sweep first (it vectorizes, an early-exit loop does
    // not); only locate the offending value on the error path.
    let mut bad = false;
    for &v in &b[1..] {
        bad |= !(crate::AC_MIN..=crate::AC_MAX).contains(&v);
    }
    if bad {
        let value = *b[1..]
            .iter()
            .find(|v| !(crate::AC_MIN..=crate::AC_MAX).contains(v))
            .expect("sweep found an out-of-range value");
        return Err(JpegError::CoefficientRange { value });
    }
    let diff = b[0] - prev_dc;
    let cat = category(diff);
    dc.emit_with(w, cat as u8, magnitude_bits(diff, cat), cat)?;

    let mut run = 0u32;
    for &pi in &perm[1..] {
        let v = b[pi & 63];
        if v == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            ac.emit(w, 0xF0)?; // ZRL
            run -= 16;
        }
        let size = category(v);
        ac.emit_with(
            w,
            ((run as u8) << 4) | size as u8,
            magnitude_bits(v, size),
            size,
        )?;
        run = 0;
    }
    if run > 0 {
        ac.emit(w, 0x00)?; // EOB
    }
    Ok(b[0])
}

/// Tallies the symbols [`encode_block`] would emit, for optimized-table
/// construction. Returns the new DC predictor.
pub fn tally_block(freqs: &mut SymbolFreqs, zz: &[i32; 64], prev_dc: i32) -> i32 {
    tally_block_perm(freqs, zz, prev_dc, &IDENTITY)
}

/// [`tally_block`] for a row-major (natural) order block; the counterpart
/// of [`encode_block_natural`].
pub fn tally_block_natural(freqs: &mut SymbolFreqs, block: &[i32; 64], prev_dc: i32) -> i32 {
    tally_block_natural_mask(freqs, block, prev_dc).0
}

/// [`tally_block_natural`] that also returns the block's zigzag nonzero
/// mask, so the emission pass can reuse it via
/// [`encode_block_natural_masked`] instead of rescanning the block.
pub fn tally_block_natural_mask(
    freqs: &mut SymbolFreqs,
    block: &[i32; 64],
    prev_dc: i32,
) -> (i32, u64) {
    let diff = block[0] - prev_dc;
    freqs.dc[category(diff) as usize] += 1;
    // Same nonzero-bitmask walk as `encode_block_natural`.
    let zmask = zigzag_nonzero_mask(block);
    let mut mask = zmask & !1;
    let mut prev_k = 0u32;
    while mask != 0 {
        let k = mask.trailing_zeros();
        mask &= mask - 1;
        let mut run = k - prev_k - 1;
        while run >= 16 {
            freqs.ac[0xF0] += 1;
            run -= 16;
        }
        let v = block[crate::zigzag::ZIGZAG[k as usize & 63] & 63];
        freqs.ac[(((run as u8) << 4) | category(v) as u8) as usize] += 1;
        prev_k = k;
    }
    if prev_k != 63 {
        freqs.ac[0x00] += 1;
    }
    (block[0], zmask)
}

fn tally_block_perm(
    freqs: &mut SymbolFreqs,
    b: &[i32; 64],
    prev_dc: i32,
    perm: &[usize; 64],
) -> i32 {
    let diff = b[0] - prev_dc;
    freqs.dc[category(diff) as usize] += 1;
    let mut run = 0u32;
    for &pi in &perm[1..] {
        let v = b[pi & 63];
        if v == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            freqs.ac[0xF0] += 1;
            run -= 16;
        }
        freqs.ac[(((run as u8) << 4) | category(v) as u8) as usize] += 1;
        run = 0;
    }
    if run > 0 {
        freqs.ac[0x00] += 1;
    }
    b[0]
}

/// Decodes one zigzag-ordered block; inverse of [`encode_block`].
///
/// # Errors
/// Fails on malformed entropy data.
pub fn decode_block(
    r: &mut BitReader<'_>,
    prev_dc: i32,
    dc: &HuffDecoder,
    ac: &HuffDecoder,
) -> Result<([i32; 64], i32)> {
    let mut zz = [0i32; 64];
    let p = decode_block_into(&mut zz, r, prev_dc, dc, ac)?;
    Ok((zz, p))
}

/// [`decode_block`] into a caller-owned scratch block, so a decode loop
/// performs no per-block allocation or copy-out. Returns the new DC
/// predictor.
///
/// # Errors
/// Fails on malformed entropy data.
pub fn decode_block_into(
    zz: &mut [i32; 64],
    r: &mut BitReader<'_>,
    prev_dc: i32,
    dc: &HuffDecoder,
    ac: &HuffDecoder,
) -> Result<i32> {
    decode_block_perm(zz, r, prev_dc, dc, ac, &IDENTITY)
}

/// [`decode_block_into`] writing each coefficient at its row-major
/// position — `from_zigzag` fused into the decode, so the scan loop needs
/// no per-block permutation copy. Returns the new DC predictor.
///
/// # Errors
/// Fails on malformed entropy data.
pub fn decode_block_natural_into(
    out: &mut [i32; 64],
    r: &mut BitReader<'_>,
    prev_dc: i32,
    dc: &HuffDecoder,
    ac: &HuffDecoder,
) -> Result<i32> {
    decode_block_perm(out, r, prev_dc, dc, ac, &crate::zigzag::ZIGZAG)
}

fn decode_block_perm(
    zz: &mut [i32; 64],
    r: &mut BitReader<'_>,
    prev_dc: i32,
    dc: &HuffDecoder,
    ac: &HuffDecoder,
    perm: &[usize; 64],
) -> Result<i32> {
    zz.fill(0);
    let cat = dc.decode(r)? as u32;
    if cat > 12 {
        return Err(JpegError::Malformed(format!("DC category {cat} too large")));
    }
    let bits = r.bits(cat)?;
    zz[0] = prev_dc + extend_magnitude(bits, cat);

    let mut k = 1usize;
    while k < 64 {
        let sym = ac.decode(r)?;
        if sym == 0x00 {
            break; // EOB
        }
        let run = (sym >> 4) as usize;
        let size = (sym & 0x0F) as u32;
        if size == 0 {
            if sym == 0xF0 {
                k += 16;
                continue;
            }
            return Err(JpegError::Malformed(format!("bad AC symbol {sym:#04x}")));
        }
        k += run;
        if k >= 64 {
            return Err(JpegError::Malformed("AC run overflows block".into()));
        }
        let bits = r.bits(size)?;
        zz[perm[k] & 63] = extend_magnitude(bits, size);
        k += 1;
    }
    Ok(zz[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwriter_stuffs_ff() {
        let mut w = BitWriter::new();
        w.put(0xFF, 8);
        w.put(0xAB, 8);
        assert_eq!(w.finish(), vec![0xFF, 0x00, 0xAB]);
    }

    #[test]
    fn bitwriter_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        assert_eq!(w.finish(), vec![0b1011_1111]);
    }

    #[test]
    fn bitreader_unstuffs() {
        let data = [0xFF, 0x00, 0x80];
        let mut r = BitReader::new(&data);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
        assert_eq!(r.bit().unwrap(), 1);
    }

    #[test]
    fn bit_roundtrip_random_lengths() {
        let seqs: [(u32, u32); 7] = [
            (1, 1),
            (0, 3),
            (0b1010, 4),
            (0x7F, 7),
            (0x155, 9),
            (0, 0),
            (0xFFF, 12),
        ];
        let mut w = BitWriter::new();
        for &(v, l) in &seqs {
            w.put(v, l);
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &(v, l) in &seqs {
            assert_eq!(r.bits(l).unwrap(), v);
        }
    }

    #[test]
    fn category_values() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(-3), 2);
        assert_eq!(category(1023), 10);
        assert_eq!(category(-1024), 11);
        assert_eq!(category(2047), 11);
    }

    #[test]
    fn magnitude_roundtrip() {
        for v in [-2047, -1024, -513, -1, 0, 1, 2, 777, 1023, 2047] {
            let len = category(v);
            let bits = magnitude_bits(v, len);
            assert_eq!(extend_magnitude(bits, len), v, "value {v}");
        }
    }

    #[test]
    fn standard_tables_are_canonical() {
        for t in [
            HuffTable::std_dc_luma(),
            HuffTable::std_dc_chroma(),
            HuffTable::std_ac_luma(),
            HuffTable::std_ac_chroma(),
        ] {
            let total: usize = t.counts().iter().map(|&c| c as usize).sum();
            assert_eq!(total, t.values().len());
        }
        // The AC tables carry the standard 162 symbols.
        assert_eq!(HuffTable::std_ac_luma().values().len(), 162);
        assert_eq!(HuffTable::std_ac_chroma().values().len(), 162);
    }

    #[test]
    fn encoder_decoder_roundtrip_symbols() {
        let table = HuffTable::std_ac_luma();
        let enc = HuffEncoder::new(&table);
        let dec = HuffDecoder::new(&table);
        let symbols: Vec<u8> = table.values().to_vec();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.emit(&mut w, s).unwrap();
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn block_roundtrip_standard_tables() {
        let dc_t = HuffTable::std_dc_luma();
        let ac_t = HuffTable::std_ac_luma();
        let enc_dc = HuffEncoder::new(&dc_t);
        let enc_ac = HuffEncoder::new(&ac_t);
        let dec_dc = HuffDecoder::new(&dc_t);
        let dec_ac = HuffDecoder::new(&ac_t);

        let mut zz = [0i32; 64];
        zz[0] = -300;
        zz[1] = 5;
        zz[5] = -1;
        zz[30] = 100;
        zz[63] = -1023; // extreme legal AC magnitude

        let mut w = BitWriter::new();
        let dc1 = encode_block(&mut w, &zz, 0, &enc_dc, &enc_ac).unwrap();
        let mut zz2 = [0i32; 64];
        zz2[0] = 12;
        encode_block(&mut w, &zz2, dc1, &enc_dc, &enc_ac).unwrap();
        let data = w.finish();

        let mut r = BitReader::new(&data);
        let (got1, pred) = decode_block(&mut r, 0, &dec_dc, &dec_ac).unwrap();
        let (got2, _) = decode_block(&mut r, pred, &dec_dc, &dec_ac).unwrap();
        assert_eq!(got1, zz);
        assert_eq!(got2, zz2);
    }

    #[test]
    fn out_of_range_coefficient_rejected() {
        let dc_t = HuffTable::std_dc_luma();
        let ac_t = HuffTable::std_ac_luma();
        let enc_dc = HuffEncoder::new(&dc_t);
        let enc_ac = HuffEncoder::new(&ac_t);
        let mut zz = [0i32; 64];
        zz[3] = 5000;
        let mut w = BitWriter::new();
        let err = encode_block(&mut w, &zz, 0, &enc_dc, &enc_ac).unwrap_err();
        assert!(matches!(err, JpegError::CoefficientRange { value: 5000 }));
    }

    #[test]
    fn optimized_table_roundtrip_and_shorter_codes() {
        // Skewed distribution: symbol 0x01 dominates.
        let mut freqs = [0u64; 256];
        freqs[0x01] = 10_000;
        freqs[0x02] = 100;
        freqs[0x11] = 50;
        freqs[0xF0] = 3;
        freqs[0x00] = 500;
        let table = HuffTable::build_optimized(&freqs);
        let enc = HuffEncoder::new(&table);
        let dec = HuffDecoder::new(&table);
        // Most frequent symbol gets the shortest code.
        assert!(enc.code_len(0x01) <= enc.code_len(0x02));
        assert!(enc.code_len(0x01) <= enc.code_len(0xF0));
        // Roundtrip.
        let mut w = BitWriter::new();
        for s in [0x01u8, 0x00, 0x02, 0x11, 0xF0, 0x01] {
            enc.emit(&mut w, s).unwrap();
        }
        let data = w.finish();
        let mut r = BitReader::new(&data);
        for s in [0x01u8, 0x00, 0x02, 0x11, 0xF0, 0x01] {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn optimized_table_handles_uniform_256_symbols() {
        let freqs = [7u64; 256];
        let table = HuffTable::build_optimized(&freqs);
        let total: usize = table.counts().iter().map(|&c| c as usize).sum();
        assert_eq!(total, 256);
        // All lengths within 16.
        let enc = HuffEncoder::new(&table);
        for s in 0..=255u8 {
            assert!(enc.code_len(s) >= 1 && enc.code_len(s) <= 16);
        }
    }

    #[test]
    fn optimized_table_single_symbol() {
        let mut freqs = [0u64; 256];
        freqs[0x42] = 1;
        let table = HuffTable::build_optimized(&freqs);
        let enc = HuffEncoder::new(&table);
        assert_eq!(enc.code_len(0x42), 1);
    }

    #[test]
    fn tally_matches_encode_symbols() {
        let mut zz = [0i32; 64];
        zz[0] = 50;
        zz[2] = -7;
        zz[40] = 3;
        let mut freqs = SymbolFreqs::new();
        tally_block(&mut freqs, &zz, 0);
        // DC category of 50 is 6.
        assert_eq!(freqs.dc[6], 1);
        // AC: run 1 size 3 (-7), then run to 40 => two ZRL + run 5 size 2, EOB.
        assert_eq!(freqs.ac[(1 << 4) | 3], 1);
        assert_eq!(freqs.ac[0xF0], 2);
        assert_eq!(freqs.ac[(5 << 4) | 2], 1);
        assert_eq!(freqs.ac[0x00], 1);
    }

    #[test]
    fn marker_in_entropy_data_is_error() {
        let data = [0xFF, 0xD9];
        let mut r = BitReader::new(&data);
        assert!(r.bits(8).is_err());
    }
}
