//! [`CoeffImage`]: the quantized-DCT-coefficient representation of a JPEG
//! image.
//!
//! This is the level PuPPIeS operates at: perturbation adds private-matrix
//! entries to quantized coefficients block by block (§IV-B), the PSP can
//! requantize or crop without leaving the coefficient domain, and entropy
//! coding (`codec`) turns the same structure into bytes.

use crate::quant::QuantTable;
use crate::{dct, JpegError, Result, AC_MAX, AC_MIN, COEFF_MAX, COEFF_MIN};
use puppies_image::{GrayImage, Plane, Rect, RgbImage};

/// Clamps a block into the entropy-codable ranges: DC to `[-1024, 1023]`,
/// AC to `[-1023, 1023]`.
pub fn clamp_block(b: &mut Block) {
    b[0] = b[0].clamp(COEFF_MIN, COEFF_MAX);
    for v in &mut b[1..] {
        *v = (*v).clamp(AC_MIN, AC_MAX);
    }
}

/// Splits `rows` block rows into contiguous bands, at most one per
/// worker of the current pool. The partition only affects scheduling:
/// every caller reassembles band outputs in order, so any partition
/// yields identical results.
pub(crate) fn band_rows(rows: u32) -> Vec<std::ops::Range<u32>> {
    let workers = puppies_parallel::current().threads() as u32;
    let nbands = workers.clamp(1, rows.max(1));
    let base = rows / nbands;
    let extra = rows % nbands;
    let mut bands = Vec::with_capacity(nbands as usize);
    let mut start = 0;
    for i in 0..nbands {
        let len = base + u32::from(i < extra);
        if len > 0 {
            bands.push(start..start + len);
            start += len;
        }
    }
    bands
}

/// Side length of a JPEG block in samples.
pub const BLOCK_SIZE: u32 = 8;
/// Number of coefficients per block.
pub const BLOCK_LEN: usize = 64;

/// One 8×8 block of quantized DCT coefficients in row-major (natural)
/// order; index 0 is the DC term.
pub type Block = [i32; BLOCK_LEN];

/// A single color component (plane) in the coefficient domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// JPEG component id (1 = Y, 2 = Cb, 3 = Cr).
    id: u8,
    /// Sample width (pre-padding).
    width: u32,
    /// Sample height (pre-padding).
    height: u32,
    blocks_w: u32,
    blocks_h: u32,
    quant: QuantTable,
    blocks: Vec<Block>,
}

impl Component {
    /// Builds a component by forward-transforming a sample plane
    /// (values nominally in `[0, 255]`), padding edges by replication.
    pub fn from_plane(id: u8, plane: &Plane, quant: QuantTable) -> Component {
        let _span = puppies_obs::span("jpeg.fdct_quant", "jpeg");
        let width = plane.width();
        let height = plane.height();
        let blocks_w = width.div_ceil(BLOCK_SIZE);
        let blocks_h = height.div_ceil(BLOCK_SIZE);
        // Forward-transform block-row bands in parallel. Each band's
        // blocks depend only on the source plane, and bands are
        // concatenated in row order, so the block vector is identical to
        // the serial loop's for any worker count.
        let bands = band_rows(blocks_h);
        let pool = puppies_parallel::current();
        let folded = quant.folded();
        let samples = plane.samples();
        let band_blocks = pool.map_slice(&bands, |band| {
            // Every slot is fully written below (the fused fdct+quantize
            // fills all 64 coefficients of each block in order), so the
            // band buffer skips the zero-fill a `vec![...]` would pay.
            let n = (band.len() as u32 * blocks_w) as usize;
            let mut blocks: Vec<Block> = Vec::with_capacity(n);
            let spare = blocks.spare_capacity_mut();
            let mut raw = [0.0f32; BLOCK_LEN];
            // Columns whose 8 samples all lie inside the plane; the run
            // `0..full_cols` of each full-height block row goes through
            // the batched kernel in one dispatch.
            let full_cols = width / BLOCK_SIZE;
            let w = width as usize;
            let mut idx = 0;
            for by in band.clone() {
                let row_full = by * BLOCK_SIZE + BLOCK_SIZE <= height;
                let mut bx = 0;
                if row_full && full_cols > 0 {
                    // Interior span: one dispatch transforms the whole
                    // run of full blocks (level shift, DCT, quantize and
                    // range clamp fused), reading the sample rows in
                    // place and writing the blocks' spare capacity
                    // back-to-back.
                    let base = (by * BLOCK_SIZE) as usize * w;
                    debug_assert!(base + 7 * w + 8 * full_cols as usize <= samples.len());
                    debug_assert!(idx + full_cols as usize <= n);

                    // SAFETY: `row_full` bounds all 8 sample rows and the
                    // destination blocks are in-capacity (see the debug
                    // assertions); every slot of each block is written.
                    // The pointer derives from the whole spare slice (not
                    // one element) because the batched write spans
                    // `full_cols` consecutive blocks.
                    unsafe {
                        folded.fdct_quantize_row_band_into(
                            samples.as_ptr().add(base),
                            w,
                            full_cols as usize,
                            spare.as_mut_ptr().add(idx) as *mut i32,
                        );
                    }
                    idx += full_cols as usize;
                    bx = full_cols;
                }
                for bx in bx..blocks_w {
                    // Edge block: replicate-pad via the clamped accessor,
                    // then run the same fused kernel over the staged raw
                    // samples.
                    for y in 0..BLOCK_SIZE {
                        for x in 0..BLOCK_SIZE {
                            let sx = (bx * BLOCK_SIZE + x) as i64;
                            let sy = (by * BLOCK_SIZE + y) as i64;
                            raw[(y * BLOCK_SIZE + x) as usize] = plane.get_clamped(sx, sy);
                        }
                    }
                    // SAFETY: `raw` is a full contiguous block and the
                    // destination addresses 64 writable slots in spare
                    // capacity; all 64 are written.
                    unsafe {
                        folded.fdct_quantize_rows_into(
                            raw.as_ptr(),
                            8,
                            spare[idx].as_mut_ptr() as *mut i32,
                        );
                    }
                    idx += 1;
                }
            }
            debug_assert_eq!(idx, n);
            // SAFETY: the loop initialized all `n` blocks.
            unsafe { blocks.set_len(n) };
            blocks
        });
        // With a single band (serial pools) its vector is the whole
        // component — move it instead of re-copying every block.
        let mut band_blocks = band_blocks;
        let blocks = if band_blocks.len() == 1 {
            band_blocks.pop().expect("one band")
        } else {
            let mut blocks = Vec::with_capacity((blocks_w * blocks_h) as usize);
            for band in band_blocks {
                blocks.extend(band);
            }
            blocks
        };
        Component {
            id,
            width,
            height,
            blocks_w,
            blocks_h,
            quant,
            blocks,
        }
    }

    /// Reconstructs the sample plane (inverse DCT + level shift), cropped
    /// back to the component's true size. Samples are *not* clamped so the
    /// caller can do shadow-ROI arithmetic before rounding.
    pub fn to_plane(&self) -> Plane {
        let _span = puppies_obs::span("jpeg.idct", "jpeg");
        let full_w = self.blocks_w * BLOCK_SIZE;
        // Inverse-transform block-row bands in parallel. A band owns the
        // 8 sample rows of each of its block rows — disjoint, contiguous
        // spans of the padded plane — so bands are computed independently
        // and copied into place in order.
        let bands = band_rows(self.blocks_h);
        let pool = puppies_parallel::current();
        let folded = self.quant.folded();
        let band_samples = pool.map_slice(&bands, |band| {
            let mut samples = vec![0.0f32; (band.len() as u32 * BLOCK_SIZE * full_w) as usize];
            let mut raw = [0.0f32; BLOCK_LEN];
            let mut spatial = [0.0f32; BLOCK_LEN];
            for (row_in_band, by) in band.clone().enumerate() {
                for bx in 0..self.blocks_w {
                    let q = &self.blocks[(by * self.blocks_w + bx) as usize];
                    folded.dequantize_scaled_into(q, &mut raw);
                    dct::inverse_scaled_into(&raw, &mut spatial);
                    for y in 0..BLOCK_SIZE as usize {
                        let row_base = (row_in_band * BLOCK_SIZE as usize + y) * full_w as usize
                            + (bx * BLOCK_SIZE) as usize;
                        let dst = &mut samples[row_base..][..BLOCK_SIZE as usize];
                        let src = &spatial[y * BLOCK_SIZE as usize..][..BLOCK_SIZE as usize];
                        for x in 0..BLOCK_SIZE as usize {
                            dst[x] = src[x] + 128.0;
                        }
                    }
                }
            }
            samples
        });
        // With a single band (serial pools) its samples are the whole
        // padded plane — wrap the vector instead of copying it.
        let mut band_samples = band_samples;
        let full = if band_samples.len() == 1 {
            Plane::from_raw(
                full_w,
                self.blocks_h * BLOCK_SIZE,
                band_samples.pop().expect("one band"),
            )
        } else {
            let mut full = Plane::new(full_w, self.blocks_h * BLOCK_SIZE);
            let out = full.samples_mut();
            let mut offset = 0;
            for band in band_samples {
                out[offset..offset + band.len()].copy_from_slice(&band);
                offset += band.len();
            }
            full
        };
        if full.width() == self.width && full.height() == self.height {
            full
        } else {
            let mut cropped = Plane::new(self.width, self.height);
            let (w, fw) = (self.width as usize, full_w as usize);
            let src = full.samples();
            for (y, row) in cropped.samples_mut().chunks_exact_mut(w).enumerate() {
                row.copy_from_slice(&src[y * fw..y * fw + w]);
            }
            cropped
        }
    }

    /// Component id (1 = Y, 2 = Cb, 3 = Cr).
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Sample width (pre-padding).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Sample height (pre-padding).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of block columns.
    pub fn blocks_w(&self) -> u32 {
        self.blocks_w
    }

    /// Number of block rows.
    pub fn blocks_h(&self) -> u32 {
        self.blocks_h
    }

    /// The quantization table.
    pub fn quant(&self) -> &QuantTable {
        &self.quant
    }

    /// All blocks, row-major over the block grid.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to all blocks.
    pub fn blocks_mut(&mut self) -> &mut [Block] {
        &mut self.blocks
    }

    /// The block at block-grid position `(bx, by)`.
    ///
    /// # Panics
    /// Panics if the position is outside the block grid.
    pub fn block(&self, bx: u32, by: u32) -> &Block {
        assert!(
            bx < self.blocks_w && by < self.blocks_h,
            "block out of range"
        );
        &self.blocks[(by * self.blocks_w + bx) as usize]
    }

    /// Mutable block access.
    ///
    /// # Panics
    /// Panics if the position is outside the block grid.
    pub fn block_mut(&mut self, bx: u32, by: u32) -> &mut Block {
        assert!(
            bx < self.blocks_w && by < self.blocks_h,
            "block out of range"
        );
        &mut self.blocks[(by * self.blocks_w + bx) as usize]
    }

    /// Block-grid coordinates `(bx, by)` of every block whose 8×8 pixel
    /// footprint intersects `region` (pixel coordinates), in row-major
    /// order. This is how a pixel ROI maps onto coefficient blocks.
    pub fn blocks_in_region(&self, region: Rect) -> Vec<(u32, u32)> {
        let clipped = region.intersect(Rect::new(0, 0, self.width, self.height));
        if clipped.is_empty() {
            return Vec::new();
        }
        let bx0 = clipped.x / BLOCK_SIZE;
        let by0 = clipped.y / BLOCK_SIZE;
        let bx1 = (clipped.right() - 1) / BLOCK_SIZE;
        let by1 = (clipped.bottom() - 1) / BLOCK_SIZE;
        let mut out = Vec::new();
        for by in by0..=by1 {
            for bx in bx0..=bx1 {
                out.push((bx, by));
            }
        }
        out
    }

    /// Replaces the quantization table by requantizing every block, the
    /// coefficient-domain "compression" transformation.
    pub fn requantize(&mut self, coarser: QuantTable) {
        for b in &mut self.blocks {
            let mut nb = self.quant.requantize_to(b, &coarser);
            clamp_block(&mut nb);
            *b = nb;
        }
        self.quant = coarser;
    }

    /// Builds a component from an explicit block grid (used by
    /// coefficient-domain transformations and tests). Blocks are row-major
    /// over the `ceil(width/8) × ceil(height/8)` grid and are clamped into
    /// the entropy-codable ranges.
    ///
    /// # Errors
    /// Returns [`JpegError::Malformed`] if the block count does not match
    /// the grid implied by `width` × `height`.
    pub fn from_blocks(
        id: u8,
        width: u32,
        height: u32,
        quant: QuantTable,
        mut blocks: Vec<Block>,
    ) -> Result<Component> {
        for b in &mut blocks {
            clamp_block(b);
        }
        Component::from_raw(id, width, height, quant, blocks)
    }

    pub(crate) fn from_raw(
        id: u8,
        width: u32,
        height: u32,
        quant: QuantTable,
        blocks: Vec<Block>,
    ) -> Result<Component> {
        let blocks_w = width.div_ceil(BLOCK_SIZE);
        let blocks_h = height.div_ceil(BLOCK_SIZE);
        if blocks.len() != (blocks_w as usize) * (blocks_h as usize) {
            return Err(JpegError::Malformed(format!(
                "component {id}: {} blocks for {}x{} grid",
                blocks.len(),
                blocks_w,
                blocks_h
            )));
        }
        Ok(Component {
            id,
            width,
            height,
            blocks_w,
            blocks_h,
            quant,
            blocks,
        })
    }
}

/// A JPEG image in the quantized-coefficient domain: one component for
/// grayscale, three (Y, Cb, Cr at 4:4:4) for color.
///
/// 4:4:4 keeps every component's block grid aligned with the pixel ROI
/// grid, which PuPPIeS requires to perturb the *same* regions in all
/// layers ("each layer is processed independently", §II-A footnote).
#[derive(Debug, Clone, PartialEq)]
pub struct CoeffImage {
    width: u32,
    height: u32,
    components: Vec<Component>,
}

impl CoeffImage {
    /// Forward-transforms an RGB image at the given JPEG quality (1..=100).
    pub fn from_rgb(img: &RgbImage, quality: u8) -> CoeffImage {
        let _span = puppies_obs::span("jpeg.fwd_transform", "jpeg");
        let planes = {
            let _cc = puppies_obs::span("jpeg.color_to_ycbcr", "jpeg");
            img.to_ycbcr_planes()
        };
        let lq = QuantTable::luma(quality);
        let cq = QuantTable::chroma(quality);
        let quants = [lq, cq.clone(), cq];
        let components = puppies_parallel::current().map_indexed(3, |i| {
            Component::from_plane(i as u8 + 1, &planes[i], quants[i].clone())
        });
        CoeffImage {
            width: img.width(),
            height: img.height(),
            components,
        }
    }

    /// Forward-transforms a grayscale image at the given quality.
    pub fn from_gray(img: &GrayImage, quality: u8) -> CoeffImage {
        let plane = img.to_plane();
        CoeffImage {
            width: img.width(),
            height: img.height(),
            components: vec![Component::from_plane(1, &plane, QuantTable::luma(quality))],
        }
    }

    /// Assembles a coefficient image from pre-built components.
    ///
    /// # Errors
    /// Returns [`JpegError::Malformed`] if there is not exactly 1 or 3
    /// components or their sizes disagree with `(width, height)`.
    pub fn from_components(width: u32, height: u32, components: Vec<Component>) -> Result<Self> {
        if components.len() != 1 && components.len() != 3 {
            return Err(JpegError::Malformed(format!(
                "{} components unsupported",
                components.len()
            )));
        }
        for c in &components {
            if c.width != width || c.height != height {
                return Err(JpegError::Malformed("component size mismatch".into()));
            }
        }
        Ok(CoeffImage {
            width,
            height,
            components,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether the image is single-component.
    pub fn is_gray(&self) -> bool {
        self.components.len() == 1
    }

    /// The components (1 or 3).
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Mutable component access.
    pub fn components_mut(&mut self) -> &mut [Component] {
        &mut self.components
    }

    /// Inverse-transforms back to RGB (grayscale replicates the single
    /// component).
    pub fn to_rgb(&self) -> RgbImage {
        let _span = puppies_obs::span("jpeg.inv_transform", "jpeg");
        if self.is_gray() {
            return self.to_gray_image().to_rgb();
        }
        let planes = puppies_parallel::current().map_slice(&self.components, Component::to_plane);
        let planes: [_; 3] = planes.try_into().expect("color image has 3 components");
        let _cc = puppies_obs::span("jpeg.color_from_ycbcr", "jpeg");
        RgbImage::from_ycbcr_planes(&planes)
    }

    /// Inverse-transforms the luma component to a grayscale image.
    pub fn to_gray_image(&self) -> GrayImage {
        self.components[0].to_plane().to_gray()
    }

    /// Encodes to a JFIF byte stream; see [`crate::codec`].
    ///
    /// # Errors
    /// Fails if a coefficient cannot be entropy coded.
    pub fn encode(&self, opts: &crate::codec::EncodeOptions) -> Result<Vec<u8>> {
        crate::codec::encode(self, opts)
    }

    /// Decodes a JFIF byte stream produced by [`CoeffImage::encode`] (or
    /// any baseline 4:4:4 / grayscale encoder).
    ///
    /// # Errors
    /// Fails on malformed or unsupported streams.
    pub fn decode(bytes: &[u8]) -> Result<CoeffImage> {
        crate::codec::decode(bytes)
    }

    /// Estimates the IJG quality this image's quantization tables were
    /// scaled at, from the luminance component's DQT (see
    /// [`QuantTable::nearest_quality`]). Streams produced by this codec at
    /// quality `q` estimate exactly `q`; foreign or hand-built tables
    /// resolve to the closest standard scaling.
    pub fn quality_estimate(&self) -> u8 {
        self.components[0]
            .quant()
            .nearest_quality(&crate::quant::ANNEX_K_LUMA)
    }

    /// Requantizes every component for recompression at a lower quality.
    pub fn requantize(&mut self, quality: u8) {
        let lq = QuantTable::luma(quality);
        let cq = QuantTable::chroma(quality);
        for (i, c) in self.components.iter_mut().enumerate() {
            c.requantize(if i == 0 { lq.clone() } else { cq.clone() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::metrics::psnr_rgb;
    use puppies_image::Rgb;

    fn test_image(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Rgb::new(
                ((x * 3 + y) % 256) as u8,
                ((x + y * 5) % 256) as u8,
                ((x * x / 4 + y) % 256) as u8,
            )
        })
    }

    #[test]
    fn forward_inverse_high_quality_is_faithful() {
        let img = test_image(40, 24);
        let c = CoeffImage::from_rgb(&img, 95);
        let back = c.to_rgb();
        let psnr = psnr_rgb(&img, &back);
        assert!(psnr > 35.0, "PSNR {psnr}");
    }

    #[test]
    fn quality_orders_reconstruction_error() {
        let img = test_image(64, 64);
        let p90 = psnr_rgb(&img, &CoeffImage::from_rgb(&img, 90).to_rgb());
        let p30 = psnr_rgb(&img, &CoeffImage::from_rgb(&img, 30).to_rgb());
        assert!(p90 > p30, "q90 {p90} <= q30 {p30}");
    }

    #[test]
    fn non_multiple_of_eight_sizes_roundtrip() {
        for (w, h) in [(9, 9), (17, 31), (8, 13)] {
            let img = test_image(w, h);
            let c = CoeffImage::from_rgb(&img, 90);
            let back = c.to_rgb();
            assert_eq!(back.width(), w);
            assert_eq!(back.height(), h);
            assert!(psnr_rgb(&img, &back) > 28.0);
        }
    }

    #[test]
    fn gray_roundtrip() {
        let img = test_image(32, 32).to_gray();
        let c = CoeffImage::from_gray(&img, 90);
        assert!(c.is_gray());
        let back = c.to_gray_image();
        let psnr = puppies_image::metrics::psnr_gray(&img, &back);
        assert!(psnr > 30.0, "PSNR {psnr}");
    }

    #[test]
    fn coefficients_within_ring_bounds() {
        let img = test_image(64, 64);
        let c = CoeffImage::from_rgb(&img, 100);
        for comp in c.components() {
            for b in comp.blocks() {
                assert!((COEFF_MIN..=COEFF_MAX).contains(&b[0]));
                for &v in &b[1..] {
                    assert!((AC_MIN..=AC_MAX).contains(&v));
                }
            }
        }
    }

    #[test]
    fn blocks_in_region_maps_pixels_to_blocks() {
        let img = test_image(64, 48);
        let c = CoeffImage::from_rgb(&img, 75);
        let comp = &c.components()[0];
        // A rect inside one block.
        assert_eq!(comp.blocks_in_region(Rect::new(1, 1, 3, 3)), vec![(0, 0)]);
        // A rect straddling four blocks.
        let four = comp.blocks_in_region(Rect::new(6, 6, 4, 4));
        assert_eq!(four, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        // Out of bounds clips to empty.
        assert!(comp.blocks_in_region(Rect::new(100, 100, 5, 5)).is_empty());
        // Full image covers the whole grid.
        assert_eq!(
            comp.blocks_in_region(Rect::new(0, 0, 64, 48)).len(),
            (comp.blocks_w() * comp.blocks_h()) as usize
        );
    }

    #[test]
    fn constant_block_dc_value() {
        // A flat mid-gray image: Y plane = 128 everywhere, so level-shifted
        // samples are 0 and every coefficient quantizes to 0.
        let img = RgbImage::filled(16, 16, Rgb::new(128, 128, 128));
        let c = CoeffImage::from_rgb(&img, 75);
        for b in c.components()[0].blocks() {
            assert_eq!(b[0], 0);
            assert!(b[1..].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn requantize_matches_fresh_encode_quality() {
        let img = test_image(32, 32);
        let mut c = CoeffImage::from_rgb(&img, 90);
        c.requantize(40);
        // The requantized image should be close to a direct q40 encode.
        let direct = CoeffImage::from_rgb(&img, 40);
        let a = c.to_rgb();
        let b = direct.to_rgb();
        let psnr = psnr_rgb(&a, &b);
        assert!(psnr > 30.0, "requantized diverges from direct: {psnr}");
    }

    #[test]
    fn quality_estimate_roundtrips_encode_quality() {
        let img = test_image(32, 32);
        for q in [25u8, 50, 75, 90, 95] {
            let c = CoeffImage::from_rgb(&img, q);
            assert_eq!(c.quality_estimate(), q);
            // Survives an encode/decode round trip (the DQT is carried in
            // the bitstream).
            let decoded =
                CoeffImage::decode(&c.encode(&crate::EncodeOptions::default()).unwrap()).unwrap();
            assert_eq!(decoded.quality_estimate(), q);
        }
    }

    #[test]
    fn from_components_validates() {
        let img = test_image(16, 16);
        let c = CoeffImage::from_rgb(&img, 75);
        let comps = c.components().to_vec();
        assert!(CoeffImage::from_components(16, 16, comps.clone()).is_ok());
        assert!(CoeffImage::from_components(16, 16, comps[..2].to_vec()).is_err());
        assert!(CoeffImage::from_components(32, 16, comps).is_err());
    }
}
