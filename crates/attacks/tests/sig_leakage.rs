//! Leakage oracle for the perceptual-identity signature: the 64-bit
//! pHash the PSP extracts at upload (and serves lookups from) must be a
//! function of the *public* region only. If any signature bit moved with
//! private-ROI content, the near-duplicate index would hand an adversary
//! a fresh side channel on top of the §VI image-domain probes — one
//! query per candidate private content, no pixels needed.
//!
//! The oracle plays the standard distinguishing game: an adversary who
//! chooses two private contents, sees the signature of the protected
//! upload, and guesses which content is inside must achieve accuracy
//! exactly 1/2 — not "close to", exactly, because the two signatures are
//! required to be bit-identical. A positive control confirms the mask is
//! what closes the channel: the same hash *without* ROI masking does
//! distinguish the contents, so equality under masking is not vacuous.

use puppies_core::{protect, OwnerKey, ProtectOptions, PublicParams};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_psp::{coeff_signature, PspServer};

const ROI: Rect = Rect::new(24, 16, 32, 32);

/// Public texture seeded per trial; private pixels chosen by `variant`.
fn image(seed: u32, variant: u8) -> RgbImage {
    RgbImage::from_fn(96, 72, |x, y| {
        if ROI.contains(x, y) {
            match variant {
                // Two maximally different private contents: a dark flat
                // patch vs a bright high-frequency texture.
                0 => Rgb::new(10, 10, 10),
                _ => Rgb::new(
                    (x * 37 + y * 91).wrapping_mul(113) as u8,
                    255 - (x as u8).wrapping_mul(29),
                    ((x ^ y) * 53) as u8,
                ),
            }
        } else {
            let v = x
                .wrapping_mul(19 + seed)
                .wrapping_add(y.wrapping_mul(31))
                .wrapping_add(seed.wrapping_mul(71));
            Rgb::new(
                (v.wrapping_mul(2_654_435_761) >> 24) as u8,
                ((x * 5 + y * 2 + seed) % 249) as u8,
                ((x + y * 3) ^ seed) as u8,
            )
        }
    })
}

/// Protects one trial image and returns (jpeg bytes, params bytes).
fn protected(seed: u32, variant: u8) -> (Vec<u8>, Vec<u8>) {
    let key = OwnerKey::from_seed([seed.max(1) as u8; 32]);
    let p = protect(
        &image(seed, variant),
        &[ROI],
        &key,
        &ProtectOptions::default().with_image_id(seed as u64),
    )
    .expect("leakage fixture protects");
    (p.bytes, p.params.to_bytes())
}

const TRIALS: u32 = 12;

/// The core claim, checked the way the server checks it: the upload-path
/// signature of two protections differing only inside the private ROI is
/// bit-identical, across many public textures and keys.
#[test]
fn private_content_cannot_move_a_signature_bit() {
    for seed in 1..=TRIALS {
        let (bytes_a, params_a) = protected(seed, 0);
        let (bytes_b, params_b) = protected(seed, 1);
        assert_ne!(
            bytes_a, bytes_b,
            "trial {seed}: variants must differ on disk"
        );
        let sig_a =
            PspServer::probe_signature(&bytes_a, Some(&params_a)).expect("variant 0 decodes");
        let sig_b =
            PspServer::probe_signature(&bytes_b, Some(&params_b)).expect("variant 1 decodes");
        assert_eq!(
            sig_a, sig_b,
            "trial {seed}: private content moved the signature \
             ({sig_a:016x} vs {sig_b:016x}) — leakage channel"
        );
    }
}

/// The distinguishing game, scored bit by bit: every 1-bit predictor an
/// adversary could build from the signature — "guess variant 1 iff bit i
/// is set", for each i, and their negations — scores exactly 1/2 over
/// balanced trials. With bit-identical signatures no richer predictor
/// can do better (any function of equal inputs gives equal outputs), so
/// this pins the whole family's advantage at zero, matching the §VI
/// no-advantage bar the other attack suites hold.
#[test]
fn every_signature_distinguisher_scores_exactly_half() {
    let mut sigs: Vec<(u64, u64)> = Vec::new(); // (sig of variant 0, of variant 1)
    for seed in 1..=TRIALS {
        let (bytes_a, params_a) = protected(seed, 0);
        let (bytes_b, params_b) = protected(seed, 1);
        sigs.push((
            PspServer::probe_signature(&bytes_a, Some(&params_a)).unwrap(),
            PspServer::probe_signature(&bytes_b, Some(&params_b)).unwrap(),
        ));
    }
    let total = 2 * sigs.len() as u32; // balanced: each trial fields both variants
    for bit in 0..64u32 {
        let mut correct = 0u32;
        for &(sig0, sig1) in &sigs {
            // Predictor: "variant 1 iff bit is set".
            if (sig0 >> bit) & 1 == 0 {
                correct += 1; // guessed 0, truth 0
            }
            if (sig1 >> bit) & 1 == 1 {
                correct += 1; // guessed 1, truth 1
            }
        }
        assert_eq!(
            2 * correct,
            total,
            "bit-{bit} predictor scored {correct}/{total}: advantage over coin flip"
        );
    }
}

/// Positive control: drop the ROI mask and the *same* hash distinguishes
/// the two private contents for most trials — proving the masking, not
/// some accident of the hash, is what closes the channel. (The perturbed
/// ROI coefficients depend on the plaintext — protection is invertible —
/// so the unmasked DC envelope shifts with the secret.)
#[test]
fn unmasked_signature_does_leak_the_mask_is_load_bearing() {
    let mut distinguishable = 0u32;
    for seed in 1..=TRIALS {
        let (bytes_a, _) = protected(seed, 0);
        let (bytes_b, _) = protected(seed, 1);
        let unmasked = |bytes: &[u8]| coeff_signature(&CoeffImage::decode(bytes).unwrap(), &[]);
        if unmasked(&bytes_a) != unmasked(&bytes_b) {
            distinguishable += 1;
        }
    }
    assert!(
        distinguishable * 2 > TRIALS,
        "unmasked signatures separated only {distinguishable}/{TRIALS} trials — \
         the blindness oracle may be vacuous"
    );
}

/// The signature the server would *serve* search results under equals
/// the one recomputed from public data alone: rebuild each variant with
/// the private region replaced by a fixed neutral patch, and the
/// masked signature of the true upload must equal the masked signature
/// of the neutralized rebuild. An adversary already knowing the public
/// region learns nothing new from the index.
#[test]
fn signature_is_computable_from_public_region_alone() {
    for seed in 1..=4u32 {
        let (bytes, params) = protected(seed, 1);
        let sig_true = PspServer::probe_signature(&bytes, Some(&params)).unwrap();
        // Neutral rebuild: same public texture, canonical private patch.
        let (bytes_n, params_n) = protected(seed, 0);
        let sig_neutral = PspServer::probe_signature(&bytes_n, Some(&params_n)).unwrap();
        assert_eq!(
            sig_true, sig_neutral,
            "trial {seed}: signature is not simulatable from public data"
        );
        // And the params' ROI list is what the probe masks with.
        let rois: Vec<Rect> = PublicParams::from_bytes(&params)
            .unwrap()
            .rois
            .iter()
            .map(|r| r.rect)
            .collect();
        assert_eq!(rois, vec![ROI]);
    }
}
