//! Adversarial k−1 leakage oracles against the Shamir-shared cluster:
//! a coalition of k−1 backends pools everything it holds and attacks it
//! with (a) the byte-entropy/χ² distinguisher, (b) the perfect-secrecy
//! enumeration argument, and (c) the paper's §VI image-domain probes run
//! over byte-mapped share data. Every probe must show **no measurable
//! advantage over the same probe run on random bytes** — the
//! information-theoretic claim of Shamir sharing, machine-checked.

use puppies_attacks::{
    distinguish, inpainting_attack, pca_attack, CorrelationAttackReport, RECOGNIZABILITY_THRESHOLD,
};
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{GrayImage, Rect, Rgb, RgbImage};
use puppies_psp::cluster::shamir;
use puppies_psp::cluster::{ClusterConfig, ShardedPspCluster};
use puppies_psp::PspConfig;

const N: usize = 5;
const K: usize = 3;

fn fixture_image() -> RgbImage {
    RgbImage::from_fn(96, 64, |x, y| {
        Rgb::new(
            (45 + (x * 3 + y) % 180) as u8,
            (55 + (x + y * 4) % 170) as u8,
            (35 + (x * 2 + y * 2) % 190) as u8,
        )
    })
}

/// Uploads one protected fixture and returns (cluster, id, secret image).
fn shared_upload() -> (ShardedPspCluster, puppies_psp::ClusterPhotoId, RgbImage) {
    let img = fixture_image();
    let key = OwnerKey::from_seed([77u8; 32]);
    let opts = ProtectOptions::default().with_image_id(1);
    let protected = protect(&img, &[Rect::new(24, 16, 32, 32)], &key, &opts).unwrap();
    let grant = key.grant_rois(1, &[0]);
    let mut cfg = ClusterConfig::new(N, K).with_seed([0xEE; 32]);
    cfg.backend = PspConfig::uncached();
    let cluster = ShardedPspCluster::new(cfg).unwrap();
    let id = cluster
        .upload(protected.bytes, protected.params.to_bytes(), &grant)
        .unwrap();
    (cluster, id, img)
}

/// All (k−1)-subsets of `0..n`.
fn coalitions(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k - 1, &mut cur, &mut out);
    out
}

/// Deterministic uniform baseline bytes (xorshift64*), the "no
/// advantage" reference every probe is compared against.
fn random_baseline(len: usize, mut s: u64) -> Vec<u8> {
    s |= 1;
    (0..len)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8
        })
        .collect()
}

/// Every (k−1)-coalition's pooled share bytes must pass the same
/// uniformity distinguisher that fresh random bytes pass.
#[test]
fn every_coalition_is_uniform_under_entropy_and_chi2() {
    let (cluster, id, _) = shared_upload();
    let shares = cluster.visible_shares(id).unwrap();
    assert_eq!(shares.len(), N);

    for coalition in coalitions(N, K) {
        let pooled: Vec<u8> = coalition
            .iter()
            .flat_map(|&b| shares[b].1.payload.clone())
            .collect();
        assert!(
            pooled.len() >= 4096,
            "pooled sample too small to judge: {} bytes",
            pooled.len()
        );
        let verdict = distinguish(&pooled);
        assert!(
            verdict.uniform,
            "coalition {coalition:?} distinguishable from random: {verdict:?}"
        );
        // No advantage over random: the baseline of the same size passes
        // the identical bounds.
        let baseline = distinguish(&random_baseline(pooled.len(), 0x5150));
        assert!(baseline.uniform, "baseline must pass its own test");
        assert!(
            (verdict.entropy - baseline.entropy).abs() < 0.05,
            "entropy gap vs random: share {} vs baseline {}",
            verdict.entropy,
            baseline.entropy
        );
    }
}

/// The perfect-secrecy enumeration oracle: for a coalition holding k−1
/// shares of a byte, every candidate value of one missing share maps to
/// a *distinct* secret value — all 256 secrets stay exactly as likely,
/// so the coalition has learned nothing at all.
#[test]
fn k_minus_one_shares_leave_all_secrets_possible() {
    let secret = [0xA7u8];
    let shares = shamir::split(&secret, N, K, 0, [3u8; 32]).unwrap();
    // Coalition holds shares 1 and 2 (indices 2, 3); it guesses share 0.
    let coalition = [shares[1].clone(), shares[2].clone()];
    let missing_x = shares[0].index;

    let mut reachable = [false; 256];
    for guess in 0..=255u8 {
        // Hypothesize the missing share carrying evaluation `guess` at
        // missing_x. The integrity tag is a public function of header +
        // payload (it authenticates integrity, not origin), so the
        // coalition can mint a verifying candidate share for any guess.
        let forged = shamir::Share::new(missing_x, K as u8, N as u8, 0, vec![guess]);
        let set = [forged, coalition[0].clone(), coalition[1].clone()];
        let got = shamir::reconstruct(&set).unwrap();
        reachable[got[0] as usize] = true;
    }
    assert!(
        reachable.iter().all(|&r| r),
        "some secrets unreachable: k-1 shares DID constrain the secret"
    );
}

/// §VI image-domain probes over byte-mapped coalition data: inpainting
/// and PCA reconstruction score no better against the true image than
/// the same attacks run on pure random bytes.
#[test]
fn image_probes_show_no_advantage_over_random() {
    let (cluster, id, original) = shared_upload();
    let shares = cluster.visible_shares(id).unwrap();
    let (w, h) = (original.width(), original.height());
    let need = (w * h) as usize;

    let gray_original = original.to_gray();
    let roi = [Rect::new(24, 16, 32, 32)];

    // One representative coalition (the first k−1 backends), pooled.
    let pooled: Vec<u8> = shares[..K - 1]
        .iter()
        .flat_map(|(_, s)| s.payload.clone())
        .collect();
    // Shares are smaller than the pixel grid; cycle through the pooled
    // bytes (the repeat period is thousands of bytes — no local
    // structure an inpainting/PCA probe could exploit appears).
    let as_gray = GrayImage::from_fn(w, h, |x, y| pooled[(y * w + x) as usize % pooled.len()]);
    let as_rgb = RgbImage::from_fn(w, h, |x, y| {
        let b = pooled[(y * w + x) as usize % pooled.len()];
        Rgb::new(b, b, b)
    });

    let rand_bytes = random_baseline(need, 0xBEEF);
    let rand_gray = GrayImage::from_fn(w, h, |x, y| rand_bytes[(y * w + x) as usize]);
    let rand_rgb = RgbImage::from_fn(w, h, |x, y| {
        let b = rand_bytes[(y * w + x) as usize];
        Rgb::new(b, b, b)
    });

    // Inpainting probe: fill the ROI from "surrounding" share bytes.
    let inpaint_share = inpainting_attack(&as_rgb, &roi, 2).to_gray();
    let inpaint_rand = inpainting_attack(&rand_rgb, &roi, 2).to_gray();
    let score_share = CorrelationAttackReport::score(&gray_original, &inpaint_share);
    let score_rand = CorrelationAttackReport::score(&gray_original, &inpaint_rand);
    assert!(
        score_share.recognizability <= score_rand.recognizability + 0.05,
        "inpainting advantage over random: {} vs {}",
        score_share.recognizability,
        score_rand.recognizability
    );
    assert!(
        score_share.recognizability < RECOGNIZABILITY_THRESHOLD,
        "share-based inpainting is recognizable: {}",
        score_share.recognizability
    );

    // PCA probe: learn patch structure from share bytes, reconstruct ROI.
    let pca_share = pca_attack(&as_gray, &roi, 4);
    let pca_rand = pca_attack(&rand_gray, &roi, 4);
    let pca_score_share = CorrelationAttackReport::score(&gray_original, &pca_share);
    let pca_score_rand = CorrelationAttackReport::score(&gray_original, &pca_rand);
    assert!(
        pca_score_share.recognizability <= pca_score_rand.recognizability + 0.05,
        "PCA advantage over random: {} vs {}",
        pca_score_share.recognizability,
        pca_score_rand.recognizability
    );

    // And the bytes are not even a decodable JPEG — the k−1 coalition
    // cannot reach the perturbed-image baseline the single-PSP threat
    // model concedes.
    assert!(puppies_jpeg::decode_rgb(&pooled).is_err());
}

/// Regression (found while tuning the distinguisher): tiny windows of a
/// single share — a few hundred bytes — legitimately miss the 256-symbol
/// support, so a fixed "entropy ≥ 7.9" rule false-positives on perfectly
/// uniform data. The adaptive verdict must (a) keep judging *pooled*
/// multi-KiB samples strictly, and (b) not flag short uniform windows
/// that a naive fixed floor would.
#[test]
fn regression_low_entropy_short_payload_windows() {
    let (cluster, id, _) = shared_upload();
    let shares = cluster.visible_shares(id).unwrap();
    let payload = &shares[0].1.payload;

    // A 256-byte window of a real share: entropy mathematically capped
    // at 8 bits but realistically ≈ 7.1 — a fixed 7.9 floor would call
    // this "leaky" even though it is exactly as uniform as /dev/urandom.
    let window = &payload[..256.min(payload.len())];
    let naive_fixed_floor = 7.9;
    assert!(
        puppies_attacks::byte_entropy(window) < naive_fixed_floor,
        "if this starts passing, the regression scenario is stale"
    );
    let verdict = distinguish(window);
    assert!(
        verdict.uniform,
        "adaptive distinguisher must not flag a short uniform window: {verdict:?}"
    );
    // Same-size random baseline behaves identically.
    let baseline = distinguish(&random_baseline(window.len(), 0xD00D));
    assert!(baseline.uniform);

    // Strictness is preserved where it matters: the pooled sample.
    let pooled: Vec<u8> = shares[..K - 1]
        .iter()
        .flat_map(|(_, s)| s.payload.clone())
        .collect();
    let pooled_verdict = distinguish(&pooled);
    assert!(pooled_verdict.uniform);
    assert!(
        pooled_verdict.entropy_floor > 7.8,
        "pooled floor must be strict (vs ~7.1 for a short window), got {}",
        pooled_verdict.entropy_floor
    );
}
