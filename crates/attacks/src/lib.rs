//! The privacy attacks of the paper's §VI, played by the semi-honest PSP
//! (or anyone who downloads the public data).
//!
//! - [`bruteforce`] — exhaustive key search: accounting for the real key
//!   space plus a live demonstration on a deliberately tiny key space, and
//!   the DC-sweep attack that breaks PuPPIeS-N (§IV-B.1's motivation)
//! - [`features`] — the SIFT-feature attack (§VI-B.1, Fig. 20)
//! - [`edges`] — the edge-detection attack (§VI-B.2, Fig. 21)
//! - [`faces`] — the face-detection attack (§VI-B.3)
//! - [`recognition`] — the eigenface face-recognition attack (§VI-B.4,
//!   Fig. 22)
//! - [`correlation`] — the three signal-correlation attacks (§VI-B.5,
//!   Fig. 23): private-matrix inference from signal continuity,
//!   neighbour-correlation inpainting, and PCA reconstruction
//! - [`user_study`] — the machine proxy for the paper's MTurk study:
//!   recognizability scoring of attack outputs
//! - [`sis`] — distinguishers against the k-of-n secret-sharing layer:
//!   byte-entropy and χ² uniformity statistics a coalition of k−1
//!   cluster backends would run over its shares

pub mod bruteforce;
pub mod correlation;
pub mod edges;
pub mod faces;
pub mod features;
pub mod recognition;
pub mod sis;
pub mod user_study;

pub use correlation::{
    inpainting_attack, matrix_inference_attack, pca_attack, CorrelationAttackReport,
};
pub use edges::edge_attack;
pub use features::sift_attack;
pub use sis::{byte_entropy, chi2_uniform, distinguish, UniformityVerdict};
pub use user_study::{recognizability_verdict, RECOGNIZABILITY_THRESHOLD};
