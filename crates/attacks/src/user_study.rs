//! Machine proxy for the paper's MTurk user study (§VI-B).
//!
//! The study asked 53 participants to describe attack-recovered photos;
//! none could ("Nothing but mosaic"). We replace the human judgment with
//! the structural [`puppies_image::metrics::recognizability`] score: a
//! recovered image counts as *recognized* when its score against the
//! original clears [`RECOGNIZABILITY_THRESHOLD`]. The threshold is
//! calibrated so that JPEG-compressed originals pass comfortably while
//! decorrelated noise fails by a wide margin (see the tests).

use puppies_image::metrics::recognizability;
use puppies_image::GrayImage;

/// Score above which a candidate is considered recognizable as the
/// original.
pub const RECOGNIZABILITY_THRESHOLD: f64 = 0.55;

/// The study verdict for one image pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyVerdict {
    /// Structural score in `[0, 1]`.
    pub score: f64,
    /// Whether the proxy "participant" recognized the content.
    pub recognized: bool,
}

/// Scores a recovered image against the original.
pub fn recognizability_verdict(original: &GrayImage, recovered: &GrayImage) -> StudyVerdict {
    let score = recognizability(original, recovered);
    StudyVerdict {
        score,
        recognized: score >= RECOGNIZABILITY_THRESHOLD,
    }
}

/// Aggregates verdicts into the study's headline number: the fraction of
/// recovered photos participants could describe.
pub fn recognition_rate(verdicts: &[StudyVerdict]) -> f64 {
    if verdicts.is_empty() {
        return 0.0;
    }
    verdicts.iter().filter(|v| v.recognized).count() as f64 / verdicts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::{draw, Rect, Rgb, RgbImage};
    use puppies_jpeg::CoeffImage;

    fn scene() -> GrayImage {
        let mut img = RgbImage::filled(96, 96, Rgb::new(180, 180, 180));
        draw::fill_rect(&mut img, Rect::new(16, 16, 40, 40), Rgb::new(60, 60, 60));
        draw::fill_ellipse(&mut img, 70, 70, 14, 10, Rgb::new(230, 100, 40));
        puppies_image::font::draw_text(&mut img, "HI", 60, 20, 3, Rgb::new(20, 20, 20));
        img.to_gray()
    }

    #[test]
    fn jpeg_compressed_original_is_recognized() {
        let img = scene();
        let through_jpeg = CoeffImage::from_gray(&img, 50).to_gray_image();
        let v = recognizability_verdict(&img, &through_jpeg);
        assert!(v.recognized, "score {}", v.score);
    }

    #[test]
    fn noise_is_not_recognized() {
        let img = scene();
        let noise = GrayImage::from_fn(96, 96, |x, y| {
            ((x.wrapping_mul(2654435761) ^ y.wrapping_mul(40503)) % 256) as u8
        });
        let v = recognizability_verdict(&img, &noise);
        assert!(!v.recognized, "score {}", v.score);
    }

    #[test]
    fn flat_fill_is_not_recognized() {
        // An inpainting-style smooth fill: no structure, no recognition.
        let img = scene();
        let flat = GrayImage::filled(96, 96, img.mean() as u8);
        let v = recognizability_verdict(&img, &flat);
        assert!(!v.recognized, "score {}", v.score);
    }

    #[test]
    fn rate_aggregates() {
        let yes = StudyVerdict {
            score: 0.9,
            recognized: true,
        };
        let no = StudyVerdict {
            score: 0.1,
            recognized: false,
        };
        assert_eq!(recognition_rate(&[]), 0.0);
        assert!((recognition_rate(&[yes, no, no, no]) - 0.25).abs() < 1e-12);
    }
}
