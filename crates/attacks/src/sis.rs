//! Distinguishers against the k-of-n secret-image-sharing layer
//! (PuPPIeS-SIS): byte-entropy and χ² uniformity statistics that an
//! adversarial coalition of k−1 cluster backends would run over the
//! shares it holds.
//!
//! Shamir sharing over GF(2⁸) is information-theoretically hiding: any
//! k−1 shares of a secret are *jointly uniform* random bytes, so every
//! statistic computed from them must be indistinguishable from the same
//! statistic over `/dev/urandom`-grade noise. These helpers turn that
//! claim into a measurable verdict the leakage tests assert — and that
//! would *fail* if the split ever became biased (e.g. a broken RNG, a
//! short coefficient reuse, or structure leaking through index 0).

/// Shannon entropy of the byte histogram, in bits per byte (max 8.0).
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut hist = [0u64; 256];
    for &b in bytes {
        hist[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    let mut h = 0.0;
    for &c in &hist {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Pearson χ² statistic of the byte histogram against the uniform
/// distribution over 256 symbols (255 degrees of freedom).
pub fn chi2_uniform(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut hist = [0u64; 256];
    for &b in bytes {
        hist[b as usize] += 1;
    }
    let expected = bytes.len() as f64 / 256.0;
    hist.iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Verdict of the uniformity distinguisher over one byte sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityVerdict {
    /// Shannon entropy (bits/byte).
    pub entropy: f64,
    /// Minimum entropy a uniform sample of this size would show (the
    /// finite-sample floor: even perfect randomness can't reach 8.0 with
    /// few bytes).
    pub entropy_floor: f64,
    /// χ² against uniform (255 dof).
    pub chi2: f64,
    /// Acceptance ceiling for the χ² statistic.
    pub chi2_ceiling: f64,
    /// True when the sample is statistically indistinguishable from
    /// uniform random bytes under both tests.
    pub uniform: bool,
}

/// Runs both distinguishers with sample-size-adaptive bounds.
///
/// For χ²(255 dof), mean = 255 and σ = √510 ≈ 22.6; the ceiling is
/// mean + 6σ ≈ 391 — a one-in-billions false-positive rate, yet any
/// real bias (a stuck bit costs ≳ n/256 per lost symbol) blows through
/// it immediately for the sample sizes the leakage tests use (≥ 4 KiB).
/// The entropy floor follows the Miller–Madow bias: a uniform sample of
/// `n` bytes has expected entropy ≈ 8 − 255/(2·n·ln 2), derated ×3 for
/// variance.
///
/// Samples under 1 KiB are judged by χ² only (the entropy floor would be
/// too loose to mean anything); callers should prefer pooling shares
/// into one large sample.
pub fn distinguish(bytes: &[u8]) -> UniformityVerdict {
    let n = bytes.len() as f64;
    let entropy = byte_entropy(bytes);
    let chi2 = chi2_uniform(bytes);
    let chi2_ceiling = 255.0 + 6.0 * (2.0 * 255.0f64).sqrt();
    let entropy_floor = if bytes.len() >= 1024 {
        8.0 - 3.0 * 255.0 / (2.0 * n * std::f64::consts::LN_2)
    } else {
        0.0
    };
    UniformityVerdict {
        entropy,
        entropy_floor,
        chi2,
        chi2_ceiling,
        uniform: chi2 <= chi2_ceiling && entropy >= entropy_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap xorshift64* stream — good enough to exercise the uniform
    /// side of the distinguisher.
    fn pseudo_random(n: usize, mut s: u64) -> Vec<u8> {
        s |= 1;
        (0..n)
            .map(|_| {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                (s.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn random_bytes_pass() {
        for seed in 1..=5 {
            let v = distinguish(&pseudo_random(16 << 10, seed));
            assert!(v.uniform, "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn constant_bytes_fail() {
        let v = distinguish(&vec![0x41u8; 4096]);
        assert!(!v.uniform);
        assert!(v.entropy < 0.01);
    }

    #[test]
    fn text_like_bytes_fail() {
        // ASCII-range bytes only: entropy ≤ ~6.6, χ² enormous.
        let text: Vec<u8> = (0..8192u32).map(|i| (32 + i * 7 % 95) as u8).collect();
        let v = distinguish(&text);
        assert!(!v.uniform, "{v:?}");
    }

    #[test]
    fn jpeg_like_bytes_fail() {
        // JPEG entropy data is high-entropy but structured: stuffed 0x00
        // after every 0xFF and marker scaffolding shift the histogram
        // enough for χ² to fire on real files. Emulate the stuffing bias.
        let mut data = pseudo_random(8192, 99);
        for i in (0..data.len()).step_by(17) {
            data[i] = 0xFF;
            if i + 1 < data.len() {
                data[i + 1] = 0x00;
            }
        }
        let v = distinguish(&data);
        assert!(!v.uniform, "{v:?}");
    }

    #[test]
    fn single_stuck_bit_fails() {
        // A broken RNG that never sets bit 0 halves the support.
        let data: Vec<u8> = pseudo_random(8192, 7).iter().map(|&b| b & 0xFE).collect();
        let v = distinguish(&data);
        assert!(!v.uniform, "{v:?}");
    }

    #[test]
    fn entropy_is_zero_for_empty() {
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(chi2_uniform(&[]), 0.0);
    }
}
