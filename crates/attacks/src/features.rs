//! The SIFT-feature attack of §VI-B.1 (Fig. 20): extract features from a
//! perturbed image and try to match them against the original's features.

use puppies_image::GrayImage;
use puppies_vision::sift::{extract_sift, match_descriptors, SiftParams};

/// Result of one SIFT attack run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftAttackReport {
    /// Features found in the original image.
    pub original_features: usize,
    /// Features found in the perturbed image.
    pub perturbed_features: usize,
    /// Raw ratio-test matches between the two (includes chance hits
    /// between noise descriptors).
    pub raw_matches: usize,
    /// Matches whose keypoint positions also agree (within 12 px on the
    /// aligned pair) — the matches an adversary could actually act on.
    /// This is the Fig. 20 quantity.
    pub matches: usize,
}

impl SiftAttackReport {
    /// Whether the attack recovered nothing (the paper's ">90% of images
    /// have zero matches" criterion).
    pub fn zero_matches(&self) -> bool {
        self.matches == 0
    }
}

/// Runs the attack: SIFT on both images, Lowe ratio-test matching at 0.7
/// (a strict adversary setting), then a position-consistency filter (the
/// images are aligned, so a real match must land on the same content).
pub fn sift_attack(original: &GrayImage, perturbed: &GrayImage) -> SiftAttackReport {
    let params = SiftParams::default();
    let ka = extract_sift(original, &params);
    let kb = extract_sift(perturbed, &params);
    let raw = match_descriptors(&kb, &ka, 0.7);
    let consistent = raw
        .iter()
        .filter(|&&(bi, ai)| {
            let (b, a) = (&kb[bi], &ka[ai]);
            let dx = (b.x - a.x) as f64;
            let dy = (b.y - a.y) as f64;
            (dx * dx + dy * dy).sqrt() < 12.0
        })
        .count();
    SiftAttackReport {
        original_features: ka.len(),
        perturbed_features: kb.len(),
        raw_matches: raw.len(),
        matches: consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
    use puppies_image::{draw, Rect, Rgb, RgbImage};
    use puppies_jpeg::CoeffImage;

    fn scene() -> RgbImage {
        let mut img = RgbImage::filled(128, 128, Rgb::new(120, 120, 130));
        draw::fill_rect(&mut img, Rect::new(16, 16, 40, 30), Rgb::new(220, 220, 210));
        draw::fill_ellipse(&mut img, 90, 40, 20, 14, Rgb::new(40, 40, 60));
        draw::fill_rect(&mut img, Rect::new(60, 80, 44, 34), Rgb::new(170, 60, 60));
        draw::fill_ellipse(&mut img, 32, 96, 14, 14, Rgb::new(240, 210, 60));
        img
    }

    #[test]
    fn self_attack_matches_plenty() {
        let gray = scene().to_gray();
        let report = sift_attack(&gray, &gray);
        assert!(report.original_features > 5);
        assert!(report.matches * 2 >= report.original_features, "{report:?}");
    }

    #[test]
    fn perturbation_destroys_matches() {
        let img = scene();
        let key = OwnerKey::from_seed([7u8; 32]);
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
        // Whole-image ROI, as the paper's Fig. 20 experiment does.
        let protected = protect(&img, &[Rect::new(0, 0, 128, 128)], &key, &opts).unwrap();
        let perturbed = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
        let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
        let report = sift_attack(&reference.to_gray(), &perturbed.to_gray());
        assert!(
            report.matches <= report.original_features / 10,
            "too many surviving matches: {report:?}"
        );
    }
}
