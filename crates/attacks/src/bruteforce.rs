//! Brute-force key search (§VI-A) and the DC-sweep attack against
//! PuPPIeS-N.
//!
//! The real key space (≥ 705 bits even at the low privacy level) is far
//! beyond exhaustion; [`tiny_keyspace_demo`] shows the attack *would* work
//! if the space were searchable, which is the honest way to demonstrate
//! that the defense is the key size and nothing else. The DC sweep
//! ([`naive_dc_attack`]) exploits PuPPIeS-N's single shared DC
//! perturbation value: 2048 candidates explain every block at once, and a
//! smoothness prior picks the right one — the reason PuPPIeS-B rotates the
//! DC vector.

use puppies_core::matrix::{wrap_dc, MATRIX_LEN};
use puppies_core::{analysis, PrivacyLevel};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;

/// Secure-bit summary for each Table IV level, with the paper's quoted
/// numbers alongside (see `puppies_core::analysis` for the discrepancy
/// discussion).
pub fn keyspace_report() -> Vec<analysis::SecureBits> {
    PrivacyLevel::TABLE_IV
        .iter()
        .map(|&l| analysis::secure_bits(l))
        .collect()
}

/// Demonstrates exhaustive search on a deliberately tiny key space: one
/// block's DC perturbed with `bits` bits of range. Returns the true
/// perturbation and the recovered one (they match when the smoothness
/// prior holds, i.e. the block resembles its neighbours).
///
/// The adversary scores each candidate by how close the implied DC is to
/// the neighbouring blocks' mean DC — the same prior the correlation
/// attacks use at scale.
pub fn tiny_keyspace_demo(
    coeff: &CoeffImage,
    bx: u32,
    by: u32,
    bits: u32,
    secret: i32,
) -> (i32, i32) {
    assert!(bits <= 11, "demo keyspace capped at 11 bits");
    let range = 1i32 << bits;
    let secret = secret.rem_euclid(range);
    let comp = &coeff.components()[0];
    let original_dc = comp.block(bx, by)[0];
    let perturbed_dc = wrap_dc(original_dc + secret);
    // Neighbour context (the adversary sees unperturbed neighbours).
    let mut neighbour_sum = 0i64;
    let mut n = 0i64;
    for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
        let nx = bx as i64 + dx;
        let ny = by as i64 + dy;
        if nx >= 0 && ny >= 0 && (nx as u32) < comp.blocks_w() && (ny as u32) < comp.blocks_h() {
            neighbour_sum += comp.block(nx as u32, ny as u32)[0] as i64;
            n += 1;
        }
    }
    let target = if n > 0 {
        neighbour_sum as f64 / n as f64
    } else {
        0.0
    };
    let mut best = (f64::INFINITY, 0i32);
    for cand in 0..range {
        let implied = wrap_dc(perturbed_dc - cand);
        let err = (implied as f64 - target).abs();
        if err < best.0 {
            best = (err, cand);
        }
    }
    (secret, best.1)
}

/// The DC-sweep attack on PuPPIeS-N: every block in the ROI shares the
/// same DC perturbation `p₀`, so the adversary sweeps all 2048 candidates
/// and scores each by total-variation smoothness of the implied DC plane
/// against the surrounding unperturbed blocks. Returns the best candidate.
///
/// Against PuPPIeS-B and later schemes the assumption is false (rotating
/// vector) and the attack degenerates to chance — the ablation experiment
/// quantifies this.
pub fn naive_dc_attack(coeff: &CoeffImage, roi: Rect) -> i32 {
    let comp = &coeff.components()[0];
    let blocks = comp.blocks_in_region(roi);
    let mut best = (f64::INFINITY, 0i32);
    for cand in 0..2048i32 {
        let mut score = 0.0f64;
        for &(bx, by) in &blocks {
            let implied = wrap_dc(comp.block(bx, by)[0] - cand);
            // Compare against each neighbour; unperturbed neighbours use
            // their stored DC, perturbed ones the same candidate.
            for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                let nx = bx as i64 + dx;
                let ny = by as i64 + dy;
                if nx < 0 || ny < 0 || nx as u32 >= comp.blocks_w() || ny as u32 >= comp.blocks_h()
                {
                    continue;
                }
                let (nx, ny) = (nx as u32, ny as u32);
                let inside = blocks.contains(&(nx, ny));
                let ndc = if inside {
                    wrap_dc(comp.block(nx, ny)[0] - cand)
                } else {
                    comp.block(nx, ny)[0]
                };
                score += (implied - ndc).abs() as f64;
            }
        }
        if score < best.0 {
            best = (score, cand);
        }
    }
    best.1
}

/// Expected number of candidates for a full private-matrix pair at `level`
/// expressed as a base-2 exponent.
pub fn search_exponent(level: PrivacyLevel) -> u32 {
    analysis::brute_force_exponent(level)
}

/// Sanity helper: number of matrix entries an adversary must guess.
pub fn matrix_entries() -> usize {
    MATRIX_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::perturb::{dc_perturbation, perturb_roi, RoiKeys};
    use puppies_core::{OwnerKey, PerturbProfile, Scheme};
    use puppies_image::{Rgb, RgbImage};

    fn smooth_image() -> RgbImage {
        RgbImage::from_fn(64, 64, |x, y| {
            let v = (100.0 + 40.0 * ((x as f32) / 64.0) + 30.0 * ((y as f32) / 64.0)) as u8;
            Rgb::new(v, v, v)
        })
    }

    #[test]
    fn keyspace_exceeds_nist_everywhere() {
        for sb in keyspace_report() {
            assert!(sb.total_bits >= 256, "{sb:?}");
        }
    }

    #[test]
    fn tiny_keyspace_is_searchable() {
        let coeff = CoeffImage::from_rgb(&smooth_image(), 75);
        // 4-bit secret on a smooth image: the smoothness prior nails it.
        let (secret, guessed) = tiny_keyspace_demo(&coeff, 3, 3, 4, 11);
        assert_eq!(secret, guessed, "4-bit space must fall to brute force");
    }

    #[test]
    fn naive_scheme_falls_to_dc_sweep() {
        let img = smooth_image();
        let mut coeff = CoeffImage::from_rgb(&img, 75);
        let key = OwnerKey::from_seed([3u8; 32]);
        let grant = key.grant_all();
        let keys: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&grant, 1, 0, c).unwrap())
            .collect();
        let profile = PerturbProfile::paper(Scheme::Naive, PrivacyLevel::Medium);
        let roi = Rect::new(16, 16, 32, 32);
        perturb_roi(&mut coeff, roi, &keys, &profile).unwrap();
        let truth = dc_perturbation(&profile, &keys[0], 0);
        let guess = naive_dc_attack(&coeff, roi);
        // The smoothness prior recovers the shared value up to a small
        // constant offset (a global brightness shift) — which exposes the
        // hidden content just the same.
        let err = puppies_core::matrix::wrap_dc(guess - truth).abs();
        assert!(
            err <= 8,
            "sweep missed by {err} (guess {guess}, truth {truth})"
        );
    }

    #[test]
    fn base_scheme_resists_dc_sweep() {
        let img = smooth_image();
        let mut coeff = CoeffImage::from_rgb(&img, 75);
        let key = OwnerKey::from_seed([3u8; 32]);
        let grant = key.grant_all();
        let keys: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&grant, 1, 0, c).unwrap())
            .collect();
        let profile = PerturbProfile::paper(Scheme::Base, PrivacyLevel::Medium);
        let roi = Rect::new(16, 16, 32, 32);
        perturb_roi(&mut coeff, roi, &keys, &profile).unwrap();
        let guess = naive_dc_attack(&coeff, roi);
        // With a rotating DC vector no single candidate explains all
        // blocks; the sweep's answer should not match the first rotation
        // slot (and even if it collides, it explains at most 1/64 of
        // blocks).
        let matches = (0..64u32)
            .filter(|&k| dc_perturbation(&profile, &keys[0], k) == guess)
            .count();
        assert!(
            matches <= 4,
            "sweep candidate matches {matches}/64 rotation slots"
        );
    }

    #[test]
    fn exponents_match_analysis() {
        assert_eq!(search_exponent(PrivacyLevel::Low), 704 + 10);
        assert_eq!(matrix_entries(), 64);
    }
}
