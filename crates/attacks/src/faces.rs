//! The face-detection attack of §VI-B.3: run the Haar detector over
//! perturbed images (and P3 public parts) and count correctly detected
//! ground-truth faces.

use puppies_image::{GrayImage, Rect};
use puppies_vision::face::{detect_faces, FaceDetectorParams};

/// Detection-attack outcome for one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaceAttackReport {
    /// Ground-truth faces present.
    pub truth: usize,
    /// Ground-truth faces correctly localized (IoU ≥ 0.5 against a
    /// detection — the usual PASCAL criterion; the paper counts
    /// "correctly detected faces only").
    pub detected: usize,
    /// Spurious detections not matching any ground-truth face.
    pub false_positives: usize,
}

/// Runs the detector and scores against ground truth.
pub fn face_attack(img: &GrayImage, truth: &[Rect]) -> FaceAttackReport {
    let dets = detect_faces(img, &FaceDetectorParams::default());
    let mut detected = 0;
    for t in truth {
        if dets.iter().any(|d| d.rect.iou(*t) >= 0.5) {
            detected += 1;
        }
    }
    let false_positives = dets
        .iter()
        .filter(|d| truth.iter().all(|t| d.rect.iou(*t) < 0.5))
        .count();
    FaceAttackReport {
        truth: truth.len(),
        detected,
        false_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
    use puppies_image::{Rgb, RgbImage};
    use puppies_jpeg::CoeffImage;
    use puppies_vision::face::{render_face, FaceGeometry};

    fn face_scene() -> (RgbImage, Rect) {
        let mut img = RgbImage::filled(160, 120, Rgb::new(80, 100, 130));
        let bbox = Rect::new(50, 25, 48, 60);
        render_face(
            &mut img,
            bbox,
            Rgb::new(226, 188, 152),
            &FaceGeometry::default(),
        );
        (img, bbox)
    }

    #[test]
    fn detects_clean_face() {
        let (img, bbox) = face_scene();
        let r = face_attack(&img.to_gray(), &[bbox]);
        assert_eq!(r.truth, 1);
        assert_eq!(r.detected, 1, "{r:?}");
    }

    #[test]
    fn perturbed_face_rarely_detected() {
        // §VI-B.3: face detection on protected images collapses to (near)
        // zero. With this toy Haar detector the perturbed ROI is
        // high-variance noise that attracts *spurious* detections, and a
        // spurious box can overlap the truth box at IoU >= 0.5 by chance,
        // so a single-draw `detected == 0` assertion is a coin flip on the
        // key stream. Measure the detection *rate* over several keys
        // instead: the clean scene is found every time, the perturbed one
        // must drop to the chance-overlap floor, and any residual "hit"
        // must be noise (accompanied by false positives), not a clean
        // re-detection of the face.
        let (img, bbox) = face_scene();
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
        let seeds = 0u8..6;
        let mut detections = 0;
        for seed in seeds.clone() {
            let key = OwnerKey::from_seed([seed; 32]);
            let protected = protect(&img, &[bbox], &key, &opts).unwrap();
            let perturbed = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
            let r = face_attack(&perturbed.to_gray(), &[bbox]);
            if r.detected > 0 {
                detections += 1;
                assert!(
                    r.false_positives > 0,
                    "seed {seed}: clean re-detection of a protected face: {r:?}"
                );
            }
        }
        let clean = face_attack(&img.to_gray(), &[bbox]);
        assert_eq!(clean.detected, 1, "precondition: clean scene detectable");
        assert!(
            detections <= seeds.len() / 3,
            "protected face detected under {detections}/{} keys",
            seeds.len()
        );
    }

    #[test]
    fn p3_public_part_not_detected_either() {
        let (img, bbox) = face_scene();
        let coeff = CoeffImage::from_rgb(&img, 75);
        let split = puppies_p3::P3Split::of(&coeff);
        let r = face_attack(&split.public.to_rgb().to_gray(), &[bbox]);
        assert_eq!(r.detected, 0, "{r:?}");
    }
}
