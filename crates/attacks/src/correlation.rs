//! The three signal-correlation attacks of §VI-B.5 (Fig. 23), which try
//! to undo the perturbation using spatial redundancy:
//!
//! 1. **Private-matrix inference from continuity** — assume perturbed and
//!    unperturbed areas share statistics: take the upper-left perturbed
//!    coefficient block, subtract the average unperturbed block, and use
//!    the difference as the guessed matrix.
//! 2. **Neighbour-correlation inpainting** — predict each encrypted pixel
//!    as the average of its nearest non-encrypted neighbours, spiralling
//!    from the ROI boundary inward (after Garnett et al.'s noise-removal
//!    framing the paper cites).
//! 3. **PCA reconstruction** — fit PCA to the unperturbed 8×8 patches and
//!    re-express each perturbed patch with the top components.
//!
//! All three fail against PuPPIeS (the paper's Fig. 23 and our
//! experiments agree); they are implemented honestly rather than as straw
//! men — each genuinely exploits the correlation it targets.

use puppies_core::matrix::{wrap_ac, wrap_dc};
use puppies_core::PublicParams;
use puppies_image::{GrayImage, Rect, RgbImage};
use puppies_jpeg::{Block, CoeffImage, BLOCK_SIZE};
use puppies_vision::pca::Pca;

/// Summary of one correlation-attack run (recognizability is scored by
/// `crate::user_study`).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationAttackReport {
    /// PSNR of the attack output against the original, in dB.
    pub psnr: f64,
    /// Recognizability proxy score in `[0, 1]`.
    pub recognizability: f64,
}

impl CorrelationAttackReport {
    /// Scores an attack output against the original.
    pub fn score(original: &GrayImage, recovered: &GrayImage) -> CorrelationAttackReport {
        CorrelationAttackReport {
            psnr: puppies_image::metrics::psnr_gray(original, recovered),
            recognizability: puppies_image::metrics::recognizability(original, recovered),
        }
    }
}

/// Attack 1: infer the private matrix from signal continuity and decrypt
/// every ROI block with the inferred matrix.
pub fn matrix_inference_attack(perturbed: &CoeffImage, params: &PublicParams) -> RgbImage {
    let mut out = perturbed.clone();
    for roi in &params.rois {
        for comp in out.components_mut().iter_mut() {
            let positions = comp.blocks_in_region(roi.rect);
            if positions.is_empty() {
                continue;
            }
            // Average unperturbed block (outside all ROIs).
            let mut avg = [0i64; 64];
            let mut n = 0i64;
            for by in 0..comp.blocks_h() {
                for bx in 0..comp.blocks_w() {
                    let px = bx * BLOCK_SIZE;
                    let py = by * BLOCK_SIZE;
                    let inside = params.rois.iter().any(|r| {
                        r.rect
                            .contains(px.min(comp.width() - 1), py.min(comp.height() - 1))
                    });
                    if !inside {
                        for (a, &v) in avg.iter_mut().zip(comp.block(bx, by).iter()) {
                            *a += v as i64;
                        }
                        n += 1;
                    }
                }
            }
            if n == 0 {
                continue;
            }
            // Inferred matrix = upper-left perturbed block − average block.
            let (bx0, by0) = positions[0];
            let first = *comp.block(bx0, by0);
            let mut inferred = [0i32; 64];
            for i in 0..64 {
                inferred[i] = first[i] - (avg[i] / n) as i32;
            }
            // Decrypt every ROI block with it.
            for &(bx, by) in &positions {
                let b: &mut Block = comp.block_mut(bx, by);
                b[0] = wrap_dc(b[0] - inferred[0]);
                for i in 1..64 {
                    b[i] = wrap_ac(b[i] - inferred[i]);
                }
            }
        }
    }
    out.to_rgb()
}

/// Attack 2: spiral inpainting. Every pixel inside a ROI is re-estimated
/// as the mean of its `neighbours` closest already-known pixels, working
/// from the ROI boundary inward.
pub fn inpainting_attack(perturbed: &RgbImage, rois: &[Rect], neighbours: usize) -> RgbImage {
    let mut out = perturbed.clone();
    let mut known = vec![true; (out.width() * out.height()) as usize];
    let idx = |x: u32, y: u32, w: u32| (y * w + x) as usize;
    for r in rois {
        let r = r.intersect(out.bounds());
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                known[idx(x, y, out.width())] = false;
            }
        }
    }
    // Peel rings from the outside in.
    let mut remaining: usize = known.iter().filter(|&&k| !k).count();
    while remaining > 0 {
        // Find all unknown pixels with at least one known 8-neighbour.
        let mut frontier = Vec::new();
        for y in 0..out.height() {
            for x in 0..out.width() {
                if known[idx(x, y, out.width())] {
                    continue;
                }
                let has_known = neighbours_of(x, y, out.width(), out.height())
                    .into_iter()
                    .any(|(nx, ny)| known[idx(nx, ny, out.width())]);
                if has_known {
                    frontier.push((x, y));
                }
            }
        }
        if frontier.is_empty() {
            break; // fully enclosed with no seed (cannot happen with ROIs smaller than the image)
        }
        // Average the known neighbours (up to `neighbours` of them).
        let snapshot = out.clone();
        for &(x, y) in &frontier {
            let mut acc = [0u32; 3];
            let mut n = 0u32;
            for (nx, ny) in neighbours_of(x, y, out.width(), out.height()) {
                if known[idx(nx, ny, out.width())] {
                    let p = snapshot.get(nx, ny);
                    acc[0] += p.r as u32;
                    acc[1] += p.g as u32;
                    acc[2] += p.b as u32;
                    n += 1;
                    if n as usize >= neighbours {
                        break;
                    }
                }
            }
            if let (Some(r), Some(g), Some(b)) = (
                acc[0].checked_div(n),
                acc[1].checked_div(n),
                acc[2].checked_div(n),
            ) {
                out.set(x, y, puppies_image::Rgb::new(r as u8, g as u8, b as u8));
            }
        }
        for &(x, y) in &frontier {
            known[idx(x, y, out.width())] = true;
        }
        remaining -= frontier.len();
    }
    out
}

fn neighbours_of(x: u32, y: u32, w: u32, h: u32) -> Vec<(u32, u32)> {
    let mut v = Vec::with_capacity(8);
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let nx = x as i64 + dx;
            let ny = y as i64 + dy;
            if nx >= 0 && ny >= 0 && (nx as u32) < w && (ny as u32) < h {
                v.push((nx as u32, ny as u32));
            }
        }
    }
    v
}

/// Attack 3: PCA reconstruction. Fits PCA to the unperturbed 8×8 patches
/// and projects every ROI patch onto the top `components`.
pub fn pca_attack(perturbed: &GrayImage, rois: &[Rect], components: usize) -> GrayImage {
    let mut clean_patches = Vec::new();
    let mut roi_patches = Vec::new();
    let bw = perturbed.width() / BLOCK_SIZE;
    let bh = perturbed.height() / BLOCK_SIZE;
    for by in 0..bh {
        for bx in 0..bw {
            let rect = Rect::new(bx * BLOCK_SIZE, by * BLOCK_SIZE, BLOCK_SIZE, BLOCK_SIZE);
            let patch: Vec<f64> = (0..64)
                .map(|i| perturbed.get(rect.x + (i as u32 % 8), rect.y + (i as u32 / 8)) as f64)
                .collect();
            if rois.iter().any(|r| r.overlaps(rect)) {
                roi_patches.push((rect, patch));
            } else {
                clean_patches.push(patch);
            }
        }
    }
    let mut out = perturbed.clone();
    if clean_patches.len() < 2 {
        return out;
    }
    let pca = Pca::fit(&clean_patches, components);
    for (rect, patch) in roi_patches {
        let rec = pca.reconstruct(&pca.project(&patch));
        for (i, v) in rec.iter().enumerate() {
            out.set(
                rect.x + (i as u32 % 8),
                rect.y + (i as u32 / 8),
                v.round().clamp(0.0, 255.0) as u8,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
    use puppies_image::font::draw_text;
    use puppies_image::Rgb;

    /// The paper's Fig. 23 setup: white background, "HELLO WORLD!" text,
    /// text area perturbed.
    fn hello_world() -> (RgbImage, Rect) {
        let mut img = RgbImage::filled(128, 64, Rgb::new(245, 245, 245));
        let r = draw_text(&mut img, "HELLO WORLD!", 8, 24, 1, Rgb::new(10, 10, 10));
        (img, r.inflate_clamped(4, Rect::new(0, 0, 128, 64)))
    }

    fn protected_hello() -> (RgbImage, RgbImage, PublicParams, Rect) {
        let (img, roi) = hello_world();
        let key = OwnerKey::from_seed([13u8; 32]);
        let opts = ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium);
        let protected = protect(&img, &[roi], &key, &opts).unwrap();
        let perturbed = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
        let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
        (reference, perturbed, protected.params, roi)
    }

    fn text_unreadable(original: &GrayImage, recovered: &GrayImage, roi: Rect) -> bool {
        // Inside the ROI the recovered text must not correlate with the
        // original strokes.
        let o = original
            .crop(roi.align_to(8, original.width(), original.height()))
            .unwrap();
        let r = recovered
            .crop(roi.align_to(8, original.width(), original.height()))
            .unwrap();
        puppies_image::metrics::recognizability(&o, &r) < 0.5
    }

    #[test]
    fn matrix_inference_fails() {
        let (reference, _, params, roi) = protected_hello();
        let perturbed_coeff = {
            let (img, _) = hello_world();
            let key = OwnerKey::from_seed([13u8; 32]);
            let opts = ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium);
            let protected = protect(&img, &[roi], &key, &opts).unwrap();
            CoeffImage::decode(&protected.bytes).unwrap()
        };
        let recovered = matrix_inference_attack(&perturbed_coeff, &params);
        assert!(
            text_unreadable(
                &reference.to_gray(),
                &recovered.to_gray(),
                params.rois[0].rect
            ),
            "matrix inference should not recover the text"
        );
    }

    #[test]
    fn inpainting_fails_to_recover_text() {
        let (reference, perturbed, params, _) = protected_hello();
        let rois: Vec<Rect> = params.rois.iter().map(|r| r.rect).collect();
        let recovered = inpainting_attack(&perturbed, &rois, 4);
        // Inpainting produces a smooth fill: pleasant, but the text is gone.
        assert!(
            text_unreadable(
                &reference.to_gray(),
                &recovered.to_gray(),
                params.rois[0].rect
            ),
            "inpainting should not recover the text"
        );
        // And it should at least have removed the wild perturbation noise
        // (smoothness sanity: variance inside ROI drops).
        let roi = params.rois[0].rect;
        let var = |img: &GrayImage| {
            let c = img.crop(roi).unwrap();
            let m = c.mean();
            c.pixels()
                .iter()
                .map(|&v| (v as f64 - m).powi(2))
                .sum::<f64>()
                / c.pixels().len() as f64
        };
        assert!(var(&recovered.to_gray()) < var(&perturbed.to_gray()));
    }

    #[test]
    fn pca_fails_to_recover_text() {
        let (reference, perturbed, params, _) = protected_hello();
        let rois: Vec<Rect> = params.rois.iter().map(|r| r.rect).collect();
        let recovered = pca_attack(&perturbed.to_gray(), &rois, 8);
        assert!(
            text_unreadable(&reference.to_gray(), &recovered, params.rois[0].rect),
            "PCA should not recover the text"
        );
    }

    #[test]
    fn inpainting_recovers_smooth_regions_well() {
        // Sanity that the attack is not a straw man: on a *smooth* hidden
        // region (no text), inpainting approximates the original closely.
        let img = RgbImage::from_fn(64, 64, |x, y| {
            let v = (80 + x + y) as u8;
            Rgb::new(v, v, v)
        });
        let roi = Rect::new(24, 24, 16, 16);
        let mut damaged = img.clone();
        for y in roi.y..roi.bottom() {
            for x in roi.x..roi.right() {
                damaged.set(x, y, Rgb::new(0, 255, 0));
            }
        }
        let recovered = inpainting_attack(&damaged, &[roi], 4);
        let psnr = puppies_image::metrics::psnr_rgb(&recovered, &img);
        assert!(psnr > 30.0, "inpainting too weak on smooth data: {psnr} dB");
    }

    #[test]
    fn report_scores() {
        let a = GrayImage::filled(32, 32, 100);
        let r = CorrelationAttackReport::score(&a, &a);
        assert_eq!(r.psnr, f64::INFINITY);
        assert!(r.recognizability > 0.9);
    }
}
