//! The eigenface recognition attack of §VI-B.4 (Fig. 22): enroll a
//! gallery of clean faces, then probe with perturbed (or P3-public)
//! versions and record the rank of the true identity.

use puppies_image::GrayImage;
use puppies_vision::eigenfaces::EigenfaceGallery;

/// Cumulative rank curve: `curve[k-1]` is the fraction of probes whose
/// true identity appeared within the top `k` ranks — Fig. 22's y-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct RankCurve {
    counts: Vec<usize>,
    probes: usize,
}

impl RankCurve {
    /// Builds a curve for ranks `1..=max_rank`.
    pub fn new(max_rank: usize) -> RankCurve {
        RankCurve {
            counts: vec![0; max_rank.max(1)],
            probes: 0,
        }
    }

    /// Records one probe whose true identity ranked at `rank` (1-based;
    /// `None` when the identity never appeared).
    pub fn record(&mut self, rank: Option<usize>) {
        self.probes += 1;
        if let Some(r) = rank {
            if r >= 1 {
                for k in (r - 1)..self.counts.len() {
                    self.counts[k] += 1;
                }
            }
        }
    }

    /// The cumulative ratio at rank `k` (1-based).
    ///
    /// # Panics
    /// Panics if `k` is 0 or beyond the curve length.
    pub fn ratio_at(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.counts.len(), "rank out of range");
        if self.probes == 0 {
            0.0
        } else {
            self.counts[k - 1] as f64 / self.probes as f64
        }
    }

    /// The full curve as `(rank, ratio)` pairs.
    pub fn points(&self) -> Vec<(usize, f64)> {
        (1..=self.counts.len())
            .map(|k| (k, self.ratio_at(k)))
            .collect()
    }

    /// Number of probes recorded.
    pub fn probes(&self) -> usize {
        self.probes
    }
}

/// Runs the recognition attack for one probe face against a trained
/// gallery; returns the rank of `label` (or `None`).
pub fn recognition_attack(
    gallery: &EigenfaceGallery,
    probe: &GrayImage,
    label: u32,
) -> Option<usize> {
    gallery.rank_of(probe, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
    use puppies_image::{Rect, Rgb, RgbImage};
    use puppies_jpeg::CoeffImage;
    use puppies_vision::face::{render_face, FaceGeometry};

    fn face_img(geom: &FaceGeometry, jitter: u32) -> RgbImage {
        let mut img = RgbImage::filled(64, 80, Rgb::new(70, 85, 105));
        render_face(
            &mut img,
            Rect::new(6 + jitter, 6 + jitter, 48, 60),
            Rgb::new(222, 185, 150),
            geom,
        );
        img
    }

    fn geometries() -> Vec<FaceGeometry> {
        (0..5)
            .map(|i| FaceGeometry {
                eye_spread: 0.16 + i as f32 * 0.02,
                eye_size: 0.055 + i as f32 * 0.007,
                mouth_width: 0.13 + i as f32 * 0.022,
                brow_tilt: i - 2,
            })
            .collect()
    }

    fn gallery() -> EigenfaceGallery {
        let mut faces = Vec::new();
        for (label, g) in geometries().iter().enumerate() {
            for j in 0..3 {
                faces.push((label as u32, face_img(g, j).to_gray()));
            }
        }
        EigenfaceGallery::train(&faces, 10)
    }

    #[test]
    fn clean_probes_rank_first() {
        let g = gallery();
        for (label, geom) in geometries().iter().enumerate() {
            let rank = recognition_attack(&g, &face_img(geom, 3).to_gray(), label as u32);
            assert!(rank.unwrap() <= 2, "label {label} rank {rank:?}");
        }
    }

    #[test]
    fn perturbed_probes_rank_poorly() {
        let g = gallery();
        let key = OwnerKey::from_seed([11u8; 32]);
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
        let mut top1_hits = 0;
        for (label, geom) in geometries().iter().enumerate() {
            let img = face_img(geom, 1);
            let protected = protect(&img, &[Rect::new(0, 0, 64, 80)], &key, &opts).unwrap();
            let perturbed = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
            if recognition_attack(&g, &perturbed.to_gray(), label as u32) == Some(1) {
                top1_hits += 1;
            }
        }
        // 5 identities: chance is 1/5; allow at most 2 lucky hits.
        assert!(
            top1_hits <= 2,
            "{top1_hits}/5 perturbed probes still rank 1"
        );
    }

    #[test]
    fn rank_curve_accumulates() {
        let mut c = RankCurve::new(5);
        c.record(Some(1));
        c.record(Some(3));
        c.record(None);
        assert_eq!(c.probes(), 3);
        assert!((c.ratio_at(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.ratio_at(3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.ratio_at(5) - 2.0 / 3.0).abs() < 1e-12);
        let pts = c.points();
        assert_eq!(pts.len(), 5);
        // Monotone non-decreasing.
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn rank_zero_rejected() {
        let c = RankCurve::new(3);
        let _ = c.ratio_at(0);
    }
}
