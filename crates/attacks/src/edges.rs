//! The edge-detection attack of §VI-B.2 (Fig. 21): run Canny on the
//! perturbed image and measure how much of the original edge structure
//! survives.

use puppies_image::GrayImage;
use puppies_vision::edges::{canny, edge_density, edge_match_ratio, CannyParams};

/// Result of one edge attack run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeAttackReport {
    /// Fraction of original edge pixels also present in the perturbed
    /// image's edge map (within 1 pixel).
    pub match_ratio: f64,
    /// Edge density of the original.
    pub original_density: f64,
    /// Edge density of the perturbed image (the paper's Fig. 21 plots the
    /// CDF of this quantity: "<5% detected pixels").
    pub perturbed_density: f64,
    /// Expected match ratio if the perturbed edge map were random noise of
    /// the same density (1-pixel tolerance ⇒ a 3×3 neighbourhood).
    pub chance_ratio: f64,
    /// Density-corrected structure survival in `[0, 1]`:
    /// `(match − chance) / (1 − chance)`, 0 when matches are explained by
    /// chance alone. This is the quantity that actually certifies the
    /// attack failed — perturbation noise makes Canny fire everywhere, so
    /// the raw match ratio is dominated by density.
    pub structure_score: f64,
}

/// Runs Canny on both images and reports the overlap of edge structure.
pub fn edge_attack(original: &GrayImage, perturbed: &GrayImage) -> EdgeAttackReport {
    let params = CannyParams::default();
    let eo = canny(original, &params);
    let ep = canny(perturbed, &params);
    let match_ratio = edge_match_ratio(&eo, &ep);
    let perturbed_density = edge_density(&ep);
    let chance_ratio = 1.0 - (1.0 - perturbed_density).powi(9);
    let structure_score = if chance_ratio < 1.0 {
        ((match_ratio - chance_ratio) / (1.0 - chance_ratio)).max(0.0)
    } else {
        0.0
    };
    EdgeAttackReport {
        match_ratio,
        original_density: edge_density(&eo),
        perturbed_density,
        chance_ratio,
        structure_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
    use puppies_image::{draw, Rect, Rgb, RgbImage};
    use puppies_jpeg::CoeffImage;

    fn scene() -> RgbImage {
        let mut img = RgbImage::filled(96, 96, Rgb::new(200, 200, 200));
        draw::fill_rect(&mut img, Rect::new(20, 20, 40, 40), Rgb::new(40, 40, 40));
        draw::fill_ellipse(&mut img, 70, 70, 16, 12, Rgb::new(90, 20, 20));
        img
    }

    #[test]
    fn self_attack_matches_fully() {
        let gray = scene().to_gray();
        let r = edge_attack(&gray, &gray);
        assert!((r.match_ratio - 1.0).abs() < 1e-9);
        assert!(r.structure_score > 0.9, "{r:?}");
    }

    #[test]
    fn perturbation_randomizes_edges() {
        // The key claim behind Fig. 21 is not that the perturbed image has
        // few edges (it is noisy, so Canny fires everywhere) but that the
        // *original* edges cannot be told apart: the match ratio against
        // the original is driven by chance, i.e. close to the perturbed
        // density-induced base rate.
        let img = scene();
        let key = OwnerKey::from_seed([8u8; 32]);
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::High);
        let protected = protect(&img, &[Rect::new(0, 0, 96, 96)], &key, &opts).unwrap();
        let perturbed = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
        let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
        let r = edge_attack(&reference.to_gray(), &perturbed.to_gray());
        // The rectangle/ellipse outlines must not be traceable beyond what
        // noise density explains.
        assert!(r.structure_score < 0.4, "edge structure survives: {r:?}");
    }
}
