//! Private matrices, range matrices and the coefficient ring arithmetic of
//! Lemma III.1.
//!
//! A *private matrix* `P` is an 8×8 matrix of secret values, vectorized to
//! 64 entries, shared between sender and receiver; it is the "security key"
//! of PuPPIeS (§III). A *range matrix* `Q'` (Algorithm 3) bounds the
//! per-frequency perturbation range so low frequencies — which carry most
//! visual information — get the widest randomization while high frequencies
//! stay cheap to entropy-code.
//!
//! # Ring arithmetic
//!
//! The paper wraps every coefficient into `[-1024, 1023]` mod 2048
//! (Lemma III.1). Baseline JPEG entropy coding, however, cannot represent
//! an AC value of `-1024` (see `puppies_jpeg::huffman`), so this
//! implementation uses the ring `[-1024, 1023]` (mod 2048) for DC and
//! `[-1023, 1023]` (mod 2047) for AC. Exact recovery holds for both — the
//! lemma's proof only needs the perturbation to be addition in a ring
//! covering the value range.

use puppies_jpeg::{AC_MODULUS, COEFF_MODULUS};
use rand::Rng;
/// Number of entries in a vectorized 8×8 matrix.
pub const MATRIX_LEN: usize = 64;

/// Wraps a DC coefficient into `[-1024, 1023]` (the mod-2048 ring).
#[inline]
pub fn wrap_dc(v: i32) -> i32 {
    (v + 1024).rem_euclid(COEFF_MODULUS) - 1024
}

/// Wraps an AC coefficient into `[-1023, 1023]` (the mod-2047 ring).
#[inline]
pub fn wrap_ac(v: i32) -> i32 {
    (v + 1023).rem_euclid(AC_MODULUS) - 1023
}

/// A vectorized 8×8 private matrix with entries normalized to `[0, 2047]`
/// (the form Lemma III.1 calls "normalized by `mR`").
///
/// Entries are indexed in the block's row-major (natural) coefficient
/// order; index 0 lines up with the DC coefficient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateMatrix {
    entries: Vec<i32>, // length 64, each in [0, 2047]
}

impl PrivateMatrix {
    /// Creates a matrix from explicit entries.
    ///
    /// # Panics
    /// Panics if there are not exactly 64 entries or any entry is outside
    /// `[0, 2047]`.
    pub fn new(entries: Vec<i32>) -> Self {
        assert_eq!(entries.len(), MATRIX_LEN, "private matrix needs 64 entries");
        assert!(
            entries.iter().all(|&e| (0..COEFF_MODULUS).contains(&e)),
            "entries must be in [0, 2047]"
        );
        PrivateMatrix { entries }
    }

    /// Draws a uniformly random matrix from `rng`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        PrivateMatrix {
            entries: (0..MATRIX_LEN)
                .map(|_| rng.gen_range(0..COEFF_MODULUS))
                .collect(),
        }
    }

    /// The entries, length 64, each in `[0, 2047]`.
    pub fn entries(&self) -> &[i32] {
        &self.entries
    }

    /// Entry `i`.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    #[inline]
    pub fn get(&self, i: usize) -> i32 {
        self.entries[i]
    }

    /// The effective AC perturbation for coefficient index `i` under range
    /// matrix `q`: `P'[i] mod Q'[i]`, as in Algorithm 1 line 6.
    #[inline]
    pub fn ac_perturbation(&self, i: usize, q: &RangeMatrix) -> i32 {
        let range = q.get(i) as i32;
        if range <= 1 {
            0
        } else {
            self.entries[i] % range.min(AC_MODULUS)
        }
    }
}

/// The privacy range matrix `Q'` produced by Algorithm 3.
///
/// `Q'[i]` is the (exclusive) range of the random perturbation applied to
/// coefficient `i`; `Q'[i] == 1` means the coefficient is left untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeMatrix {
    ranges: Vec<u16>, // length 64
}

impl RangeMatrix {
    /// A flat range matrix: the first `k` zigzag AC slots (and slot 0) get
    /// `range`, the rest 1. Not in the paper — this is the
    /// "transform-friendly" profile used when the PSP applies pixel-domain
    /// transformations, where bounded perturbation keeps clamping losses
    /// small (see `puppies_core::shadow`).
    pub fn flat(range: u16, k: u8) -> Self {
        let mut ranges = vec![1u16; MATRIX_LEN];
        let range = range.clamp(1, 2048);
        for (i, slot) in ranges.iter_mut().enumerate() {
            if i as u32 <= k as u32 {
                *slot = range;
            }
        }
        RangeMatrix { ranges }
    }

    /// Algorithm 3: generates `Q'` from the minimum range `m_r` and the
    /// number of perturbed coefficients `k`.
    ///
    /// Literal transcription of the paper's pseudocode:
    ///
    /// ```text
    /// r ← 2048
    /// for i ← 0 to 63:
    ///     Q'[i] ← r
    ///     if r > mR: r ← r / 2
    ///     if i ≥ K:  r ← 1
    /// ```
    ///
    /// Indices are in *zigzag* frequency order in spirit (lower `i` = lower
    /// frequency); this implementation stores `Q'` in zigzag order and maps
    /// to natural order via [`RangeMatrix::get`].
    pub fn generate(m_r: u16, k: u8) -> Self {
        let mut ranges = vec![1u16; MATRIX_LEN];
        let mut r: u32 = 2048;
        for (i, slot) in ranges.iter_mut().enumerate() {
            *slot = r.min(2048) as u16;
            if r > m_r as u32 {
                r /= 2;
            }
            if i as u32 >= k as u32 {
                r = 1;
            }
        }
        RangeMatrix { ranges }
    }

    /// Range for *zigzag* coefficient index `i`.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    #[inline]
    pub fn get_zigzag(&self, i: usize) -> u16 {
        self.ranges[i]
    }

    /// Range for *natural-order* (row-major) coefficient index `i`, the
    /// order [`puppies_jpeg::Block`] uses.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    #[inline]
    pub fn get(&self, i: usize) -> u16 {
        self.ranges[puppies_jpeg::zigzag::UNZIGZAG[i]]
    }

    /// All ranges in zigzag order.
    pub fn ranges_zigzag(&self) -> &[u16] {
        &self.ranges
    }

    /// Number of AC coefficients actually perturbed (`Q'[i] > 1` for
    /// zigzag `i ≥ 1`).
    pub fn perturbed_ac_count(&self) -> usize {
        self.ranges[1..].iter().filter(|&&r| r > 1).count()
    }

    /// Bits of secret entropy the AC part of a private matrix carries
    /// under this range matrix: `Σ log2(Q'[i])` over perturbed AC entries
    /// (§VI-A's accounting, computed from the algorithm rather than quoted).
    pub fn ac_secure_bits(&self) -> u32 {
        self.ranges[1..]
            .iter()
            .filter(|&&r| r > 1)
            .map(|&r| 32 - (r as u32 - 1).leading_zeros()) // ceil(log2 r) for powers of two
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wrap_dc_covers_ring() {
        assert_eq!(wrap_dc(0), 0);
        assert_eq!(wrap_dc(1023), 1023);
        assert_eq!(wrap_dc(1024), -1024);
        assert_eq!(wrap_dc(-1024), -1024);
        assert_eq!(wrap_dc(-1025), 1023);
        assert_eq!(wrap_dc(2048), 0);
        assert_eq!(wrap_dc(-2048), 0);
    }

    #[test]
    fn wrap_ac_covers_ring() {
        assert_eq!(wrap_ac(0), 0);
        assert_eq!(wrap_ac(1023), 1023);
        assert_eq!(wrap_ac(1024), -1023);
        assert_eq!(wrap_ac(-1023), -1023);
        assert_eq!(wrap_ac(-1024), 1023);
        assert_eq!(wrap_ac(2047), 0);
    }

    #[test]
    fn lemma_iii_1_exact_recovery_dc() {
        // b = wrap(e - p) for every (b, p) pair: the lemma, exhaustively on
        // a grid.
        for b in (-1024..=1023).step_by(17) {
            for p in (0..2048).step_by(23) {
                let e = wrap_dc(b + p);
                assert_eq!(wrap_dc(e - p), b, "b={b} p={p}");
            }
        }
    }

    #[test]
    fn lemma_iii_1_exact_recovery_ac() {
        for b in (-1023..=1023).step_by(13) {
            for p in (0..2047).step_by(29) {
                let e = wrap_ac(b + p);
                assert_eq!(wrap_ac(e - p), b, "b={b} p={p}");
            }
        }
    }

    #[test]
    fn random_matrix_entries_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = PrivateMatrix::random(&mut rng);
        assert_eq!(m.entries().len(), 64);
        assert!(m.entries().iter().all(|&e| (0..2048).contains(&e)));
        // Two draws differ.
        let m2 = PrivateMatrix::random(&mut rng);
        assert_ne!(m, m2);
    }

    #[test]
    #[should_panic(expected = "64 entries")]
    fn wrong_length_rejected() {
        let _ = PrivateMatrix::new(vec![0; 63]);
    }

    #[test]
    fn algorithm3_low_privacy() {
        // mR = 1, K = 1 (Table IV "low"): only the DC slot gets a wide
        // range; every AC slot collapses to 1 after the first index.
        let q = RangeMatrix::generate(1, 1);
        assert_eq!(q.get_zigzag(0), 2048);
        // i = 1: r was halved once (1024) but i >= K reset it to 1 at the
        // end of iteration 1, so slots 2.. are all 1.
        assert_eq!(q.get_zigzag(1), 1024);
        for i in 2..64 {
            assert_eq!(q.get_zigzag(i), 1, "index {i}");
        }
    }

    #[test]
    fn algorithm3_medium_privacy() {
        // mR = 32, K = 8 (Table IV "medium").
        let q = RangeMatrix::generate(32, 8);
        let expect_prefix = [2048u16, 1024, 512, 256, 128, 64, 32, 32, 32];
        for (i, &want) in expect_prefix.iter().enumerate() {
            assert_eq!(q.get_zigzag(i), want, "index {i}");
        }
        for i in 9..64 {
            assert_eq!(q.get_zigzag(i), 1, "index {i}");
        }
        assert_eq!(q.perturbed_ac_count(), 8);
    }

    #[test]
    fn algorithm3_high_privacy() {
        // mR = 2048, K = 64 (Table IV "high"): everything full range.
        let q = RangeMatrix::generate(2048, 64);
        for i in 0..64 {
            assert_eq!(q.get_zigzag(i), 2048, "index {i}");
        }
        assert_eq!(q.perturbed_ac_count(), 63);
        assert_eq!(q.ac_secure_bits(), 63 * 11);
    }

    #[test]
    fn natural_order_lookup_matches_zigzag() {
        let q = RangeMatrix::generate(32, 8);
        for zz in 0..64 {
            let nat = puppies_jpeg::zigzag::ZIGZAG[zz];
            assert_eq!(q.get(nat), q.get_zigzag(zz));
        }
    }

    #[test]
    fn ac_perturbation_respects_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = PrivateMatrix::random(&mut rng);
        let q = RangeMatrix::generate(32, 8);
        for i in 1..64 {
            let v = p.ac_perturbation(i, &q);
            let range = q.get(i) as i32;
            if range <= 1 {
                assert_eq!(v, 0, "index {i} should be untouched");
            } else {
                assert!((0..range).contains(&v), "index {i}: {v} vs range {range}");
            }
        }
    }

    #[test]
    fn ac_secure_bits_monotone_in_level() {
        let low = RangeMatrix::generate(1, 1).ac_secure_bits();
        let med = RangeMatrix::generate(32, 8).ac_secure_bits();
        let high = RangeMatrix::generate(2048, 64).ac_secure_bits();
        assert!(low < med && med < high, "{low} {med} {high}");
    }
}
