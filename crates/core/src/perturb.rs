//! The four perturbation schemes of §IV-B and their exact inverses.
//!
//! | Scheme | Paper name | DC treatment | AC treatment |
//! |---|---|---|---|
//! | [`Scheme::Naive`] | PuPPIeS-N | one shared value `p'₀` | full-range `p'ᵢ` |
//! | [`Scheme::Base`] | PuPPIeS-B | rotating `p'₍ₖ mod 64₎` | full-range `p'ᵢ` |
//! | [`Scheme::Compression`] | PuPPIeS-C (Alg. 1) | rotating | range-limited `p'ᵢ mod Q'ᵢ` |
//! | [`Scheme::Zero`] | PuPPIeS-Z (Alg. 2) | rotating | range-limited, zeros skipped, new zeros recorded in `ZInd` |
//!
//! All additions wrap in the coefficient ring (Lemma III.1 /
//! [`crate::matrix::wrap_dc`], [`crate::matrix::wrap_ac`]), so recovery is
//! bit-exact given the private matrices.
//!
//! # Extensions beyond the paper
//!
//! - **Wrap index (`WInd`).** The sender records which coefficients
//!   wrapped around the ring during perturbation. Scenario-1 recovery
//!   never needs this (the modular inverse handles wraps), but the
//!   shadow-ROI reconstruction after *pixel-domain* PSP transformations
//!   (§IV-C.1) implicitly assumes perturbation is linear — which wraps
//!   break. With `WInd` the receiver builds a shadow equal to the exact
//!   additive delta `e − b`, restoring the linearity the paper's argument
//!   requires. Like `ZInd`, `WInd` is public; an entry reveals only that
//!   a coefficient was near the ring boundary for the (secret) matrix.
//! - **Bounded DC range.** [`PerturbProfile::dc_range`] limits DC
//!   perturbation to `[0, dc_range)`. The default 2048 matches the paper;
//!   the transform-friendly profile uses a small range so that perturbed
//!   pixels rarely clamp at the PSP, keeping shadow reconstruction
//!   near-exact (see `crate::shadow` for the full fidelity discussion).

use crate::keys::{KeyGrant, MatrixId, MatrixKind};
use crate::matrix::{wrap_dc, PrivateMatrix, RangeMatrix, MATRIX_LEN};
use crate::privacy::PrivacyLevel;
use crate::{PuppiesError, Result};
use puppies_image::Rect;
use puppies_jpeg::{CoeffImage, AC_MAX, AC_MIN, AC_MODULUS, COEFF_MAX, COEFF_MODULUS};
/// Which PuPPIeS perturbation variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// PuPPIeS-N: every block's DC secured by the same single value. Kept
    /// for the ablation — §IV-B.1 shows it falls to brute force on DC.
    Naive,
    /// PuPPIeS-B: DC rotated through the private vector; AC full range.
    /// Robust but ~10× file-size blow-up (Table II).
    Base,
    /// PuPPIeS-C (Algorithm 1): range-limited AC perturbation so optimized
    /// Huffman tables stay efficient.
    Compression,
    /// PuPPIeS-Z (Algorithm 2): like C but skips already-zero AC
    /// coefficients, recording coefficients that *become* zero in `ZInd`.
    /// The smallest perturbed images; the default.
    #[default]
    Zero,
}

impl Scheme {
    /// Short name used in experiment tables (matches the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Naive => "PuPPIeS-N",
            Scheme::Base => "PuPPIeS-B",
            Scheme::Compression => "PuPPIeS-C",
            Scheme::Zero => "PuPPIeS-Z",
        }
    }
}

/// How the AC perturbation ranges are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeSpec {
    /// The paper's Algorithm 3 with parameters `(mR, K)`.
    Algorithm3 {
        /// Minimum range for the highest perturbed frequency.
        m_r: u16,
        /// Number of perturbed coefficients.
        k: u8,
    },
    /// Flat ranges (transform-friendly extension; see module docs).
    Flat {
        /// Range applied to the first `k` zigzag slots.
        range: u16,
        /// Number of perturbed coefficients.
        k: u8,
    },
}

impl RangeSpec {
    /// Materializes the range matrix.
    pub fn range_matrix(self) -> RangeMatrix {
        match self {
            RangeSpec::Algorithm3 { m_r, k } => RangeMatrix::generate(m_r, k),
            RangeSpec::Flat { range, k } => RangeMatrix::flat(range, k),
        }
    }

    /// The `(mR, K)`-style parameters for display.
    pub fn parameters(self) -> (u16, u8) {
        match self {
            RangeSpec::Algorithm3 { m_r, k } => (m_r, k),
            RangeSpec::Flat { range, k } => (range, k),
        }
    }
}

impl From<PrivacyLevel> for RangeSpec {
    fn from(level: PrivacyLevel) -> Self {
        let (m_r, k) = level.parameters();
        RangeSpec::Algorithm3 { m_r, k }
    }
}

/// Everything that determines how a region is perturbed (besides the
/// secret matrices): scheme, AC ranges and DC range. All fields are
/// public parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerturbProfile {
    /// Perturbation variant.
    pub scheme: Scheme,
    /// AC range generation.
    pub range: RangeSpec,
    /// Exclusive bound on DC perturbation values (2..=2048; 2048 is the
    /// paper's full-range behaviour).
    pub dc_range: u16,
}

impl PerturbProfile {
    /// The paper's configuration: `scheme` at privacy `level`, full-range
    /// DC.
    pub fn paper(scheme: Scheme, level: PrivacyLevel) -> Self {
        PerturbProfile {
            scheme,
            range: level.into(),
            dc_range: 2048,
        }
    }

    /// The transform-friendly profile: bounded perturbation so PSP-side
    /// pixel transformations (scaling, filtering) recover well via shadow
    /// subtraction — perturbed pixels stay mostly inside the 8-bit gamut,
    /// so the PSP's decode clamps almost nothing. Still clears NIST's
    /// 256-bit bar: 64·log₂16 (DC) + 6·log₂16 (AC) = 280 secure bits.
    pub fn transform_friendly() -> Self {
        PerturbProfile {
            scheme: Scheme::Compression,
            range: RangeSpec::Flat { range: 16, k: 6 },
            dc_range: 16,
        }
    }

    /// The materialized AC range matrix.
    pub fn range_matrix(&self) -> RangeMatrix {
        self.range.range_matrix()
    }
}

impl Default for PerturbProfile {
    fn default() -> Self {
        PerturbProfile::paper(Scheme::Zero, PrivacyLevel::Medium)
    }
}

/// One entry of the new-zero index `ZInd` or the wrap index `WInd`
/// (§IV-B.4: 2 bits layer + 16 bits block index + 6 bits entry index = 28
/// bits as stored in public parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZeroEntry {
    /// Color component (0 = Y, 1 = Cb, 2 = Cr).
    pub component: u8,
    /// Sequence index `k` of the block within the ROI (row-major).
    pub block: u32,
    /// Natural-order coefficient index within the block (0 for DC in
    /// `WInd`; 1..=63 in `ZInd`).
    pub coeff: u8,
}

/// A sparse per-coefficient index: `ZInd` (new zeros) or `WInd` (ring
/// wraps).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZeroIndex {
    entries: Vec<ZeroEntry>,
}

impl ZeroIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index from explicit entries (wire decoding).
    pub fn from_entries(entries: Vec<ZeroEntry>) -> Self {
        ZeroIndex { entries }
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[ZeroEntry] {
        &self.entries
    }

    /// Appends an entry.
    pub fn push(&mut self, e: ZeroEntry) {
        self.entries.push(e);
    }

    /// Appends every entry of `other`, preserving order.
    pub fn extend_from(&mut self, other: &ZeroIndex) {
        self.entries.extend_from_slice(&other.entries);
    }

    /// Whether `(component, block, coeff)` is recorded.
    pub fn contains(&self, component: u8, block: u32, coeff: u8) -> bool {
        self.entries
            .iter()
            .any(|e| e.component == component && e.block == block && e.coeff == coeff)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Size in bits when stored as public parameters (28 bits per entry,
    /// §IV-B.4).
    pub fn encoded_bits(&self) -> usize {
        self.entries.len() * 28
    }

    /// A hash set of `(component, block, coeff)` for O(1) recovery lookups.
    pub fn to_set(&self) -> std::collections::HashSet<(u8, u32, u8)> {
        self.entries
            .iter()
            .map(|e| (e.component, e.block, e.coeff))
            .collect()
    }
}

/// Everything the sender learns while perturbing one ROI: the new-zero
/// index and the wrap index. Both are public parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerturbRecord {
    /// New zeros (PuPPIeS-Z bookkeeping).
    pub zind: ZeroIndex,
    /// Ring wraps (shadow-ROI bookkeeping; extension, see module docs).
    pub wind: ZeroIndex,
}

/// The private matrices used for one ROI of one component.
#[derive(Debug, Clone)]
pub struct RoiKeys {
    /// DC matrix (rotating across blocks).
    pub dc: PrivateMatrix,
    /// AC matrix (entry `i` perturbs coefficient `i`).
    pub ac: PrivateMatrix,
}

impl RoiKeys {
    /// Looks up both matrices for `(image, roi, component)` in a grant.
    ///
    /// # Errors
    /// Returns [`PuppiesError::MissingKey`] if either matrix is absent.
    pub fn from_grant(grant: &KeyGrant, image: u64, roi: u16, component: u8) -> Result<RoiKeys> {
        let dc_id = MatrixId {
            image,
            roi,
            kind: MatrixKind::Dc,
            component,
        };
        let ac_id = MatrixId {
            image,
            roi,
            kind: MatrixKind::Ac,
            component,
        };
        let dc = grant
            .matrix(dc_id)
            .ok_or(PuppiesError::MissingKey { matrix: dc_id })?;
        let ac = grant
            .matrix(ac_id)
            .ok_or(PuppiesError::MissingKey { matrix: ac_id })?;
        Ok(RoiKeys { dc, ac })
    }
}

/// The DC perturbation value for block sequence index `k`.
#[inline]
pub fn dc_perturbation(profile: &PerturbProfile, keys: &RoiKeys, k: u32) -> i32 {
    let raw = match profile.scheme {
        Scheme::Naive => keys.dc.get(0),
        _ => keys.dc.get((k % 64) as usize),
    };
    let range = (profile.dc_range.clamp(1, 2048)) as i32;
    raw % range
}

/// The AC perturbation value for natural-order coefficient `i` (ignoring
/// Zero's skip rule, which depends on the data).
#[inline]
pub fn ac_perturbation(profile: &PerturbProfile, keys: &RoiKeys, q: &RangeMatrix, i: usize) -> i32 {
    match profile.scheme {
        Scheme::Naive | Scheme::Base => keys.ac.get(i) % AC_MODULUS,
        Scheme::Compression | Scheme::Zero => keys.ac.ac_perturbation(i, q),
    }
}

/// The per-block AC perturbation vector in natural order. It depends only
/// on `(profile, keys, q)` — not on block data — so it is hoisted out of the
/// block loop and applied with integer lanes. Slot 0 is zero so the DC lane
/// passes through the vector pass untouched (DC wraps mod 2048, handled
/// scalar per block).
fn ac_perturbation_vector(
    profile: &PerturbProfile,
    keys: &RoiKeys,
    q: &RangeMatrix,
) -> [i32; MATRIX_LEN] {
    let mut pvec = [0i32; MATRIX_LEN];
    for (i, slot) in pvec.iter_mut().enumerate().skip(1) {
        *slot = ac_perturbation(profile, keys, q, i);
    }
    pvec
}

/// AC lane pass of [`perturb_component`] over one block.
///
/// Per lane, exactly the scalar loop: `active` lanes (nonzero perturbation,
/// and under `skip_zeros` also a nonzero coefficient) get
/// `wrap_ac(coeff + p)`; others pass through. Since `p` is in `[0, 2046]`
/// and coefficients in `[-1023, 1023]`, the wrap is a single masked
/// subtract of `AC_MODULUS`, and its mask is exactly the ring-overflow
/// (`WInd`) condition. `wind`/`zind` get one bit per natural coefficient
/// index needing a [`ZeroEntry`]. (`inline(always)`: must fuse into the
/// `#[target_feature]` dispatch wrapper or the intrinsics inside cannot
/// be inlined.)
#[inline(always)]
unsafe fn perturb_block_kernel<S: puppies_image::simd::Simd8>(
    block: &mut [i32; MATRIX_LEN],
    pvec: &[i32; MATRIX_LEN],
    skip_zeros: bool,
    wind: &mut u64,
    zind: &mut u64,
) {
    unsafe {
        let groups = &mut *(block.as_mut_ptr() as *mut [[i32; 8]; 8]);
        let pgroups = &*(pvec.as_ptr() as *const [[i32; 8]; 8]);
        let zero = S::i_splat(0);
        let ones = S::i_splat(-1);
        let ac_max = S::i_splat(AC_MAX);
        let ac_mod = S::i_splat(AC_MODULUS);
        let (mut wbits, mut zbits) = (0u64, 0u64);
        for g in 0..8 {
            let coeff = S::i_load(&groups[g]);
            let p = S::i_load(&pgroups[g]);
            let mut active = S::i_andnot(S::i_cmp_eq(p, zero), ones);
            if skip_zeros {
                active = S::i_andnot(S::i_cmp_eq(coeff, zero), active);
            }
            let raw = S::i_add(coeff, p);
            let over = S::i_cmp_gt(raw, ac_max);
            let wrapped = S::i_sub(raw, S::i_and(over, ac_mod));
            let out = S::i_or(S::i_and(active, wrapped), S::i_andnot(active, coeff));
            S::i_store(out, &mut groups[g]);
            wbits |= u64::from(S::i_nonzero_mask(S::i_and(active, over))) << (8 * g);
            if skip_zeros {
                let zeroed = S::i_and(active, S::i_cmp_eq(wrapped, zero));
                zbits |= u64::from(S::i_nonzero_mask(zeroed)) << (8 * g);
            }
        }
        *wind = wbits;
        *zind = zbits;
    }
}

/// AC lane pass of [`recover_component`] over one block: the exact inverse
/// of [`perturb_block_kernel`]. `force` is an all-ones lane mask of `ZInd`
/// coefficients (wrapped to zero during perturbation, so they must be
/// un-wrapped even though they read as zero now).
#[inline(always)]
unsafe fn recover_block_kernel<S: puppies_image::simd::Simd8>(
    block: &mut [i32; MATRIX_LEN],
    pvec: &[i32; MATRIX_LEN],
    force: &[i32; MATRIX_LEN],
    skip_zeros: bool,
) {
    unsafe {
        let groups = &mut *(block.as_mut_ptr() as *mut [[i32; 8]; 8]);
        let pgroups = &*(pvec.as_ptr() as *const [[i32; 8]; 8]);
        let fgroups = &*(force.as_ptr() as *const [[i32; 8]; 8]);
        let zero = S::i_splat(0);
        let ones = S::i_splat(-1);
        let ac_min = S::i_splat(AC_MIN);
        let ac_mod = S::i_splat(AC_MODULUS);
        for g in 0..8 {
            let coeff = S::i_load(&groups[g]);
            let p = S::i_load(&pgroups[g]);
            let mut active = S::i_andnot(S::i_cmp_eq(p, zero), ones);
            if skip_zeros {
                let touched = S::i_or(
                    S::i_andnot(S::i_cmp_eq(coeff, zero), ones),
                    S::i_load(&fgroups[g]),
                );
                active = S::i_and(active, touched);
            }
            let raw = S::i_sub(coeff, p);
            let under = S::i_cmp_gt(ac_min, raw);
            let wrapped = S::i_add(raw, S::i_and(under, ac_mod));
            let out = S::i_or(S::i_and(active, wrapped), S::i_andnot(active, coeff));
            S::i_store(out, &mut groups[g]);
        }
    }
}

puppies_image::simd_dispatch! {
    fn perturb_block_lanes / perturb_block_lanes_with(block: &mut [i32; MATRIX_LEN], pvec: &[i32; MATRIX_LEN], skip_zeros: bool, wind: &mut u64, zind: &mut u64) = perturb_block_kernel;
    fn recover_block_lanes / recover_block_lanes_with(block: &mut [i32; MATRIX_LEN], pvec: &[i32; MATRIX_LEN], force: &[i32; MATRIX_LEN], skip_zeros: bool) = recover_block_kernel;
}

/// Perturbs one ROI of one component in place. `rect` must be
/// block-aligned; `k_offset` shifts the block sequence index (0 for whole
/// ROIs — nonzero is used by transformed-recovery code paths).
pub fn perturb_component(
    comp: &mut puppies_jpeg::Component,
    component_index: u8,
    rect: Rect,
    keys: &RoiKeys,
    profile: &PerturbProfile,
    q: &RangeMatrix,
    record: &mut PerturbRecord,
) {
    let positions = comp.blocks_in_region(rect);
    let pvec = ac_perturbation_vector(profile, keys, q);
    let skip_zeros = profile.scheme == Scheme::Zero;
    for (k, &(bx, by)) in positions.iter().enumerate() {
        let k32 = k as u32;
        let block = comp.block_mut(bx, by);
        let pdc = dc_perturbation(profile, keys, k32);
        let raw = block[0] + pdc;
        if raw > COEFF_MAX {
            record.wind.push(ZeroEntry {
                component: component_index,
                block: k32,
                coeff: 0,
            });
        }
        block[0] = wrap_dc(raw);
        let (mut wbits, mut zbits) = (0u64, 0u64);
        perturb_block_lanes(block, &pvec, skip_zeros, &mut wbits, &mut zbits);
        // Scan the lane masks lowest-bit-first so entries land in the same
        // coefficient order the scalar loop produced.
        while wbits != 0 {
            record.wind.push(ZeroEntry {
                component: component_index,
                block: k32,
                coeff: wbits.trailing_zeros() as u8,
            });
            wbits &= wbits - 1;
        }
        while zbits != 0 {
            record.zind.push(ZeroEntry {
                component: component_index,
                block: k32,
                coeff: zbits.trailing_zeros() as u8,
            });
            zbits &= zbits - 1;
        }
    }
}

/// Exactly inverts [`perturb_component`] given the same keys and `ZInd`.
pub fn recover_component(
    comp: &mut puppies_jpeg::Component,
    component_index: u8,
    rect: Rect,
    keys: &RoiKeys,
    profile: &PerturbProfile,
    q: &RangeMatrix,
    zind: &ZeroIndex,
) {
    let positions = comp.blocks_in_region(rect);
    let pvec = ac_perturbation_vector(profile, keys, q);
    let skip_zeros = profile.scheme == Scheme::Zero;
    // Per-block ZInd bitmasks for this component (an untouched zero without
    // a ZInd bit was an original zero and must be left alone).
    let mut zmap = std::collections::HashMap::new();
    if skip_zeros {
        for e in zind.entries() {
            if e.component == component_index {
                *zmap.entry(e.block).or_insert(0u64) |= 1 << e.coeff;
            }
        }
    }
    let no_force = [0i32; MATRIX_LEN];
    for (k, &(bx, by)) in positions.iter().enumerate() {
        let k32 = k as u32;
        let block = comp.block_mut(bx, by);
        block[0] = wrap_dc(block[0] - dc_perturbation(profile, keys, k32));
        match zmap.get(&k32) {
            Some(&bits) => {
                let mut force = [0i32; MATRIX_LEN];
                let mut b = bits;
                while b != 0 {
                    force[b.trailing_zeros() as usize] = -1;
                    b &= b - 1;
                }
                recover_block_lanes(block, &pvec, &force, skip_zeros);
            }
            None => recover_block_lanes(block, &pvec, &no_force, skip_zeros),
        }
    }
}

/// Perturbs one ROI across every component of `coeff` in place.
///
/// `keys` holds one [`RoiKeys`] per component, in component order.
///
/// # Errors
/// Returns [`PuppiesError::BadParams`] if the key count does not match the
/// component count, or [`PuppiesError::BadRoi`] for an unaligned/out-of-
/// image rect.
pub fn perturb_roi(
    coeff: &mut CoeffImage,
    rect: Rect,
    keys: &[RoiKeys],
    profile: &PerturbProfile,
) -> Result<PerturbRecord> {
    let mut records = perturb_rois(coeff, &[rect], &[keys.to_vec()], profile)?;
    Ok(records.pop().expect("one record per roi"))
}

/// Perturbs several disjoint ROIs across every component of `coeff`,
/// fanning one job per component onto the current worker pool (components
/// are the unit of independent mutable state). Every ROI is validated
/// before any coefficient is touched, so a bad rect leaves `coeff`
/// unchanged — unlike a roi-by-roi loop, which would abort midway.
///
/// `keys[r]` holds one [`RoiKeys`] per component for ROI `r`. The returned
/// records are per-ROI, with entries in exactly the order the serial
/// roi-major/component-minor loop produces (each component job walks the
/// ROIs in order, so its entries are the serial loop's per-component
/// subsequence; merging per-component records in component order restores
/// the serial interleaving).
///
/// # Errors
/// Returns [`PuppiesError::BadParams`] if a key count does not match the
/// component count, or [`PuppiesError::BadRoi`] for an unaligned/out-of-
/// image rect.
pub fn perturb_rois(
    coeff: &mut CoeffImage,
    rects: &[Rect],
    keys: &[Vec<RoiKeys>],
    profile: &PerturbProfile,
) -> Result<Vec<PerturbRecord>> {
    if keys.len() != rects.len() {
        return Err(PuppiesError::BadParams(format!(
            "{} key sets for {} rois",
            keys.len(),
            rects.len()
        )));
    }
    for (&rect, ks) in rects.iter().zip(keys) {
        validate_roi(coeff, rect, ks.len())?;
    }
    let _span = puppies_obs::span("core.perturb_rois", "core");
    let ncomp = coeff.components().len();
    let q = profile.range_matrix();
    let mut per_comp: Vec<Vec<PerturbRecord>> = (0..ncomp)
        .map(|_| vec![PerturbRecord::default(); rects.len()])
        .collect();
    {
        let q = &q;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = coeff
            .components_mut()
            .iter_mut()
            .zip(per_comp.iter_mut())
            .enumerate()
            .map(|(ci, (comp, recs))| {
                Box::new(move || {
                    for ((&rect, ks), rec) in rects.iter().zip(keys).zip(recs.iter_mut()) {
                        let _roi = puppies_obs::span("core.perturb_roi", "core");
                        perturb_component(comp, ci as u8, rect, &ks[ci], profile, q, rec);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        puppies_parallel::current().run(jobs);
    }
    let mut out = vec![PerturbRecord::default(); rects.len()];
    for recs in per_comp {
        for (dst, src) in out.iter_mut().zip(&recs) {
            dst.zind.extend_from(&src.zind);
            dst.wind.extend_from(&src.wind);
        }
    }
    Ok(out)
}

/// Exactly inverts [`perturb_roi`].
///
/// # Errors
/// Same validation as [`perturb_roi`].
pub fn recover_roi(
    coeff: &mut CoeffImage,
    rect: Rect,
    keys: &[RoiKeys],
    profile: &PerturbProfile,
    zind: &ZeroIndex,
) -> Result<()> {
    recover_rois(coeff, &[(rect, profile, zind)], &[keys.to_vec()])
}

/// Exactly inverts [`perturb_rois`] over several ROIs, each with its own
/// profile and `ZInd` (as recorded in its public [`crate::params::RoiParams`]),
/// fanning one job per component like the forward direction.
///
/// # Errors
/// Same validation as [`perturb_rois`].
pub fn recover_rois(
    coeff: &mut CoeffImage,
    rois: &[(Rect, &PerturbProfile, &ZeroIndex)],
    keys: &[Vec<RoiKeys>],
) -> Result<()> {
    if keys.len() != rois.len() {
        return Err(PuppiesError::BadParams(format!(
            "{} key sets for {} rois",
            keys.len(),
            rois.len()
        )));
    }
    for (&(rect, _, _), ks) in rois.iter().zip(keys) {
        validate_roi(coeff, rect, ks.len())?;
    }
    let _span = puppies_obs::span("core.recover_rois", "core");
    let qs: Vec<RangeMatrix> = rois.iter().map(|(_, p, _)| p.range_matrix()).collect();
    {
        let qs = &qs;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = coeff
            .components_mut()
            .iter_mut()
            .enumerate()
            .map(|(ci, comp)| {
                Box::new(move || {
                    for ((&(rect, profile, zind), ks), q) in rois.iter().zip(keys).zip(qs) {
                        let _roi = puppies_obs::span("core.recover_roi", "core");
                        recover_component(comp, ci as u8, rect, &ks[ci], profile, q, zind);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        puppies_parallel::current().run(jobs);
    }
    Ok(())
}

fn validate_roi(coeff: &CoeffImage, rect: Rect, nkeys: usize) -> Result<()> {
    if nkeys != coeff.components().len() {
        return Err(PuppiesError::BadParams(format!(
            "{nkeys} key sets for {} components",
            coeff.components().len()
        )));
    }
    let bounds = Rect::new(0, 0, coeff.width(), coeff.height());
    // The last block row/column may be partial; allow rects that end at the
    // image border even when the border is unaligned.
    let aligned = rect.x % 8 == 0
        && rect.y % 8 == 0
        && (rect.w % 8 == 0 || rect.right() == coeff.width())
        && (rect.h % 8 == 0 || rect.bottom() == coeff.height());
    if rect.is_empty() || !bounds.contains_rect(rect) || !aligned {
        return Err(PuppiesError::BadRoi {
            rect,
            width: coeff.width(),
            height: coeff.height(),
        });
    }
    Ok(())
}

/// The exact additive delta `e − b` (in quantized units, possibly outside
/// the ring) the perturbation applied to coefficient `i` of block `k`,
/// reconstructed from the profile, keys and wrap index. This is the value
/// the shadow-ROI generator needs (see [`crate::shadow`]).
pub fn effective_delta(
    profile: &PerturbProfile,
    keys: &RoiKeys,
    q: &RangeMatrix,
    wind: &std::collections::HashSet<(u8, u32, u8)>,
    component: u8,
    k: u32,
    i: usize,
) -> i32 {
    let (p, modulus) = if i == 0 {
        (dc_perturbation(profile, keys, k), COEFF_MODULUS)
    } else {
        (ac_perturbation(profile, keys, q, i), AC_MODULUS)
    };
    if wind.contains(&(component, k, i as u8)) {
        p - modulus
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::OwnerKey;
    use crate::matrix::wrap_ac;
    use puppies_image::{Rgb, RgbImage};

    /// Straight transcription of the pre-lane scalar AC loop, kept as the
    /// reference the lane kernels must match exactly on every backend.
    fn perturb_block_reference(
        block: &mut [i32; MATRIX_LEN],
        pvec: &[i32; MATRIX_LEN],
        skip_zeros: bool,
    ) -> (u64, u64) {
        let (mut wind, mut zind) = (0u64, 0u64);
        for (i, coeff) in block.iter_mut().enumerate().skip(1) {
            let p = pvec[i];
            if p == 0 || (skip_zeros && *coeff == 0) {
                continue;
            }
            let raw = *coeff + p;
            if raw > AC_MAX {
                wind |= 1 << i;
            }
            *coeff = wrap_ac(raw);
            if skip_zeros && *coeff == 0 {
                zind |= 1 << i;
            }
        }
        (wind, zind)
    }

    fn recover_block_reference(
        block: &mut [i32; MATRIX_LEN],
        pvec: &[i32; MATRIX_LEN],
        force: &[i32; MATRIX_LEN],
        skip_zeros: bool,
    ) {
        for (i, coeff) in block.iter_mut().enumerate().skip(1) {
            let p = pvec[i];
            if p == 0 || (skip_zeros && *coeff == 0 && force[i] == 0) {
                continue;
            }
            *coeff = wrap_ac(*coeff - p);
        }
    }

    #[test]
    fn block_lane_kernels_match_reference_on_every_backend() {
        use puppies_image::simd::Backend;
        let mut state = 0x9E37_79B9_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let mut block = [0i32; MATRIX_LEN];
            let mut pvec = [0i32; MATRIX_LEN];
            let mut force = [0i32; MATRIX_LEN];
            for i in 0..MATRIX_LEN {
                // Bias toward sparsity and ring-boundary values like real
                // blocks; case 0 stresses the extremes everywhere.
                block[i] = match rng() % 5 {
                    0 => 0,
                    1 => AC_MAX - (rng() % 8) as i32,
                    2 => AC_MIN + (rng() % 8) as i32,
                    _ => (rng() % 2047) as i32 - 1023,
                };
                pvec[i] = if rng() % 3 == 0 {
                    0
                } else {
                    (rng() % 2047) as i32
                };
                force[i] = if rng() % 8 == 0 { -1 } else { 0 };
            }
            pvec[0] = 0;
            force[0] = 0;
            let skip_zeros = case % 2 == 0;

            let mut want = block;
            let (want_w, want_z) = perturb_block_reference(&mut want, &pvec, skip_zeros);
            for backend in Backend::ALL {
                if !backend.available() {
                    continue;
                }
                let mut got = block;
                let (mut gw, mut gz) = (0u64, 0u64);
                perturb_block_lanes_with(backend, &mut got, &pvec, skip_zeros, &mut gw, &mut gz);
                assert_eq!(got, want, "perturb {} case {case}", backend.name());
                assert_eq!(
                    (gw, gz),
                    (want_w, want_z),
                    "masks {} case {case}",
                    backend.name()
                );
            }

            let mut want_rec = want;
            recover_block_reference(&mut want_rec, &pvec, &force, skip_zeros);
            for backend in Backend::ALL {
                if !backend.available() {
                    continue;
                }
                let mut got = want;
                recover_block_lanes_with(backend, &mut got, &pvec, &force, skip_zeros);
                assert_eq!(got, want_rec, "recover {} case {case}", backend.name());
            }
        }
    }

    fn test_image() -> RgbImage {
        RgbImage::from_fn(64, 64, |x, y| {
            Rgb::new(
                ((x * 11 + y * 3) % 256) as u8,
                ((x * 7 + y * 13) % 256) as u8,
                ((x + 2 * y) % 256) as u8,
            )
        })
    }

    fn keys_for(image: u64, roi: u16) -> Vec<RoiKeys> {
        let key = OwnerKey::from_seed([5u8; 32]);
        let grant = key.grant_all();
        (0..3)
            .map(|c| RoiKeys::from_grant(&grant, image, roi, c).unwrap())
            .collect()
    }

    fn all_profiles() -> Vec<PerturbProfile> {
        let mut out = Vec::new();
        for scheme in [
            Scheme::Naive,
            Scheme::Base,
            Scheme::Compression,
            Scheme::Zero,
        ] {
            for level in PrivacyLevel::TABLE_IV {
                out.push(PerturbProfile::paper(scheme, level));
            }
        }
        out.push(PerturbProfile::transform_friendly());
        out
    }

    #[test]
    fn zero_index_empty_has_no_entries_anywhere() {
        let z = ZeroIndex::new();
        assert!(z.is_empty());
        assert_eq!(z.len(), 0);
        assert_eq!(z.encoded_bits(), 0);
        assert!(!z.contains(0, 0, 0));
        assert!(z.to_set().is_empty());
        assert_eq!(z, ZeroIndex::from_entries(Vec::new()));
    }

    #[test]
    fn zero_index_duplicate_entries_are_kept_but_set_deduplicates() {
        let e = ZeroEntry {
            component: 1,
            block: 7,
            coeff: 33,
        };
        let z = ZeroIndex::from_entries(vec![e, e, e]);
        // The wire format stores entries verbatim (28 bits each, §IV-B.4),
        // so duplicates cost bits …
        assert_eq!(z.len(), 3);
        assert_eq!(z.encoded_bits(), 3 * 28);
        assert!(z.contains(1, 7, 33));
        assert!(!z.contains(1, 7, 34));
        assert!(!z.contains(0, 7, 33));
        // … while the recovery lookup collapses them harmlessly.
        assert_eq!(z.to_set().len(), 1);
        assert!(z.to_set().contains(&(1, 7, 33)));
    }

    #[test]
    fn zero_index_extend_from_preserves_order_and_duplicates() {
        let a = ZeroEntry {
            component: 0,
            block: 1,
            coeff: 2,
        };
        let b = ZeroEntry {
            component: 2,
            block: 3,
            coeff: 4,
        };
        let mut left = ZeroIndex::from_entries(vec![a]);
        let right = ZeroIndex::from_entries(vec![b, a]);
        left.extend_from(&right);
        assert_eq!(left.entries(), &[a, b, a]);
        left.extend_from(&ZeroIndex::new());
        assert_eq!(left.len(), 3);
    }

    #[test]
    fn all_profiles_roundtrip_exactly() {
        let img = test_image();
        let rect = Rect::new(8, 8, 32, 24);
        for profile in all_profiles() {
            let original = CoeffImage::from_rgb(&img, 75);
            let mut perturbed = original.clone();
            let keys = keys_for(1, 0);
            let record = perturb_roi(&mut perturbed, rect, &keys, &profile).unwrap();
            assert_ne!(perturbed, original, "{profile:?} must change data");
            recover_roi(&mut perturbed, rect, &keys, &profile, &record.zind).unwrap();
            assert_eq!(perturbed, original, "{profile:?} must roundtrip");
        }
    }

    #[test]
    fn perturbation_confined_to_roi() {
        let img = test_image();
        let rect = Rect::new(16, 16, 16, 16);
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let profile = PerturbProfile::default();
        let keys = keys_for(1, 0);
        perturb_roi(&mut perturbed, rect, &keys, &profile).unwrap();
        for (co, cp) in original.components().iter().zip(perturbed.components()) {
            for by in 0..co.blocks_h() {
                for bx in 0..co.blocks_w() {
                    let inside = (2..4).contains(&bx) && (2..4).contains(&by);
                    if !inside {
                        assert_eq!(co.block(bx, by), cp.block(bx, by), "block ({bx},{by})");
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_key_fails_to_recover() {
        let img = test_image();
        let rect = Rect::new(0, 0, 32, 32);
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let profile = PerturbProfile::paper(Scheme::Compression, PrivacyLevel::Medium);
        let keys = keys_for(1, 0);
        let record = perturb_roi(&mut perturbed, rect, &keys, &profile).unwrap();
        let bad_key = OwnerKey::from_seed([6u8; 32]);
        let bad_grant = bad_key.grant_all();
        let bad: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&bad_grant, 1, 0, c).unwrap())
            .collect();
        recover_roi(&mut perturbed, rect, &bad, &profile, &record.zind).unwrap();
        assert_ne!(perturbed, original);
    }

    #[test]
    fn naive_shares_dc_perturbation_across_blocks() {
        let keys = &keys_for(1, 0)[0];
        let naive = PerturbProfile::paper(Scheme::Naive, PrivacyLevel::Medium);
        let base = PerturbProfile::paper(Scheme::Base, PrivacyLevel::Medium);
        assert_eq!(
            dc_perturbation(&naive, keys, 0),
            dc_perturbation(&naive, keys, 17)
        );
        let d0 = dc_perturbation(&base, keys, 0);
        let rotated = (0..64).any(|k| dc_perturbation(&base, keys, k) != d0);
        assert!(rotated, "base DC perturbation must vary across blocks");
        assert_eq!(
            dc_perturbation(&base, keys, 0),
            dc_perturbation(&base, keys, 64),
            "rotation has period 64"
        );
    }

    #[test]
    fn dc_range_bounds_perturbation() {
        let keys = &keys_for(1, 0)[0];
        let mut profile = PerturbProfile::transform_friendly();
        profile.dc_range = 16;
        for k in 0..128 {
            let p = dc_perturbation(&profile, keys, k);
            assert!((0..16).contains(&p), "k={k}: {p}");
        }
    }

    #[test]
    fn zero_scheme_preserves_zero_positions_off_zind() {
        let img = RgbImage::filled(32, 32, Rgb::new(200, 100, 50));
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let profile = PerturbProfile::paper(Scheme::Zero, PrivacyLevel::High);
        let keys = keys_for(2, 0);
        let record = perturb_roi(&mut perturbed, Rect::new(0, 0, 32, 32), &keys, &profile).unwrap();
        assert!(record.zind.is_empty(), "no nonzero AC to turn into zero");
        for (co, cp) in original.components().iter().zip(perturbed.components()) {
            for (bo, bp) in co.blocks().iter().zip(cp.blocks()) {
                assert_eq!(&bo[1..], &bp[1..], "AC untouched in flat image");
                assert_ne!(bo[0], bp[0], "DC still perturbed");
            }
        }
    }

    #[test]
    fn zind_records_created_zeros() {
        let img = test_image();
        let mut coeff = CoeffImage::from_rgb(&img, 75);
        let profile = PerturbProfile::paper(Scheme::Zero, PrivacyLevel::High);
        let q = profile.range_matrix();
        let keys = keys_for(3, 0);
        let p = ac_perturbation(&profile, &keys[0], &q, 1);
        assert_ne!(p, 0);
        coeff.components_mut()[0].block_mut(0, 0)[1] = wrap_ac(-p);
        let original = coeff.clone();
        let rect = Rect::new(0, 0, 64, 64);
        let record = perturb_roi(&mut coeff, rect, &keys, &profile).unwrap();
        assert!(
            record.zind.contains(0, 0, 1),
            "created zero must be recorded"
        );
        recover_roi(&mut coeff, rect, &keys, &profile, &record.zind).unwrap();
        assert_eq!(coeff, original);
    }

    #[test]
    fn wind_makes_deltas_exact() {
        // For every perturbed coefficient, e == b + effective_delta with no
        // modular correction needed.
        let img = test_image();
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let profile = PerturbProfile::paper(Scheme::Base, PrivacyLevel::High);
        let q = profile.range_matrix();
        let keys = keys_for(4, 0);
        let rect = Rect::new(0, 0, 64, 64);
        let record = perturb_roi(&mut perturbed, rect, &keys, &profile).unwrap();
        assert!(!record.wind.is_empty(), "full-range DC must wrap somewhere");
        let wset = record.wind.to_set();
        for (ci, key) in keys.iter().enumerate() {
            let co = &original.components()[ci];
            let cp = &perturbed.components()[ci];
            let positions = co.blocks_in_region(rect);
            for (k, &(bx, by)) in positions.iter().enumerate() {
                let bo = co.block(bx, by);
                let bp = cp.block(bx, by);
                for i in 0..64 {
                    let d = effective_delta(&profile, key, &q, &wset, ci as u8, k as u32, i);
                    assert_eq!(bo[i] + d, bp[i], "comp {ci} block {k} coeff {i}");
                }
            }
        }
    }

    #[test]
    fn transform_friendly_profile_never_wraps_on_natural_images() {
        let img = test_image();
        let mut perturbed = CoeffImage::from_rgb(&img, 75);
        let profile = PerturbProfile::transform_friendly();
        let keys = keys_for(5, 0);
        let record = perturb_roi(&mut perturbed, Rect::new(0, 0, 64, 64), &keys, &profile).unwrap();
        assert!(
            record.wind.is_empty(),
            "bounded ranges should not wrap: {} wraps",
            record.wind.len()
        );
    }

    #[test]
    fn unaligned_roi_rejected() {
        let img = test_image();
        let mut coeff = CoeffImage::from_rgb(&img, 75);
        let keys = keys_for(1, 0);
        let err = perturb_roi(
            &mut coeff,
            Rect::new(3, 0, 16, 16),
            &keys,
            &PerturbProfile::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PuppiesError::BadRoi { .. }));
    }

    #[test]
    fn partial_border_blocks_allowed() {
        let img = RgbImage::from_fn(60, 44, |x, y| Rgb::new(x as u8, y as u8, 7));
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let profile = PerturbProfile::default();
        let keys = keys_for(1, 0);
        let rect = Rect::new(48, 40, 12, 4);
        let record = perturb_roi(&mut perturbed, rect, &keys, &profile).unwrap();
        recover_roi(&mut perturbed, rect, &keys, &profile, &record.zind).unwrap();
        assert_eq!(perturbed, original);
    }

    #[test]
    fn missing_key_reported() {
        let key = OwnerKey::from_seed([5u8; 32]);
        let grant = key.grant_rois(1, &[0]);
        assert!(RoiKeys::from_grant(&grant, 1, 1, 0).is_err());
        assert!(RoiKeys::from_grant(&grant, 1, 0, 0).is_ok());
    }

    #[test]
    fn perturbed_coefficients_stay_encodable() {
        let img = test_image();
        let mut coeff = CoeffImage::from_rgb(&img, 75);
        let profile = PerturbProfile::paper(Scheme::Base, PrivacyLevel::High);
        let keys = keys_for(1, 0);
        perturb_roi(&mut coeff, Rect::new(0, 0, 64, 64), &keys, &profile).unwrap();
        let bytes = coeff
            .encode(&puppies_jpeg::EncodeOptions::default())
            .unwrap();
        let back = CoeffImage::decode(&bytes).unwrap();
        assert_eq!(
            back.components()[0].blocks(),
            coeff.components()[0].blocks()
        );
    }
}
