//! Owner key material and deterministic private-matrix derivation.
//!
//! The paper stores "the perturbation matrix as the private information on
//! owners' devices" and distributes it over a secure channel (§III-C.4,
//! assumption: key distribution uses standard crypto). Storing raw 8×8
//! matrices per ROI is what Fig. 11 sizes; to keep the owner's footprint
//! minimal we *derive* every matrix from one 256-bit owner seed with a
//! ChaCha-based KDF, and grant receivers either derived matrices (matrix
//! granularity, per-ROI sharing) or nothing.

use crate::matrix::PrivateMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use std::collections::HashMap;

/// Identifies one private matrix: which image, which ROI, and which of the
/// DC/AC pair (§IV-D uses separate `P_DC`/`P_AC` in practice — so do we).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixId {
    /// Image identifier chosen by the sender (e.g. a hash or counter).
    pub image: u64,
    /// Index of the ROI within the image's ROI plan.
    pub roi: u16,
    /// Which matrix of the pair.
    pub kind: MatrixKind,
    /// Which color component the matrix perturbs (0 = Y, 1 = Cb, 2 = Cr).
    pub component: u8,
}

/// Whether a matrix perturbs DC or AC coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixKind {
    /// Perturbs DC coefficients (rotating through the 64 entries).
    Dc,
    /// Perturbs AC coefficients (entry `i` for coefficient `i`).
    Ac,
}

/// The sender's root secret. Everything else — every per-ROI,
/// per-component matrix — derives deterministically from it.
#[derive(Clone)]
pub struct OwnerKey {
    seed: [u8; 32],
}

impl std::fmt::Debug for OwnerKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("OwnerKey")
            .field("seed", &"<redacted>")
            .finish()
    }
}

impl OwnerKey {
    /// Creates a key from an explicit 256-bit seed (tests, replay).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        OwnerKey { seed }
    }

    /// Draws a fresh random key from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        OwnerKey { seed }
    }

    /// Derives the private matrix for `id`. Deterministic: the same owner
    /// key and id always produce the same matrix, so the owner only ever
    /// stores 32 bytes.
    pub fn derive(&self, id: MatrixId) -> PrivateMatrix {
        let mut seed = self.seed;
        // Mix the id into the seed (a simple domain-separated KDF; the
        // secure channel itself is out of the paper's scope).
        let kind_tag: u8 = match id.kind {
            MatrixKind::Dc => 0xD0,
            MatrixKind::Ac => 0xAC,
        };
        let mix = [
            id.image.to_le_bytes().as_slice(),
            id.roi.to_le_bytes().as_slice(),
            &[kind_tag, id.component],
        ]
        .concat();
        for (i, b) in mix.iter().enumerate() {
            seed[i % 32] ^= b.rotate_left((i % 7) as u32);
            seed[(i * 13 + 5) % 32] = seed[(i * 13 + 5) % 32].wrapping_add(*b);
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        // Discard a block to decorrelate from the raw seed mix.
        let _: u64 = rng.gen();
        PrivateMatrix::random(&mut rng)
    }

    /// A grant containing every matrix for image 0..=u16::MAX — i.e. the
    /// owner's own view. Matrices are derived lazily, so this is cheap.
    pub fn grant_all(&self) -> KeyGrant {
        KeyGrant {
            matrices: HashMap::new(),
            owner: Some(self.clone()),
        }
    }

    /// A grant for specific ROIs of a specific image: the matrices Alice
    /// hands to Bob over the secure channel.
    pub fn grant_rois(&self, image: u64, rois: &[u16]) -> KeyGrant {
        let mut matrices = HashMap::new();
        for &roi in rois {
            for component in 0..3u8 {
                for kind in [MatrixKind::Dc, MatrixKind::Ac] {
                    let id = MatrixId {
                        image,
                        roi,
                        kind,
                        component,
                    };
                    matrices.insert(id, self.derive(id));
                }
            }
        }
        KeyGrant {
            matrices,
            owner: None,
        }
    }
}

/// The key material a receiver holds: either explicit matrices for the
/// regions shared with them, or (for the owner) the root key itself.
///
/// The size of the explicit form is what Fig. 11 plots against P3's
/// whole-image private part.
#[derive(Debug, Clone)]
pub struct KeyGrant {
    matrices: HashMap<MatrixId, PrivateMatrix>,
    owner: Option<OwnerKey>,
}

impl KeyGrant {
    /// An empty grant (a receiver with no shared regions).
    pub fn empty() -> Self {
        KeyGrant {
            matrices: HashMap::new(),
            owner: None,
        }
    }

    /// Looks up (or derives, for the owner) the matrix for `id`.
    pub fn matrix(&self, id: MatrixId) -> Option<PrivateMatrix> {
        if let Some(m) = self.matrices.get(&id) {
            return Some(m.clone());
        }
        self.owner.as_ref().map(|k| k.derive(id))
    }

    /// Whether the grant covers ROI `roi` of `image` (all components, both
    /// kinds).
    pub fn covers(&self, image: u64, roi: u16) -> bool {
        if self.owner.is_some() {
            return true;
        }
        (0..3u8).all(|component| {
            [MatrixKind::Dc, MatrixKind::Ac].iter().all(|&kind| {
                self.matrices.contains_key(&MatrixId {
                    image,
                    roi,
                    kind,
                    component,
                })
            })
        })
    }

    /// Merges another grant into this one (receiving keys from several
    /// senders or several shares).
    pub fn merge(&mut self, other: KeyGrant) {
        self.matrices.extend(other.matrices);
        if self.owner.is_none() {
            self.owner = other.owner;
        }
    }

    /// Number of explicit matrices held (the local storage Fig. 11
    /// measures; 11 bits per entry, 64 entries per matrix).
    pub fn explicit_matrix_count(&self) -> usize {
        self.matrices.len()
    }

    /// Size in bytes of the explicit private part: each matrix entry is an
    /// 11-bit number (§VI-A), so a matrix costs `ceil(64 × 11 / 8)` = 88
    /// bytes.
    pub fn private_part_bytes(&self) -> usize {
        self.explicit_matrix_count() * (64usize * 11).div_ceil(8)
    }

    /// Exports the explicit matrices for transport over a secure channel.
    /// The owner root key (if any) is never exported.
    pub fn to_entries(&self) -> Vec<(MatrixId, PrivateMatrix)> {
        let mut v: Vec<_> = self
            .matrices
            .iter()
            .map(|(id, m)| (*id, m.clone()))
            .collect();
        v.sort_by_key(|(id, _)| {
            (
                id.image,
                id.roi,
                id.component,
                matches!(id.kind, MatrixKind::Ac),
            )
        });
        v
    }

    /// Rebuilds a grant from transported entries.
    pub fn from_entries(entries: Vec<(MatrixId, PrivateMatrix)>) -> KeyGrant {
        KeyGrant {
            matrices: entries.into_iter().collect(),
            owner: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn id(roi: u16, kind: MatrixKind, component: u8) -> MatrixId {
        MatrixId {
            image: 42,
            roi,
            kind,
            component,
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let k = OwnerKey::from_seed([3u8; 32]);
        let a = k.derive(id(0, MatrixKind::Dc, 0));
        let b = k.derive(id(0, MatrixKind::Dc, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_ids_give_different_matrices() {
        let k = OwnerKey::from_seed([3u8; 32]);
        let base = k.derive(id(0, MatrixKind::Dc, 0));
        assert_ne!(base, k.derive(id(1, MatrixKind::Dc, 0)), "roi");
        assert_ne!(base, k.derive(id(0, MatrixKind::Ac, 0)), "kind");
        assert_ne!(base, k.derive(id(0, MatrixKind::Dc, 1)), "component");
        let k2 = OwnerKey::from_seed([4u8; 32]);
        assert_ne!(base, k2.derive(id(0, MatrixKind::Dc, 0)), "owner");
    }

    #[test]
    fn grant_all_covers_everything() {
        let k = OwnerKey::from_seed([9u8; 32]);
        let g = k.grant_all();
        assert!(g.covers(7, 3));
        assert!(g.matrix(id(5, MatrixKind::Ac, 2)).is_some());
        assert_eq!(g.explicit_matrix_count(), 0);
    }

    #[test]
    fn grant_rois_is_scoped() {
        let k = OwnerKey::from_seed([9u8; 32]);
        let g = k.grant_rois(42, &[1]);
        assert!(g.covers(42, 1));
        assert!(!g.covers(42, 0));
        assert!(g.matrix(id(0, MatrixKind::Dc, 0)).is_none());
        // Granted matrices equal owner-derived ones.
        assert_eq!(
            g.matrix(id(1, MatrixKind::Dc, 0)),
            Some(k.derive(id(1, MatrixKind::Dc, 0)))
        );
        // 1 ROI × 3 components × 2 kinds.
        assert_eq!(g.explicit_matrix_count(), 6);
        assert_eq!(g.private_part_bytes(), 6 * 88);
    }

    #[test]
    fn empty_grant_covers_nothing() {
        let g = KeyGrant::empty();
        assert!(!g.covers(0, 0));
        assert!(g.matrix(id(0, MatrixKind::Dc, 0)).is_none());
    }

    #[test]
    fn merge_combines_grants() {
        let k = OwnerKey::from_seed([9u8; 32]);
        let mut a = k.grant_rois(42, &[0]);
        let b = k.grant_rois(42, &[1]);
        a.merge(b);
        assert!(a.covers(42, 0) && a.covers(42, 1));
    }

    #[test]
    fn generated_keys_differ() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let a = OwnerKey::generate(&mut rng);
        let b = OwnerKey::generate(&mut rng);
        let i = id(0, MatrixKind::Dc, 0);
        assert_ne!(a.derive(i), b.derive(i));
    }

    #[test]
    fn debug_does_not_leak_seed() {
        let k = OwnerKey::from_seed([0xAB; 32]);
        let s = format!("{k:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains("171")); // 0xAB
    }
}
