//! Brute-force security accounting (§VI-A).
//!
//! The secrecy of a perturbed ROI rests on two private matrices `P_DC` and
//! `P_AC`. Each `P_DC` entry is an 11-bit number (range 2048), so the DC
//! part always carries `64 × 11 = 704` bits. The AC part depends on the
//! privacy level through Algorithm 3's range matrix.
//!
//! The paper quotes AC bit counts of 1 / 90 / 631 for low/medium/high; a
//! literal evaluation of Algorithm 3 yields 10 / 55 / 693 (the sum of
//! `log2 Q'ᵢ` over perturbed AC slots). Both are computed here; the
//! experiment binary prints them side by side and EXPERIMENTS.md discusses
//! the discrepancy. Either way every level clears NIST's 256-bit
//! recommendation once the DC part is included, which is the claim that
//! matters.

use crate::matrix::RangeMatrix;
use crate::privacy::PrivacyLevel;
/// Bits of DC-matrix entropy: 64 entries × 11 bits.
pub const DC_SECURE_BITS: u32 = 64 * 11;

/// Secure-bit breakdown for one privacy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecureBits {
    /// The privacy level analyzed.
    pub level: (u16, u8),
    /// DC bits (always 704).
    pub dc_bits: u32,
    /// AC bits computed from Algorithm 3's range matrix.
    pub ac_bits: u32,
    /// The AC bits §VI-A of the paper quotes for this level, if it is one
    /// of the three named levels.
    pub paper_ac_bits: Option<u32>,
    /// Total computed bits.
    pub total_bits: u32,
}

impl SecureBits {
    /// Whether the search space exceeds NIST's 256-bit recommendation
    /// (§VI-A's benchmark).
    pub fn exceeds_nist(&self) -> bool {
        self.total_bits >= 256
    }
}

/// Computes the secure-bit breakdown for a privacy level.
pub fn secure_bits(level: PrivacyLevel) -> SecureBits {
    let (m_r, k) = level.parameters();
    let q = RangeMatrix::generate(m_r, k);
    let ac = q.ac_secure_bits();
    let paper = match level {
        PrivacyLevel::Low => Some(1),
        PrivacyLevel::Medium => Some(90),
        PrivacyLevel::High => Some(631),
        PrivacyLevel::Custom { .. } => None,
    };
    SecureBits {
        level: (m_r, k),
        dc_bits: DC_SECURE_BITS,
        ac_bits: ac,
        paper_ac_bits: paper,
        total_bits: DC_SECURE_BITS + ac,
    }
}

/// Expected number of candidate images a brute-force adversary must test:
/// `2^total_bits`, reported as the exponent because the number itself
/// overflows anything printable.
pub fn brute_force_exponent(level: PrivacyLevel) -> u32 {
    secure_bits(level).total_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_704_bits() {
        assert_eq!(DC_SECURE_BITS, 704);
    }

    #[test]
    fn every_level_exceeds_nist() {
        for level in PrivacyLevel::TABLE_IV {
            let sb = secure_bits(level);
            assert!(sb.exceeds_nist(), "{level:?}: {} bits", sb.total_bits);
        }
    }

    #[test]
    fn ac_bits_by_level_match_algorithm3() {
        // Literal Algorithm 3: low = log2(1024) = 10, medium =
        // 10+9+8+7+6+5+5+5 = 55, high = 63×11 = 693.
        assert_eq!(secure_bits(PrivacyLevel::Low).ac_bits, 10);
        assert_eq!(secure_bits(PrivacyLevel::Medium).ac_bits, 55);
        assert_eq!(secure_bits(PrivacyLevel::High).ac_bits, 693);
    }

    #[test]
    fn paper_numbers_recorded_for_comparison() {
        assert_eq!(secure_bits(PrivacyLevel::Low).paper_ac_bits, Some(1));
        assert_eq!(secure_bits(PrivacyLevel::Medium).paper_ac_bits, Some(90));
        assert_eq!(secure_bits(PrivacyLevel::High).paper_ac_bits, Some(631));
        assert_eq!(
            secure_bits(PrivacyLevel::Custom { m_r: 4, k: 2 }).paper_ac_bits,
            None
        );
    }

    #[test]
    fn totals_are_monotone() {
        let l = brute_force_exponent(PrivacyLevel::Low);
        let m = brute_force_exponent(PrivacyLevel::Medium);
        let h = brute_force_exponent(PrivacyLevel::High);
        assert!(l < m && m < h);
        assert_eq!(h, 704 + 693);
    }
}
