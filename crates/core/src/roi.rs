//! ROI plans: turning user/detector rectangles into the disjoint,
//! block-aligned regions perturbation operates on.
//!
//! §IV-A: detections from the face/OCR/object detectors overlap, so the
//! system "splits the overall detected regions into disjoint regions";
//! each disjoint region can then be encrypted with its own private matrix
//! and shared independently. Perturbation works on whole 8×8 coefficient
//! blocks, so regions are additionally expanded outward to block
//! boundaries.

use crate::{PuppiesError, Result};
use puppies_image::geometry::decompose_disjoint;
use puppies_image::Rect;
use puppies_jpeg::BLOCK_SIZE;
/// A set of disjoint, 8-aligned ROI rectangles for one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoiPlan {
    width: u32,
    height: u32,
    regions: Vec<Rect>,
}

impl RoiPlan {
    /// Builds a plan from arbitrary (possibly overlapping, unaligned)
    /// rectangles: each is clipped to the image, expanded outward to 8×8
    /// block boundaries, and the union is decomposed into disjoint
    /// rectangles.
    ///
    /// # Errors
    /// Returns [`PuppiesError::BadRoi`] if any input rectangle is empty or
    /// entirely outside the image.
    pub fn from_rects(width: u32, height: u32, rects: &[Rect]) -> Result<RoiPlan> {
        let bounds = Rect::new(0, 0, width, height);
        let mut aligned = Vec::with_capacity(rects.len());
        for &r in rects {
            let clipped = r.intersect(bounds);
            if clipped.is_empty() {
                return Err(PuppiesError::BadRoi {
                    rect: r,
                    width,
                    height,
                });
            }
            aligned.push(clipped.align_to(BLOCK_SIZE, width, height));
        }
        let regions = decompose_disjoint(&aligned);
        Ok(RoiPlan {
            width,
            height,
            regions,
        })
    }

    /// Image width the plan applies to.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height the plan applies to.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The disjoint, aligned regions. Index order is stable and is what
    /// [`crate::keys::MatrixId::roi`] refers to.
    pub fn regions(&self) -> &[Rect] {
        &self.regions
    }

    /// Total ROI area as a fraction of the image area.
    pub fn area_fraction(&self) -> f64 {
        let roi: u64 = self.regions.iter().map(|r| r.area()).sum();
        roi as f64 / (self.width as u64 * self.height as u64) as f64
    }

    /// Number of 8×8 blocks covered by all regions (per component).
    pub fn block_count(&self) -> usize {
        self.regions
            .iter()
            .map(|r| ((r.w / BLOCK_SIZE) * (r.h / BLOCK_SIZE)) as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_aligns_and_decomposes() {
        let plan = RoiPlan::from_rects(64, 64, &[Rect::new(3, 3, 10, 10), Rect::new(30, 30, 9, 9)])
            .unwrap();
        for r in plan.regions() {
            assert_eq!(r.x % 8, 0);
            assert_eq!(r.y % 8, 0);
            assert_eq!(r.w % 8, 0);
            assert_eq!(r.h % 8, 0);
        }
        // Disjointness.
        for (i, a) in plan.regions().iter().enumerate() {
            for b in &plan.regions()[i + 1..] {
                assert!(!a.overlaps(*b));
            }
        }
        // First rect 3..13 aligns to 0..16.
        assert!(plan.regions().contains(&Rect::new(0, 0, 16, 16)));
    }

    #[test]
    fn overlapping_inputs_share_no_blocks() {
        let plan = RoiPlan::from_rects(
            64,
            64,
            &[Rect::new(0, 0, 20, 20), Rect::new(10, 10, 20, 20)],
        )
        .unwrap();
        let blocks = plan.block_count();
        // Union of aligned rects 0..24 and 8..32 covers 0..32 square minus
        // two 8-block corners = 16 - 2 = 14 blocks? Compute honestly:
        // aligned rects are (0,0,24,24) and (8,8,24,24); union area =
        // 576 + 576 - 256 = 896 px = 14 blocks.
        assert_eq!(blocks, 14);
    }

    #[test]
    fn out_of_image_roi_rejected() {
        assert!(RoiPlan::from_rects(32, 32, &[Rect::new(40, 40, 8, 8)]).is_err());
        assert!(RoiPlan::from_rects(32, 32, &[Rect::new(0, 0, 0, 0)]).is_err());
    }

    #[test]
    fn clipping_keeps_partial_roi() {
        let plan = RoiPlan::from_rects(32, 32, &[Rect::new(28, 28, 20, 20)]).unwrap();
        assert_eq!(plan.regions(), &[Rect::new(24, 24, 8, 8)]);
    }

    #[test]
    fn area_fraction_full_image() {
        let plan = RoiPlan::from_rects(32, 32, &[Rect::new(0, 0, 32, 32)]).unwrap();
        assert!((plan.area_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(plan.block_count(), 16);
    }

    #[test]
    fn empty_input_gives_empty_plan() {
        let plan = RoiPlan::from_rects(32, 32, &[]).unwrap();
        assert!(plan.regions().is_empty());
        assert_eq!(plan.area_fraction(), 0.0);
    }
}
