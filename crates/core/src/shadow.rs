//! Reconstruction after PSP-side transformations — the "shadow ROI"
//! mechanism of §IV-C.
//!
//! Two reconstruction paths exist, by transformation class:
//!
//! 1. **Coefficient-domain (lossless) transformations** — block-aligned
//!    crops, 90°·k rotations, flips, recompression. These permute whole
//!    blocks (possibly with per-coefficient sign flips), so the receiver
//!    simply *inverts the transformation on the coefficient image*, runs
//!    the exact scenario-1 recovery of Lemma III.1, and re-applies the
//!    transformation. Recovery is **bit-exact** for crop/rotate/flip and
//!    approximate only for recompression (which is itself lossy).
//!
//! 2. **Pixel-domain linear transformations** — scaling, filtering. The
//!    receiver generates the *shadow ROI* (the pixel-domain image of the
//!    perturbation deltas, Fig. 9), pushes it through the *same unmodified*
//!    transformation, and subtracts it from the transformed perturbed
//!    image (§IV-C.1). This is the paper's headline trick: the PSP's
//!    standard library is reused verbatim, once on the image and once on
//!    the shadow.
//!
//! # Fidelity of the pixel-domain path
//!
//! The paper presents path 2 as exact (Figs. 4, 16). Three effects it does
//! not model make it approximate in general:
//!
//! - **Ring wraps.** Lemma III.1's modular arithmetic is non-linear at
//!   wrap points. Our `WInd` extension (see [`crate::perturb`]) removes
//!   this error completely: the shadow uses the exact delta `e − b`.
//! - **Pixel clamping.** The PSP decodes the perturbed image to 8-bit
//!   pixels before resampling; wild perturbations clamp at 0/255 and the
//!   clamped excess is unrecoverable. Bounded perturbation
//!   ([`crate::perturb::PerturbProfile::transform_friendly`]) keeps this
//!   negligible.
//! - **PuPPIeS-Z skipping.** Which coefficients Z skipped is
//!   data-dependent; the shadow assumes every coefficient was perturbed.
//!   Use [`crate::Scheme::Compression`] when pixel-domain PSP edits are
//!   expected.
//!
//! The Fig. 4/16 experiments quantify each combination; EXPERIMENTS.md
//! reports the measured PSNRs.

use crate::keys::KeyGrant;
use crate::params::PublicParams;
use crate::perturb::{dc_perturbation, effective_delta, RoiKeys, Scheme};
use crate::{PuppiesError, Result};
use puppies_image::{Plane, Rect, RgbImage};
use puppies_jpeg::{dct, CoeffImage, QuantTable, BLOCK_SIZE};
use puppies_transform::Transformation;

/// Recovers a protected image that the PSP transformed, dispatching to the
/// exact coefficient-domain path or the shadow-ROI pixel path.
///
/// `transformed_bytes` is the JPEG the receiver downloaded; `params` must
/// carry the applied [`Transformation`] (`None` falls back to scenario-1
/// recovery). Returns the recovered *transformed* image — i.e. what the
/// PSP's transformation would have produced on the original.
///
/// # Errors
/// Fails on undecodable input or parameter/geometry mismatches.
pub fn recover_transformed(
    transformed_bytes: &[u8],
    params: &PublicParams,
    grant: &KeyGrant,
) -> Result<RgbImage> {
    let _span = puppies_obs::span("core.shadow_recover", "core");
    let coeff = CoeffImage::decode(transformed_bytes)?;
    let t = match &params.transformation {
        None => {
            let mut c = coeff;
            crate::protect::recover_coeff(&mut c, params, grant)?;
            return Ok(c.to_rgb());
        }
        Some(t) => t.clone(),
    };
    if t.is_coeff_domain(params.width, params.height) {
        recover_coeff_domain(&coeff, &t, params, grant).map(|c| c.to_rgb())
    } else {
        recover_pixel_domain(&coeff.to_rgb(), &t, params, grant)
    }
}

/// Exact recovery for lossless (coefficient-domain) transformations.
///
/// # Errors
/// Fails for transformations without a coefficient-domain form.
pub fn recover_coeff_domain(
    transformed: &CoeffImage,
    t: &Transformation,
    params: &PublicParams,
    grant: &KeyGrant,
) -> Result<CoeffImage> {
    match t {
        Transformation::Rotate90
        | Transformation::Rotate180
        | Transformation::Rotate270
        | Transformation::FlipHorizontal
        | Transformation::FlipVertical => {
            let inverse = match t {
                Transformation::Rotate90 => Transformation::Rotate270,
                Transformation::Rotate270 => Transformation::Rotate90,
                other => other.clone(), // 180 and flips are involutions
            };
            let mut original_frame = inverse.apply_to_coeff(transformed)?;
            crate::protect::recover_coeff(&mut original_frame, params, grant)?;
            Ok(t.apply_to_coeff(&original_frame)?)
        }
        Transformation::Crop(crop) => recover_cropped(transformed, *crop, params, grant),
        Transformation::Recompress { .. } => recover_recompressed(transformed, params, grant),
        other => Err(PuppiesError::Transform(
            puppies_transform::TransformError::NotCoeffDomain(format!("{other:?}")),
        )),
    }
}

/// Recovery after a block-aligned crop: surviving ROI blocks are
/// unperturbed using their *original* sequence index `k`, which the crop
/// offset determines (the paper's "transformed ROI" of Fig. 8).
fn recover_cropped(
    transformed: &CoeffImage,
    crop: Rect,
    params: &PublicParams,
    grant: &KeyGrant,
) -> Result<CoeffImage> {
    let mut out = transformed.clone();
    let ncomp = out.components().len();
    for roi in &params.rois {
        if !grant.covers(params.image_id, roi.index) {
            continue;
        }
        let inter = roi.rect.intersect(crop);
        if inter.is_empty() {
            continue;
        }
        let local = Rect::new(inter.x - crop.x, inter.y - crop.y, inter.w, inter.h);
        let q = roi.range_matrix();
        let roi_blocks_w = roi.rect.w.div_ceil(BLOCK_SIZE);
        let zset = roi.zind.to_set();
        for ci in 0..ncomp {
            let keys = RoiKeys::from_grant(grant, params.image_id, roi.index, ci as u8)?;
            let comp = &mut out.components_mut()[ci];
            let positions = comp.blocks_in_region(local);
            for &(bx, by) in &positions {
                let orig_bx = (bx * BLOCK_SIZE + crop.x - roi.rect.x) / BLOCK_SIZE;
                let orig_by = (by * BLOCK_SIZE + crop.y - roi.rect.y) / BLOCK_SIZE;
                let k = orig_by * roi_blocks_w + orig_bx;
                let block = comp.block_mut(bx, by);
                block[0] =
                    crate::matrix::wrap_dc(block[0] - dc_perturbation(&roi.profile, &keys, k));
                for (i, coeff) in block.iter_mut().enumerate().skip(1) {
                    let p = crate::perturb::ac_perturbation(&roi.profile, &keys, &q, i);
                    if p == 0 {
                        continue;
                    }
                    let touched = match roi.profile.scheme {
                        Scheme::Zero => *coeff != 0 || zset.contains(&(ci as u8, k, i as u8)),
                        _ => true,
                    };
                    if touched {
                        *coeff = crate::matrix::wrap_ac(*coeff - p);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Recovery after PSP recompression (§IV-C.2): the receiver knows both
/// quantization tables, maps coefficients back to the original grid,
/// unperturbs, and the caller sees the image at original quality.
/// Approximate — requantization is lossy by itself; the error is bounded
/// by one original quantization step per coefficient.
fn recover_recompressed(
    transformed: &CoeffImage,
    params: &PublicParams,
    grant: &KeyGrant,
) -> Result<CoeffImage> {
    let mut back = transformed.clone();
    for (idx, c) in back.components_mut().iter_mut().enumerate() {
        c.requantize(original_table(params.quality, idx));
    }
    crate::protect::recover_coeff(&mut back, params, grant)?;
    Ok(back)
}

fn original_table(quality: u8, component_index: usize) -> QuantTable {
    if component_index == 0 {
        QuantTable::luma(quality)
    } else {
        QuantTable::chroma(quality)
    }
}

/// Builds the shadow planes: per component, the pixel-domain image of the
/// perturbation deltas over the whole (original-size) canvas — zero
/// outside ROIs (Fig. 9's "shadow ROI generator"). Wrap events recorded in
/// `WInd` are folded in so each block's shadow is the *exact* additive
/// delta in the coefficient domain.
///
/// # Errors
/// Fails if a needed key is missing from the grant.
pub fn shadow_planes(params: &PublicParams, grant: &KeyGrant, ncomp: usize) -> Result<Vec<Plane>> {
    let mut planes: Vec<Plane> = (0..ncomp)
        .map(|_| Plane::new(params.width, params.height))
        .collect();
    for roi in &params.rois {
        if !grant.covers(params.image_id, roi.index) {
            continue;
        }
        let q = roi.range_matrix();
        let wset = roi.wind.to_set();
        let blocks_w = roi.rect.w.div_ceil(BLOCK_SIZE);
        let blocks_h = roi.rect.h.div_ceil(BLOCK_SIZE);
        for (ci, plane) in planes.iter_mut().enumerate() {
            let keys = RoiKeys::from_grant(grant, params.image_id, roi.index, ci as u8)?;
            let quant = original_table(params.quality, ci);
            for by in 0..blocks_h {
                for bx in 0..blocks_w {
                    let k = by * blocks_w + bx;
                    let mut pert = [0i32; 64];
                    for (i, slot) in pert.iter_mut().enumerate() {
                        *slot = effective_delta(&roi.profile, &keys, &q, &wset, ci as u8, k, i);
                    }
                    let raw = quant.dequantize(&pert);
                    let spatial = dct::inverse(&raw);
                    for y in 0..BLOCK_SIZE {
                        for x in 0..BLOCK_SIZE {
                            let px = roi.rect.x + bx * BLOCK_SIZE + x;
                            let py = roi.rect.y + by * BLOCK_SIZE + y;
                            if px < params.width && py < params.height {
                                plane.set(px, py, spatial[(y * BLOCK_SIZE + x) as usize]);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(planes)
}

/// Shadow-ROI recovery for pixel-domain transformations (§IV-C.1): apply
/// the same transformation to the shadow planes and subtract.
///
/// The result is approximate (see the module docs); fidelity is highest
/// with the transform-friendly profile.
///
/// # Errors
/// Fails when the transformation cannot run on a plane (`Recompress`,
/// `Overlay`) or keys are missing.
pub fn recover_pixel_domain(
    transformed: &RgbImage,
    t: &Transformation,
    params: &PublicParams,
    grant: &KeyGrant,
) -> Result<RgbImage> {
    let shadows = shadow_planes(params, grant, 3)?;
    let mut planes = transformed.to_ycbcr_planes();
    for (ci, shadow) in shadows.iter().enumerate() {
        let t_shadow = t.apply_to_plane(shadow)?;
        if t_shadow.width() != planes[ci].width() || t_shadow.height() != planes[ci].height() {
            return Err(PuppiesError::BadParams(format!(
                "transformed shadow {}x{} vs image {}x{}",
                t_shadow.width(),
                t_shadow.height(),
                planes[ci].width(),
                planes[ci].height()
            )));
        }
        let p = &mut planes[ci];
        for y in 0..p.height() {
            for x in 0..p.width() {
                p.set(x, y, p.get(x, y) - t_shadow.get(x, y));
            }
        }
    }
    Ok(RgbImage::from_ycbcr_planes(&planes))
}

/// Grayscale shadow visualization of the first component (Fig. 9-style
/// demonstrations).
///
/// # Errors
/// Fails if keys are missing.
pub fn shadow_luma_preview(params: &PublicParams, grant: &KeyGrant) -> Result<Plane> {
    Ok(shadow_planes(params, grant, 1)?.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::OwnerKey;
    use crate::perturb::PerturbProfile;
    use crate::privacy::PrivacyLevel;
    use crate::protect::{protect, ProtectOptions};
    use puppies_image::metrics::psnr_rgb;
    use puppies_image::Rgb;

    fn test_image() -> RgbImage {
        // Mid-range texture: photographic content rarely sits at the gamut
        // boundary, and the pixel-domain shadow path is documented to
        // degrade there (clamping). The storage/attack experiments use the
        // synthetic datasets instead.
        RgbImage::from_fn(64, 64, |x, y| {
            Rgb::new(
                (64 + (x * 5 + y * 2) % 128) as u8,
                (64 + (x * 2 + y * 4) % 128) as u8,
                (64 + (x + y * 3) % 128) as u8,
            )
        })
    }

    fn protect_with(opts: &ProtectOptions) -> (RgbImage, crate::ProtectedImage, OwnerKey) {
        let img = test_image();
        let key = OwnerKey::from_seed([8u8; 32]);
        let protected = protect(&img, &[Rect::new(16, 16, 32, 32)], &key, opts).unwrap();
        (img, protected, key)
    }

    fn psp_coeff_transform(
        protected: &crate::ProtectedImage,
        t: &Transformation,
    ) -> (Vec<u8>, PublicParams) {
        let coeff = CoeffImage::decode(&protected.bytes).unwrap();
        let transformed = t.apply_to_coeff(&coeff).unwrap();
        let bytes = transformed
            .encode(&puppies_jpeg::EncodeOptions::default())
            .unwrap();
        let mut params = protected.params.clone();
        params.transformation = Some(t.clone());
        (bytes, params)
    }

    #[test]
    fn rotations_and_flips_recover_exactly() {
        for t in [
            Transformation::Rotate90,
            Transformation::Rotate180,
            Transformation::Rotate270,
            Transformation::FlipHorizontal,
            Transformation::FlipVertical,
        ] {
            let opts = ProtectOptions::default();
            let (img, protected, key) = protect_with(&opts);
            let (bytes, params) = psp_coeff_transform(&protected, &t);
            let recovered = recover_transformed(&bytes, &params, &key.grant_all()).unwrap();
            let reference_coeff = CoeffImage::from_rgb(&img, 75);
            let reference = t.apply_to_coeff(&reference_coeff).unwrap().to_rgb();
            assert_eq!(recovered, reference, "{t:?} must be exact");
        }
    }

    #[test]
    fn aligned_crop_recovers_exactly() {
        let opts = ProtectOptions::default();
        let (img, protected, key) = protect_with(&opts);
        // Crop cuts through the ROI (ROI is 16..48; crop keeps 24..64).
        let t = Transformation::Crop(Rect::new(24, 24, 40, 40));
        let (bytes, params) = psp_coeff_transform(&protected, &t);
        let recovered = recover_transformed(&bytes, &params, &key.grant_all()).unwrap();
        let reference = t
            .apply_to_coeff(&CoeffImage::from_rgb(&img, 75))
            .unwrap()
            .to_rgb();
        assert_eq!(recovered, reference, "cropped ROI must recover exactly");
    }

    #[test]
    fn crop_outside_roi_needs_no_keys() {
        let opts = ProtectOptions::default();
        let (img, protected, _key) = protect_with(&opts);
        let t = Transformation::Crop(Rect::new(0, 0, 16, 16)); // misses ROI
        let (bytes, params) = psp_coeff_transform(&protected, &t);
        let recovered =
            recover_transformed(&bytes, &params, &crate::keys::KeyGrant::empty()).unwrap();
        let reference = t
            .apply_to_coeff(&CoeffImage::from_rgb(&img, 75))
            .unwrap()
            .to_rgb();
        assert_eq!(recovered, reference);
    }

    #[test]
    fn recompression_recovers_approximately() {
        let opts = ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium);
        let (img, protected, key) = protect_with(&opts);
        let t = Transformation::Recompress { quality: 50 };
        let (bytes, params) = psp_coeff_transform(&protected, &t);
        let recovered = recover_transformed(&bytes, &params, &key.grant_all()).unwrap();
        let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
        let psnr = psnr_rgb(&recovered, &reference);
        assert!(psnr > 24.0, "recompression recovery too lossy: {psnr} dB");
    }

    #[test]
    fn scaling_recovers_via_shadow() {
        // Transform-friendly profile: bounded perturbation + WInd makes the
        // shadow path behave like the paper's Fig. 16: recovery quality is
        // limited by interpolation error, not by the perturbation, landing
        // near 30 dB for a 2x downscale. A single key draw swings the PSNR
        // by several dB (the perturbation magnitudes are random), so the
        // assertion averages a few fixed seeds instead of pinning one
        // stream of one RNG implementation.
        let opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly());
        let t = Transformation::Scale {
            width: 32,
            height: 32,
            filter: puppies_transform::ScaleFilter::Bilinear,
        };
        let img = test_image();
        let reference = t
            .apply_to_rgb(&CoeffImage::from_rgb(&img, 75).to_rgb())
            .unwrap();
        let mut psnr_sum = 0.0;
        let mut baseline_sum = 0.0;
        let seeds = [3u8, 8, 21];
        for seed in seeds {
            let key = OwnerKey::from_seed([seed; 32]);
            let protected = protect(&img, &[Rect::new(16, 16, 32, 32)], &key, &opts).unwrap();
            let perturbed_rgb = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
            let scaled = t.apply_to_rgb(&perturbed_rgb).unwrap();
            let mut params = protected.params.clone();
            params.transformation = Some(t.clone());
            let recovered = recover_pixel_domain(&scaled, &t, &params, &key.grant_all()).unwrap();
            let psnr = psnr_rgb(&recovered, &reference);
            let baseline = psnr_rgb(&scaled, &reference);
            assert!(
                psnr > baseline + 5.0,
                "seed {seed}: shadow recovery {psnr} dB vs baseline {baseline} dB"
            );
            psnr_sum += psnr;
            baseline_sum += baseline;
        }
        let mean = psnr_sum / seeds.len() as f64;
        let mean_baseline = baseline_sum / seeds.len() as f64;
        assert!(
            mean > mean_baseline + 8.0 && mean > 28.0,
            "mean shadow recovery {mean} dB vs baseline {mean_baseline} dB"
        );
    }

    #[test]
    fn full_range_profile_shadow_is_limited_by_clamping() {
        // A negative result the paper does not report: with the paper's own
        // full-range medium profile, pixel clamping at the PSP destroys so
        // much information that pixel-domain shadow recovery barely helps.
        // The transform-friendly profile is the fix. EXPERIMENTS.md
        // discusses this in the Fig. 16 section.
        fn recovery_psnr(opts: &ProtectOptions) -> f64 {
            let (img, protected, key) = protect_with(opts);
            let t = Transformation::Scale {
                width: 32,
                height: 32,
                filter: puppies_transform::ScaleFilter::Bilinear,
            };
            let perturbed_rgb = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
            let scaled = t.apply_to_rgb(&perturbed_rgb).unwrap();
            let mut params = protected.params.clone();
            params.transformation = Some(t.clone());
            let recovered = recover_pixel_domain(&scaled, &t, &params, &key.grant_all()).unwrap();
            let reference = t
                .apply_to_rgb(&CoeffImage::from_rgb(&img, 75).to_rgb())
                .unwrap();
            psnr_rgb(&recovered, &reference)
        }
        let full = recovery_psnr(&ProtectOptions::new(
            Scheme::Compression,
            PrivacyLevel::Medium,
        ));
        let friendly = recovery_psnr(&ProtectOptions::from_profile(
            PerturbProfile::transform_friendly(),
        ));
        assert!(
            friendly > full + 10.0,
            "transform-friendly {friendly} dB should dominate full-range {full} dB"
        );
        assert!(
            full < 25.0,
            "full-range clamping loss should be visible: {full}"
        );
    }

    #[test]
    fn shadow_planes_zero_outside_roi() {
        let opts = ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium);
        let (_, protected, key) = protect_with(&opts);
        let shadows = shadow_planes(&protected.params, &key.grant_all(), 3).unwrap();
        for s in &shadows {
            assert_eq!(s.get(0, 0), 0.0);
            assert_eq!(s.get(63, 63), 0.0);
        }
        let (lo, hi) = shadows[0].min_max();
        assert!(hi > 1.0 || lo < -1.0, "shadow should be nonzero in ROI");
    }

    #[test]
    fn empty_grant_shadow_is_zero() {
        let opts = ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium);
        let (_, protected, _) = protect_with(&opts);
        let shadows = shadow_planes(&protected.params, &crate::keys::KeyGrant::empty(), 3).unwrap();
        for s in &shadows {
            let (lo, hi) = s.min_max();
            assert_eq!((lo, hi), (0.0, 0.0));
        }
    }

    #[test]
    fn none_transformation_falls_back_to_scenario1() {
        let opts = ProtectOptions::default();
        let (img, protected, key) = protect_with(&opts);
        let recovered =
            recover_transformed(&protected.bytes, &protected.params, &key.grant_all()).unwrap();
        assert_eq!(recovered, CoeffImage::from_rgb(&img, 75).to_rgb());
    }
}
