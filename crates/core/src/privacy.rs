//! Privacy levels and the Table IV parameter mapping.

use crate::matrix::RangeMatrix;
/// A user-selectable privacy level (Table IV of the paper), or a custom
/// `(mR, K)` pair for finer control (the paper leaves finer granularity to
/// future work; [`PrivacyLevel::Custom`] implements it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrivacyLevel {
    /// `mR = 1, K = 1`: only the DC coefficient is randomized.
    Low,
    /// `mR = 32, K = 8`: the default trade-off the paper recommends and
    /// uses for all storage/attack experiments.
    #[default]
    Medium,
    /// `mR = 2048, K = 64`: every coefficient perturbed over the full
    /// range.
    High,
    /// Explicit parameters.
    Custom {
        /// Minimum perturbation range for the highest perturbed frequency.
        m_r: u16,
        /// Number of (zigzag-ordered) coefficients to perturb.
        k: u8,
    },
}

impl PrivacyLevel {
    /// The `(mR, K)` pair of Table IV.
    pub fn parameters(self) -> (u16, u8) {
        match self {
            PrivacyLevel::Low => (1, 1),
            PrivacyLevel::Medium => (32, 8),
            PrivacyLevel::High => (2048, 64),
            PrivacyLevel::Custom { m_r, k } => (m_r, k.min(64)),
        }
    }

    /// Generates the privacy range matrix `Q'` for this level
    /// (Algorithm 3).
    pub fn range_matrix(self) -> RangeMatrix {
        let (m_r, k) = self.parameters();
        RangeMatrix::generate(m_r, k)
    }

    /// A short human-readable name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            PrivacyLevel::Low => "low",
            PrivacyLevel::Medium => "medium",
            PrivacyLevel::High => "high",
            PrivacyLevel::Custom { .. } => "custom",
        }
    }

    /// The three levels of Table IV, for parameter sweeps.
    pub const TABLE_IV: [PrivacyLevel; 3] =
        [PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_parameters() {
        assert_eq!(PrivacyLevel::Low.parameters(), (1, 1));
        assert_eq!(PrivacyLevel::Medium.parameters(), (32, 8));
        assert_eq!(PrivacyLevel::High.parameters(), (2048, 64));
    }

    #[test]
    fn custom_clamps_k() {
        assert_eq!(
            PrivacyLevel::Custom { m_r: 16, k: 200 }.parameters(),
            (16, 64)
        );
    }

    #[test]
    fn default_is_medium() {
        assert_eq!(PrivacyLevel::default(), PrivacyLevel::Medium);
    }

    #[test]
    fn range_matrix_delegates_to_algorithm3() {
        let q = PrivacyLevel::Medium.range_matrix();
        assert_eq!(q, RangeMatrix::generate(32, 8));
    }
}
