//! PuPPIeS: transformation-supported personalized privacy-preserving
//! partial image sharing (He et al., DSN 2016).
//!
//! The sender marks privacy-sensitive regions of interest (ROIs) in a JPEG
//! image, perturbs the quantized DCT coefficients of those regions with
//! secret matrices, and uploads the result to an untrusted photo-sharing
//! platform (PSP). The PSP stores and transforms the image with completely
//! standard tooling; authorized receivers holding the private matrices
//! recover the protected regions exactly — even after PSP-side
//! transformations, via the *shadow ROI* mechanism.
//!
//! Crate layout, following the paper:
//!
//! - [`matrix`] — private matrix `P`, range matrix `Q'` (Algorithm 3) and
//!   their ring arithmetic (Lemma III.1)
//! - [`keys`] — owner key material and deterministic matrix derivation
//! - [`privacy`] — privacy levels and the `(mR, K)` mapping (Table IV)
//! - [`roi`] — ROI plans: block alignment, disjoint decomposition,
//!   per-region key assignment
//! - [`perturb`] — the four schemes PuPPIeS-N/-B/-C/-Z (§IV-B) and exact
//!   recovery
//! - [`params`] — the public parameters stored alongside the image
//! - [`shadow`] — reconstruction after PSP-side transformations (§IV-C)
//! - [`analysis`] — secure-bit accounting for the brute-force analysis
//!   (§VI-A)
//! - [`protect`](crate::protect()) / [`mod@protect`] — the high-level sender/receiver API tying it together
//!
//! # Example
//!
//! ```
//! use puppies_core::{OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
//! use puppies_image::{Rect, Rgb, RgbImage};
//!
//! // The sender protects one region of a photo.
//! let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 3, y as u8 * 3, 40));
//! let key = OwnerKey::from_seed([7u8; 32]);
//! let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
//! let protected =
//!     puppies_core::protect(&img, &[Rect::new(16, 16, 24, 24)], &key, &opts)?;
//!
//! // An authorized receiver recovers it exactly (bit-exact coefficients).
//! let recovered = puppies_core::recover(&protected, &key.grant_all())?;
//! assert_eq!(
//!     recovered.to_rgb(),
//!     puppies_jpeg::CoeffImage::from_rgb(&img, opts.quality).to_rgb()
//! );
//! # Ok::<(), puppies_core::PuppiesError>(())
//! ```

pub mod analysis;
pub mod keys;
pub mod matrix;
pub mod parallel;
pub mod params;
pub mod perturb;
pub mod privacy;
pub mod protect;
pub mod roi;
pub mod shadow;

pub use keys::{KeyGrant, MatrixId, OwnerKey};
pub use matrix::{PrivateMatrix, RangeMatrix};
pub use params::{PublicParams, RoiParams};
pub use perturb::{PerturbProfile, PerturbRecord, RangeSpec, Scheme, ZeroIndex};
pub use privacy::PrivacyLevel;
pub use protect::{
    protect, protect_coeff, protect_gray, recover, recover_coeff, recover_strict, ProtectOptions,
    ProtectedImage,
};
pub use roi::RoiPlan;

use std::fmt;

/// Errors produced by PuPPIeS operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum PuppiesError {
    /// An ROI is empty or outside the image.
    BadRoi {
        /// The offending rectangle.
        rect: puppies_image::Rect,
        /// Image width.
        width: u32,
        /// Image height.
        height: u32,
    },
    /// The receiver lacks the private matrix for a region it asked to
    /// decrypt.
    MissingKey {
        /// Identifier of the absent matrix.
        matrix: MatrixId,
    },
    /// Public parameters are inconsistent with the image (wrong size,
    /// overlapping ROIs, bad ZInd entries...).
    BadParams(String),
    /// An underlying JPEG codec failure.
    Jpeg(puppies_jpeg::JpegError),
    /// An underlying transformation failure.
    Transform(puppies_transform::TransformError),
}

impl fmt::Display for PuppiesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PuppiesError::BadRoi {
                rect,
                width,
                height,
            } => write!(f, "ROI {rect:?} invalid for {width}x{height} image"),
            PuppiesError::MissingKey { matrix } => {
                write!(f, "no private matrix {matrix:?} available")
            }
            PuppiesError::BadParams(m) => write!(f, "bad public parameters: {m}"),
            PuppiesError::Jpeg(e) => write!(f, "jpeg error: {e}"),
            PuppiesError::Transform(e) => write!(f, "transform error: {e}"),
        }
    }
}

impl std::error::Error for PuppiesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PuppiesError::Jpeg(e) => Some(e),
            PuppiesError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<puppies_jpeg::JpegError> for PuppiesError {
    fn from(e: puppies_jpeg::JpegError) -> Self {
        PuppiesError::Jpeg(e)
    }
}

impl From<puppies_transform::TransformError> for PuppiesError {
    fn from(e: puppies_transform::TransformError) -> Self {
        PuppiesError::Transform(e)
    }
}

/// Convenient result alias for PuPPIeS operations.
pub type Result<T> = std::result::Result<T, PuppiesError>;
