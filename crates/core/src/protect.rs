//! The high-level sender/receiver API: protect an image, share keys,
//! recover regions.

use crate::keys::{KeyGrant, OwnerKey};
use crate::params::{PublicParams, RoiParams};
use crate::perturb::{perturb_rois, recover_rois, PerturbProfile, RoiKeys, Scheme};
use crate::privacy::PrivacyLevel;
use crate::roi::RoiPlan;
use crate::{PuppiesError, Result};
use puppies_image::{Rect, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions, HuffmanMode};

/// Options controlling [`protect`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProtectOptions {
    /// Scheme, AC ranges and DC range.
    pub profile: PerturbProfile,
    /// JPEG quality of the uploaded image (default 75).
    pub quality: u8,
    /// Huffman strategy; optimized tables are what make PuPPIeS-C/-Z small
    /// (default optimized).
    pub huffman: HuffmanMode,
    /// Sender-chosen image id scoping the matrix derivation.
    pub image_id: u64,
}

impl ProtectOptions {
    /// The paper's configuration: `scheme` at privacy `level`, defaults
    /// elsewhere.
    pub fn new(scheme: Scheme, level: PrivacyLevel) -> Self {
        ProtectOptions {
            profile: PerturbProfile::paper(scheme, level),
            quality: 75,
            huffman: HuffmanMode::Optimized,
            image_id: 0,
        }
    }

    /// Options from an explicit profile.
    pub fn from_profile(profile: PerturbProfile) -> Self {
        ProtectOptions {
            profile,
            quality: 75,
            huffman: HuffmanMode::Optimized,
            image_id: 0,
        }
    }

    /// Sets the image id (builder style).
    pub fn with_image_id(mut self, id: u64) -> Self {
        self.image_id = id;
        self
    }

    /// Sets the JPEG quality (builder style).
    pub fn with_quality(mut self, quality: u8) -> Self {
        self.quality = quality;
        self
    }

    /// Sets the Huffman strategy (builder style).
    pub fn with_huffman(mut self, huffman: HuffmanMode) -> Self {
        self.huffman = huffman;
        self
    }
}

impl Default for ProtectOptions {
    fn default() -> Self {
        ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium)
    }
}

/// A protected image as uploaded to the PSP: the perturbed JPEG bytes plus
/// the public parameters.
#[derive(Debug, Clone)]
pub struct ProtectedImage {
    /// Entropy-coded perturbed JPEG.
    pub bytes: Vec<u8>,
    /// Public parameters (stored next to the image, e.g. in its
    /// description field).
    pub params: PublicParams,
}

impl ProtectedImage {
    /// Total public-side footprint in bytes: image + parameters. This is
    /// the "public part" quantity of Figs. 17–18.
    pub fn public_len(&self) -> usize {
        self.bytes.len() + self.params.encoded_len()
    }
}

/// Protects `rois` of `img` with matrices derived from `key`, producing
/// the upload bundle.
///
/// Raw rectangles are aligned and made disjoint via [`RoiPlan`]; each
/// resulting region gets its own matrix pair per component, so regions can
/// be shared independently (personalized privacy, challenge C3).
///
/// # Errors
/// Fails if an ROI is invalid or encoding fails.
pub fn protect(
    img: &RgbImage,
    rois: &[Rect],
    key: &OwnerKey,
    opts: &ProtectOptions,
) -> Result<ProtectedImage> {
    let _span = puppies_obs::span("core.protect", "core");
    let mut coeff = CoeffImage::from_rgb(img, opts.quality);
    let params = protect_coeff(&mut coeff, rois, key, opts)?;
    let mut enc_opts = EncodeOptions::default();
    enc_opts.huffman = opts.huffman;
    let bytes = coeff.encode(&enc_opts)?;
    Ok(ProtectedImage { bytes, params })
}

/// Grayscale variant of [`protect`] (the paper's footnote 4: a
/// monochromatic image has only the Y layer; each layer is processed
/// independently, so one component simply means one matrix pair per ROI).
///
/// # Errors
/// Fails if an ROI is invalid or encoding fails.
pub fn protect_gray(
    img: &puppies_image::GrayImage,
    rois: &[Rect],
    key: &OwnerKey,
    opts: &ProtectOptions,
) -> Result<ProtectedImage> {
    let _span = puppies_obs::span("core.protect", "core");
    let mut coeff = CoeffImage::from_gray(img, opts.quality);
    let params = protect_coeff(&mut coeff, rois, key, opts)?;
    let mut enc_opts = EncodeOptions::default();
    enc_opts.huffman = opts.huffman;
    let bytes = coeff.encode(&enc_opts)?;
    Ok(ProtectedImage { bytes, params })
}

/// Coefficient-level variant of [`protect`]: perturbs `coeff` in place and
/// returns the public parameters. Useful when the caller manages encoding
/// (e.g. the storage experiments that measure both Huffman modes).
///
/// # Errors
/// Fails if an ROI is invalid.
pub fn protect_coeff(
    coeff: &mut CoeffImage,
    rois: &[Rect],
    key: &OwnerKey,
    opts: &ProtectOptions,
) -> Result<PublicParams> {
    let plan = RoiPlan::from_rects(coeff.width(), coeff.height(), rois)?;
    let ncomp = coeff.components().len();
    let grant = key.grant_all();
    let keys: Vec<Vec<RoiKeys>> = (0..plan.regions().len())
        .map(|idx| {
            (0..ncomp)
                .map(|c| RoiKeys::from_grant(&grant, opts.image_id, idx as u16, c as u8))
                .collect::<Result<_>>()
        })
        .collect::<Result<_>>()?;
    let records = perturb_rois(coeff, plan.regions(), &keys, &opts.profile)?;
    let roi_params = plan
        .regions()
        .iter()
        .zip(records)
        .enumerate()
        .map(|(idx, (&rect, record))| RoiParams {
            index: idx as u16,
            rect,
            profile: opts.profile,
            zind: record.zind,
            wind: record.wind,
        })
        .collect();
    Ok(PublicParams::new(
        opts.image_id,
        coeff.width(),
        coeff.height(),
        opts.quality,
        roi_params,
    ))
}

/// Recovers every region the grant covers from an untransformed protected
/// image (scenario 1 of §III-C). Regions not covered stay perturbed — this
/// is the partial-decryption behaviour of the Einstein/Chaplin example
/// (Fig. 3).
///
/// # Errors
/// Fails on undecodable bytes; a missing key is *not* an error, the region
/// simply stays perturbed. Use [`recover_strict`] to require full
/// coverage. If the parameters record a PSP transformation, use
/// [`crate::shadow::recover_transformed`] instead.
pub fn recover(protected: &ProtectedImage, grant: &KeyGrant) -> Result<CoeffImage> {
    let _span = puppies_obs::span("core.recover", "core");
    if protected.params.transformation.is_some() {
        return Err(PuppiesError::BadParams(
            "image was transformed at the PSP; use shadow::recover_transformed".into(),
        ));
    }
    let mut coeff = CoeffImage::decode(&protected.bytes)?;
    recover_coeff(&mut coeff, &protected.params, grant)?;
    Ok(coeff)
}

/// Like [`recover`] but fails if any region cannot be decrypted.
///
/// # Errors
/// Additionally fails with [`PuppiesError::MissingKey`] when the grant does
/// not cover a region.
pub fn recover_strict(protected: &ProtectedImage, grant: &KeyGrant) -> Result<CoeffImage> {
    for roi in &protected.params.rois {
        if !grant.covers(protected.params.image_id, roi.index) {
            let id = crate::keys::MatrixId {
                image: protected.params.image_id,
                roi: roi.index,
                kind: crate::keys::MatrixKind::Dc,
                component: 0,
            };
            return Err(PuppiesError::MissingKey { matrix: id });
        }
    }
    recover(protected, grant)
}

/// In-place recovery over a decoded coefficient image, skipping regions the
/// grant does not cover.
///
/// # Errors
/// Fails if parameters disagree with the image geometry.
pub fn recover_coeff(
    coeff: &mut CoeffImage,
    params: &PublicParams,
    grant: &KeyGrant,
) -> Result<()> {
    let ncomp = coeff.components().len();
    let covered: Vec<_> = params
        .rois
        .iter()
        .filter(|roi| grant.covers(params.image_id, roi.index))
        .collect();
    let keys: Vec<Vec<RoiKeys>> = covered
        .iter()
        .map(|roi| {
            (0..ncomp)
                .map(|c| RoiKeys::from_grant(grant, params.image_id, roi.index, c as u8))
                .collect::<Result<_>>()
        })
        .collect::<Result<_>>()?;
    let rois: Vec<_> = covered
        .iter()
        .map(|roi| (roi.rect, &roi.profile, &roi.zind))
        .collect();
    recover_rois(coeff, &rois, &keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::metrics::psnr_rgb;
    use puppies_image::Rgb;

    fn test_image() -> RgbImage {
        RgbImage::from_fn(96, 64, |x, y| {
            Rgb::new(
                ((x * 3 + y * 5) % 256) as u8,
                ((x * 2 + y * 7) % 256) as u8,
                ((x + y * 2) % 256) as u8,
            )
        })
    }

    #[test]
    fn owner_recovers_exactly() {
        let img = test_image();
        let key = OwnerKey::from_seed([1u8; 32]);
        let opts = ProtectOptions::default();
        let protected = protect(&img, &[Rect::new(16, 16, 32, 32)], &key, &opts).unwrap();
        let recovered = recover(&protected, &key.grant_all()).unwrap();
        let reference = CoeffImage::from_rgb(&img, opts.quality);
        assert_eq!(recovered, reference);
    }

    #[test]
    fn perturbed_region_is_visually_destroyed() {
        let img = test_image();
        let key = OwnerKey::from_seed([1u8; 32]);
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::High);
        let rect = Rect::new(0, 0, 48, 48);
        let protected = protect(&img, &[rect], &key, &opts).unwrap();
        let perturbed = CoeffImage::decode(&protected.bytes).unwrap().to_rgb();
        let reference = CoeffImage::from_rgb(&img, opts.quality).to_rgb();
        let roi_orig = reference.crop(rect).unwrap();
        let roi_pert = perturbed.crop(rect).unwrap();
        let psnr = psnr_rgb(&roi_orig, &roi_pert);
        assert!(psnr < 15.0, "perturbed ROI too similar: {psnr} dB");
    }

    #[test]
    fn unauthorized_receiver_sees_perturbed_roi() {
        let img = test_image();
        let key = OwnerKey::from_seed([1u8; 32]);
        let opts = ProtectOptions::default();
        let rect = Rect::new(16, 16, 32, 32);
        let protected = protect(&img, &[rect], &key, &opts).unwrap();
        let recovered = recover(&protected, &KeyGrant::empty()).unwrap();
        let reference = CoeffImage::from_rgb(&img, opts.quality);
        assert_ne!(recovered, reference, "no key must not reveal the ROI");
        let rec_rgb = recovered.to_rgb();
        let ref_rgb = reference.to_rgb();
        let outside = Rect::new(56, 0, 40, 16);
        assert_eq!(
            rec_rgb.crop(outside).unwrap(),
            ref_rgb.crop(outside).unwrap()
        );
    }

    #[test]
    fn per_roi_grants_decrypt_independently() {
        // The Einstein/Chaplin example: two faces, two receivers, each sees
        // only their region.
        let img = test_image();
        let key = OwnerKey::from_seed([2u8; 32]);
        let opts = ProtectOptions::default().with_image_id(99);
        let left = Rect::new(0, 16, 24, 24);
        let right = Rect::new(64, 16, 24, 24);
        let protected = protect(&img, &[left, right], &key, &opts).unwrap();
        assert_eq!(protected.params.rois.len(), 2);

        let reference = CoeffImage::from_rgb(&img, opts.quality);
        let grant0 = key.grant_rois(99, &[0]);
        let rec0 = recover(&protected, &grant0).unwrap();
        let r0 = protected.params.rois[0].rect;
        let r1 = protected.params.rois[1].rect;
        assert_eq!(
            rec0.to_rgb().crop(r0).unwrap(),
            reference.to_rgb().crop(r0).unwrap(),
            "granted region decrypts"
        );
        assert_ne!(
            rec0.to_rgb().crop(r1).unwrap(),
            reference.to_rgb().crop(r1).unwrap(),
            "other region stays hidden"
        );
        assert!(matches!(
            recover_strict(&protected, &grant0),
            Err(PuppiesError::MissingKey { .. })
        ));
        assert!(recover_strict(&protected, &key.grant_all()).is_ok());
    }

    #[test]
    fn params_roundtrip_via_wire_still_recovers() {
        let img = test_image();
        let key = OwnerKey::from_seed([3u8; 32]);
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::High);
        let protected = protect(&img, &[Rect::new(8, 8, 40, 40)], &key, &opts).unwrap();
        let wire = protected.params.to_bytes();
        let params = PublicParams::from_bytes(&wire).unwrap();
        let mut coeff = CoeffImage::decode(&protected.bytes).unwrap();
        recover_coeff(&mut coeff, &params, &key.grant_all()).unwrap();
        assert_eq!(coeff, CoeffImage::from_rgb(&img, opts.quality));
    }

    #[test]
    fn all_schemes_protect_and_recover_via_bytes() {
        let img = test_image();
        let key = OwnerKey::from_seed([4u8; 32]);
        for scheme in [
            Scheme::Naive,
            Scheme::Base,
            Scheme::Compression,
            Scheme::Zero,
        ] {
            let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium);
            let protected = protect(&img, &[Rect::new(24, 8, 32, 40)], &key, &opts).unwrap();
            let recovered = recover(&protected, &key.grant_all()).unwrap();
            assert_eq!(
                recovered,
                CoeffImage::from_rgb(&img, opts.quality),
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn transform_friendly_profile_roundtrips() {
        let img = test_image();
        let key = OwnerKey::from_seed([7u8; 32]);
        let opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly());
        let protected = protect(&img, &[Rect::new(8, 8, 32, 32)], &key, &opts).unwrap();
        let recovered = recover(&protected, &key.grant_all()).unwrap();
        assert_eq!(recovered, CoeffImage::from_rgb(&img, opts.quality));
    }

    #[test]
    fn transformed_image_requires_shadow_path() {
        let img = test_image();
        let key = OwnerKey::from_seed([5u8; 32]);
        let mut protected = protect(
            &img,
            &[Rect::new(8, 8, 16, 16)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        protected.params.transformation = Some(puppies_transform::Transformation::Rotate180);
        assert!(matches!(
            recover(&protected, &key.grant_all()),
            Err(PuppiesError::BadParams(_))
        ));
    }

    #[test]
    fn grayscale_images_protect_and_recover() {
        let img = test_image().to_gray();
        let key = OwnerKey::from_seed([21u8; 32]);
        let opts = ProtectOptions::default();
        let protected = protect_gray(&img, &[Rect::new(16, 16, 32, 32)], &key, &opts).unwrap();
        let perturbed = CoeffImage::decode(&protected.bytes).unwrap();
        assert!(perturbed.is_gray());
        let reference = CoeffImage::from_gray(&img, opts.quality);
        assert_ne!(perturbed, reference);
        let recovered = recover(&protected, &key.grant_all()).unwrap();
        assert_eq!(recovered, reference);
        // A keyless receiver stays locked out.
        let blocked = recover(&protected, &KeyGrant::empty()).unwrap();
        assert_ne!(blocked, reference);
    }

    #[test]
    fn public_len_accounts_params() {
        let img = test_image();
        let key = OwnerKey::from_seed([6u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(8, 8, 16, 16)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        // `encoded_len` must agree with the actual wire encoding, so
        // `public_len` is a real storage figure (Figs. 17–18), not an
        // estimate.
        assert_eq!(
            protected.params.encoded_len(),
            protected.params.to_bytes().len()
        );
        assert_eq!(
            protected.public_len(),
            protected.bytes.len() + protected.params.to_bytes().len()
        );
        // The parameter share is nonzero, and a second ROI makes the
        // parameter blob strictly larger.
        assert!(protected.public_len() > protected.bytes.len());
        let two = protect(
            &img,
            &[Rect::new(8, 8, 16, 16), Rect::new(56, 40, 16, 16)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        assert!(two.params.encoded_len() > protected.params.encoded_len());
    }
}
