//! Re-export of the shared worker-pool layer ([`puppies_parallel`]).
//!
//! The pool itself lives in its own crate so that `puppies-jpeg` (which
//! `puppies-core` depends on) can use the same pool for its DCT and
//! entropy-coding bands without a dependency cycle. Core callers reach it
//! as `puppies_core::parallel`; see [`WorkerPool`] for the execution
//! model and [`with_pool`] for scoping a pool to a closure.

pub use puppies_parallel::*;
