//! Public parameters stored on the PSP next to the perturbed image.
//!
//! §IV-B: "parameters R, mR and K are public, and are stored together with
//! the perturbed image"; PuPPIeS-Z adds the new-zero index `ZInd`, and our
//! shadow extension adds the wrap index `WInd` (see [`crate::perturb`]).
//! The receiver additionally needs the id of the private matrix used per
//! region and (scenario 2) the transformation the PSP applied. None of
//! this is secret — leaking `ZInd` "does not break users' privacy"
//! (§IV-B.4).
//!
//! A compact binary encoding is provided so the storage-overhead
//! experiments (Fig. 18) measure real bytes rather than debug formats.

use crate::perturb::{PerturbProfile, RangeSpec, Scheme, ZeroEntry, ZeroIndex};
use crate::{PuppiesError, Result};
use puppies_image::Rect;
use puppies_transform::Transformation;
/// Per-ROI public parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RoiParams {
    /// Index of the region in the image's ROI plan (keys reference it).
    pub index: u16,
    /// The block-aligned region.
    pub rect: Rect,
    /// Scheme, AC ranges and DC range used for this region.
    pub profile: PerturbProfile,
    /// New-zero index (only non-empty for PuPPIeS-Z).
    pub zind: ZeroIndex,
    /// Wrap index for shadow reconstruction (extension).
    pub wind: ZeroIndex,
}

impl RoiParams {
    /// The privacy range matrix this region was perturbed with.
    pub fn range_matrix(&self) -> crate::matrix::RangeMatrix {
        self.profile.range_matrix()
    }
}

/// Public parameters for one protected image.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicParams {
    /// Sender-chosen image identifier (scopes matrix ids).
    pub image_id: u64,
    /// Original image width (receivers need it to mirror transformations).
    pub width: u32,
    /// Original image height.
    pub height: u32,
    /// JPEG quality the image was encoded at.
    pub quality: u8,
    /// Per-region parameters.
    pub rois: Vec<RoiParams>,
    /// The transformation the PSP applied after upload, if any
    /// (scenario 2 of §III-C; the PSP records it for receivers).
    pub transformation: Option<Transformation>,
}

impl PublicParams {
    /// Creates parameters with no transformation applied.
    pub fn new(image_id: u64, width: u32, height: u32, quality: u8, rois: Vec<RoiParams>) -> Self {
        PublicParams {
            image_id,
            width,
            height,
            quality,
            rois,
            transformation: None,
        }
    }

    /// Serializes to the compact binary wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(MAGIC);
        w.u64(self.image_id);
        w.u32(self.width);
        w.u32(self.height);
        w.u8(self.quality);
        w.u16(self.rois.len() as u16);
        for roi in &self.rois {
            w.u16(roi.index);
            w.u32(roi.rect.x);
            w.u32(roi.rect.y);
            w.u32(roi.rect.w);
            w.u32(roi.rect.h);
            w.u8(match roi.profile.scheme {
                Scheme::Naive => 0,
                Scheme::Base => 1,
                Scheme::Compression => 2,
                Scheme::Zero => 3,
            });
            match roi.profile.range {
                RangeSpec::Algorithm3 { m_r, k } => {
                    w.u8(0);
                    w.u16(m_r);
                    w.u8(k);
                }
                RangeSpec::Flat { range, k } => {
                    w.u8(1);
                    w.u16(range);
                    w.u8(k);
                }
            }
            w.u16(roi.profile.dc_range);
            write_index(&mut w, &roi.zind);
            write_index(&mut w, &roi.wind);
        }
        match &self.transformation {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                let body = encode_transformation(t);
                w.u16(body.len() as u16);
                w.bytes(&body);
            }
        }
        w.out
    }

    /// Parses the compact binary wire form.
    ///
    /// # Errors
    /// Returns [`PuppiesError::BadParams`] on truncation or bad tags.
    pub fn from_bytes(data: &[u8]) -> Result<PublicParams> {
        let mut r = Reader { data, pos: 0 };
        if r.u32()? != MAGIC {
            return Err(PuppiesError::BadParams("bad magic".into()));
        }
        let image_id = r.u64()?;
        let width = r.u32()?;
        let height = r.u32()?;
        let quality = r.u8()?;
        let nrois = r.u16()? as usize;
        let mut rois = Vec::with_capacity(nrois.min(1024));
        for _ in 0..nrois {
            let index = r.u16()?;
            let rect = Rect::new(r.u32()?, r.u32()?, r.u32()?, r.u32()?);
            let scheme = match r.u8()? {
                0 => Scheme::Naive,
                1 => Scheme::Base,
                2 => Scheme::Compression,
                3 => Scheme::Zero,
                other => return Err(PuppiesError::BadParams(format!("bad scheme tag {other}"))),
            };
            let range = match r.u8()? {
                0 => RangeSpec::Algorithm3 {
                    m_r: r.u16()?,
                    k: r.u8()?,
                },
                1 => RangeSpec::Flat {
                    range: r.u16()?,
                    k: r.u8()?,
                },
                other => return Err(PuppiesError::BadParams(format!("bad range tag {other}"))),
            };
            let dc_range = r.u16()?;
            let zind = read_index(&mut r)?;
            let wind = read_index(&mut r)?;
            rois.push(RoiParams {
                index,
                rect,
                profile: PerturbProfile {
                    scheme,
                    range,
                    dc_range,
                },
                zind,
                wind,
            });
        }
        let transformation = match r.u8()? {
            0 => None,
            1 => {
                let len = r.u16()? as usize;
                let body = r.slice(len)?;
                Some(decode_transformation(body)?)
            }
            other => {
                return Err(PuppiesError::BadParams(format!(
                    "bad transform tag {other}"
                )))
            }
        };
        Ok(PublicParams {
            image_id,
            width,
            height,
            quality,
            rois,
            transformation,
        })
    }

    /// Encoded size in bytes — the public-parameter overhead Figs. 17–18
    /// account for.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

fn write_index(w: &mut Writer, idx: &ZeroIndex) {
    w.u32(idx.entries().len() as u32);
    for e in idx.entries() {
        // The paper packs an entry into 28 bits (2 layer + 16 block + 6
        // entry); we widen the block field to 32 bits because a
        // high-resolution whole-image ROI exceeds 65536 blocks.
        // ZeroIndex::encoded_bits still reports the paper's 28-bit
        // accounting for the Fig. 18 comparison.
        w.u8(((e.component & 0x3) << 6) | (e.coeff & 0x3F));
        w.u32(e.block);
    }
}

fn read_index(r: &mut Reader<'_>) -> Result<ZeroIndex> {
    let nz = r.u32()? as usize;
    if nz > r.data.len() {
        return Err(PuppiesError::BadParams("index length overflow".into()));
    }
    let mut entries = Vec::with_capacity(nz);
    for _ in 0..nz {
        let tag = r.u8()?;
        entries.push(ZeroEntry {
            component: (tag >> 6) & 0x3,
            coeff: tag & 0x3F,
            block: r.u32()?,
        });
    }
    Ok(ZeroIndex::from_entries(entries))
}

const MAGIC: u32 = 0x5055_5053; // "PUPS"

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.out.extend_from_slice(v);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn slice(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(PuppiesError::BadParams("truncated parameters".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.slice(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.slice(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.slice(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.slice(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.slice(4)?.try_into().unwrap()))
    }
}

fn encode_transformation(t: &Transformation) -> Vec<u8> {
    let mut w = Writer::default();
    match t {
        Transformation::Scale {
            width,
            height,
            filter,
        } => {
            w.u8(0);
            w.u32(*width);
            w.u32(*height);
            w.u8(match filter {
                puppies_transform::ScaleFilter::Nearest => 0,
                puppies_transform::ScaleFilter::Bilinear => 1,
                puppies_transform::ScaleFilter::Box => 2,
            });
        }
        Transformation::Crop(r) => {
            w.u8(1);
            w.u32(r.x);
            w.u32(r.y);
            w.u32(r.w);
            w.u32(r.h);
        }
        Transformation::Rotate90 => w.u8(2),
        Transformation::Rotate180 => w.u8(3),
        Transformation::Rotate270 => w.u8(4),
        Transformation::FlipHorizontal => w.u8(5),
        Transformation::FlipVertical => w.u8(6),
        Transformation::Recompress { quality } => {
            w.u8(7);
            w.u8(*quality);
        }
        Transformation::Filter(op) => {
            w.u8(8);
            match op {
                puppies_transform::FilterOp::Gaussian { sigma } => {
                    w.u8(0);
                    w.f32(*sigma);
                }
                puppies_transform::FilterOp::Sharpen => w.u8(1),
                puppies_transform::FilterOp::Box { side } => {
                    w.u8(2);
                    w.u32(*side);
                }
                _ => unreachable!("non_exhaustive FilterOp variant"),
            }
        }
        Transformation::Overlay { rect, color, alpha } => {
            w.u8(9);
            w.u32(rect.x);
            w.u32(rect.y);
            w.u32(rect.w);
            w.u32(rect.h);
            w.u8(color.r);
            w.u8(color.g);
            w.u8(color.b);
            w.f32(*alpha);
        }
        _ => unreachable!("non_exhaustive Transformation variant"),
    }
    w.out
}

fn decode_transformation(body: &[u8]) -> Result<Transformation> {
    let mut r = Reader { data: body, pos: 0 };
    let t = match r.u8()? {
        0 => Transformation::Scale {
            width: r.u32()?,
            height: r.u32()?,
            filter: match r.u8()? {
                0 => puppies_transform::ScaleFilter::Nearest,
                1 => puppies_transform::ScaleFilter::Bilinear,
                2 => puppies_transform::ScaleFilter::Box,
                other => return Err(PuppiesError::BadParams(format!("bad filter tag {other}"))),
            },
        },
        1 => Transformation::Crop(Rect::new(r.u32()?, r.u32()?, r.u32()?, r.u32()?)),
        2 => Transformation::Rotate90,
        3 => Transformation::Rotate180,
        4 => Transformation::Rotate270,
        5 => Transformation::FlipHorizontal,
        6 => Transformation::FlipVertical,
        7 => Transformation::Recompress { quality: r.u8()? },
        8 => Transformation::Filter(match r.u8()? {
            0 => puppies_transform::FilterOp::Gaussian { sigma: r.f32()? },
            1 => puppies_transform::FilterOp::Sharpen,
            2 => puppies_transform::FilterOp::Box { side: r.u32()? },
            other => return Err(PuppiesError::BadParams(format!("bad filter op {other}"))),
        }),
        9 => Transformation::Overlay {
            rect: Rect::new(r.u32()?, r.u32()?, r.u32()?, r.u32()?),
            color: puppies_image::Rgb::new(r.u8()?, r.u8()?, r.u8()?),
            alpha: r.f32()?,
        },
        other => {
            return Err(PuppiesError::BadParams(format!(
                "bad transformation tag {other}"
            )))
        }
    };
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacyLevel;

    fn sample_params() -> PublicParams {
        let zind = ZeroIndex::from_entries(vec![
            ZeroEntry {
                component: 0,
                block: 12,
                coeff: 5,
            },
            ZeroEntry {
                component: 2,
                block: 200_000,
                coeff: 63,
            },
        ]);
        let wind = ZeroIndex::from_entries(vec![ZeroEntry {
            component: 1,
            block: 7,
            coeff: 0,
        }]);
        PublicParams {
            image_id: 0xDEADBEEF,
            width: 96,
            height: 64,
            quality: 75,
            rois: vec![
                RoiParams {
                    index: 0,
                    rect: Rect::new(8, 16, 32, 24),
                    profile: PerturbProfile::paper(Scheme::Zero, PrivacyLevel::Medium),
                    zind,
                    wind,
                },
                RoiParams {
                    index: 1,
                    rect: Rect::new(48, 0, 16, 16),
                    profile: PerturbProfile::transform_friendly(),
                    zind: ZeroIndex::new(),
                    wind: ZeroIndex::new(),
                },
            ],
            transformation: Some(Transformation::Scale {
                width: 100,
                height: 50,
                filter: puppies_transform::ScaleFilter::Box,
            }),
        }
    }

    #[test]
    fn wire_roundtrip() {
        let p = sample_params();
        let bytes = p.to_bytes();
        let back = PublicParams::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn wire_roundtrip_without_transformation() {
        let mut p = sample_params();
        p.transformation = None;
        let back = PublicParams::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn all_transformations_roundtrip() {
        use puppies_transform::{FilterOp, ScaleFilter};
        let ts = vec![
            Transformation::Scale {
                width: 1,
                height: 2,
                filter: ScaleFilter::Nearest,
            },
            Transformation::Crop(Rect::new(0, 8, 16, 24)),
            Transformation::Rotate90,
            Transformation::Rotate180,
            Transformation::Rotate270,
            Transformation::FlipHorizontal,
            Transformation::FlipVertical,
            Transformation::Recompress { quality: 42 },
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.5 }),
            Transformation::Filter(FilterOp::Sharpen),
            Transformation::Filter(FilterOp::Box { side: 5 }),
            Transformation::Overlay {
                rect: Rect::new(1, 2, 3, 4),
                color: puppies_image::Rgb::new(9, 8, 7),
                alpha: 0.25,
            },
        ];
        for t in ts {
            let mut p = sample_params();
            p.transformation = Some(t.clone());
            let back = PublicParams::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(back.transformation, Some(t));
        }
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = sample_params().to_bytes();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(
                PublicParams::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_params().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(PublicParams::from_bytes(&bytes).is_err());
    }

    #[test]
    fn zind_and_wind_survive_packing() {
        let p = sample_params();
        let back = PublicParams::from_bytes(&p.to_bytes()).unwrap();
        let roi = &back.rois[0];
        assert!(roi.zind.contains(0, 12, 5));
        assert!(roi.zind.contains(2, 200_000, 63));
        assert!(roi.wind.contains(1, 7, 0));
    }

    #[test]
    fn encoded_len_counts_indices() {
        let mut small = sample_params();
        small.rois[0].zind = ZeroIndex::new();
        small.rois[0].wind = ZeroIndex::new();
        let big = sample_params();
        assert!(big.encoded_len() > small.encoded_len());
        // 5 bytes per entry on the wire, 3 entries total.
        assert_eq!(big.encoded_len() - small.encoded_len(), 3 * 5);
    }

    #[test]
    fn range_matrix_regenerates_from_params() {
        let p = sample_params();
        assert_eq!(
            p.rois[0].range_matrix(),
            crate::matrix::RangeMatrix::generate(32, 8)
        );
        assert_eq!(
            p.rois[1].range_matrix(),
            crate::matrix::RangeMatrix::flat(16, 6)
        );
    }
}
