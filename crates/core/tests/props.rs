//! Property-based invariants of the core algorithms beyond the facade
//! suite: range-matrix structure, key derivation, ROI planning.

use proptest::prelude::*;
use puppies_core::keys::{MatrixId, MatrixKind};
use puppies_core::matrix::RangeMatrix;
use puppies_core::{OwnerKey, RoiPlan};
use puppies_image::Rect;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn algorithm3_ranges_are_monotone_nonincreasing(m_r in 1u16..=2048, k in 0u8..=64) {
        let q = RangeMatrix::generate(m_r, k);
        let ranges = q.ranges_zigzag();
        for w in ranges.windows(2) {
            prop_assert!(w[0] >= w[1], "ranges must not grow with frequency: {:?}", ranges);
        }
        prop_assert!(ranges.iter().all(|&r| (1..=2048).contains(&r)));
        // Beyond slot K everything is untouched.
        for (i, &r) in ranges.iter().enumerate() {
            if i > k as usize {
                prop_assert_eq!(r, 1);
            }
        }
    }

    #[test]
    fn secure_bits_monotone_in_parameters(m1 in 1u16..=2048, m2 in 1u16..=2048, k in 1u8..=64) {
        let (lo, hi) = (m1.min(m2), m1.max(m2));
        let b_lo = RangeMatrix::generate(lo, k).ac_secure_bits();
        let b_hi = RangeMatrix::generate(hi, k).ac_secure_bits();
        prop_assert!(b_hi >= b_lo, "larger mR must not lose entropy");
    }

    #[test]
    fn flat_ranges_cover_exactly_k_slots(range in 2u16..=2048, k in 0u8..=63) {
        let q = RangeMatrix::flat(range, k);
        prop_assert_eq!(q.perturbed_ac_count(), k as usize);
    }

    #[test]
    fn key_derivation_collision_free_on_sample(
        seed in any::<[u8; 32]>(),
        ids in proptest::collection::hash_set((0u64..8, 0u16..8, 0u8..3, any::<bool>()), 2..12),
    ) {
        let key = OwnerKey::from_seed(seed);
        let matrices: Vec<_> = ids
            .iter()
            .map(|&(image, roi, component, ac)| {
                key.derive(MatrixId {
                    image,
                    roi,
                    component,
                    kind: if ac { MatrixKind::Ac } else { MatrixKind::Dc },
                })
            })
            .collect();
        for (i, a) in matrices.iter().enumerate() {
            for b in &matrices[i + 1..] {
                prop_assert_ne!(a, b, "distinct ids must derive distinct matrices");
            }
        }
    }

    #[test]
    fn roi_plan_regions_are_aligned_disjoint_and_covering(
        rects in proptest::collection::vec(
            (0u32..96, 0u32..96, 1u32..64, 1u32..64).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h)),
            1..5,
        ),
    ) {
        let plan = match RoiPlan::from_rects(128, 128, &rects) {
            Ok(p) => p,
            Err(_) => return Ok(()), // fully-outside rect: rejection is correct
        };
        for r in plan.regions() {
            prop_assert_eq!(r.x % 8, 0);
            prop_assert_eq!(r.y % 8, 0);
            prop_assert_eq!(r.w % 8, 0);
            prop_assert_eq!(r.h % 8, 0);
        }
        for (i, a) in plan.regions().iter().enumerate() {
            for b in &plan.regions()[i + 1..] {
                prop_assert!(!a.overlaps(*b));
            }
        }
        // Every input pixel (clipped to the image) is covered.
        for r in &rects {
            let c = r.intersect(Rect::new(0, 0, 128, 128));
            for y in (c.y..c.bottom()).step_by(3) {
                for x in (c.x..c.right()).step_by(3) {
                    prop_assert!(
                        plan.regions().iter().any(|p| p.contains(x, y)),
                        "pixel ({}, {}) uncovered", x, y
                    );
                }
            }
        }
    }

    #[test]
    fn grant_scoping_is_exact(image in 0u64..4, granted in 0u16..4, other in 0u16..4) {
        prop_assume!(granted != other);
        let key = OwnerKey::from_seed([9u8; 32]);
        let grant = key.grant_rois(image, &[granted]);
        prop_assert!(grant.covers(image, granted));
        prop_assert!(!grant.covers(image, other));
        prop_assert!(!grant.covers(image.wrapping_add(1), granted));
    }
}
