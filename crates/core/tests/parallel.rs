//! SERIAL == PARALLEL determinism: the worker pool must never change a
//! single byte of output. `protect` is the full pipeline (forward DCT,
//! per-ROI perturbation, optimized-table entropy encode), so comparing its
//! JPEG bytes and parameter wire bytes across worker counts exercises
//! every parallel code path at once.

use proptest::prelude::*;
use puppies_core::parallel::{with_pool, WorkerPool};
use puppies_core::{protect, recover, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::{Rect, Rgb, RgbImage};

fn test_image(w: u32, h: u32, tone: u8) -> RgbImage {
    RgbImage::from_fn(w, h, |x, y| {
        Rgb::new(
            ((x * 3 + y * 5) % 256) as u8 ^ tone,
            ((x * 2 + y * 7) % 256) as u8,
            ((x + y * 2 + tone as u32) % 256) as u8,
        )
    })
}

/// Observability must be invisible in the output: protecting with a live
/// subscriber — at any worker count — yields the same bytes as the plain
/// uninstrumented run, and recovery agrees too. This is the determinism
/// guard for the span/metric layer threaded through the pipeline.
#[test]
fn instrumentation_does_not_change_output_bytes() {
    let img = test_image(96, 80, 0x3C);
    let key = OwnerKey::from_seed([9u8; 32]);
    let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
    let rois = [Rect::new(8, 8, 16, 16), Rect::new(72, 56, 16, 16)];

    // Plain run, no subscriber anywhere.
    let plain = {
        let pool = WorkerPool::new(1);
        with_pool(&pool, || protect(&img, &rois, &key, &opts)).unwrap()
    };
    let rec_plain = recover(&plain, &key.grant_all()).unwrap();

    // Instrumented runs: subscriber installed, spans and metrics live.
    let session = puppies_obs::Obs::install();
    for workers in [1usize, 2, 4] {
        let pool = WorkerPool::new(workers);
        let instrumented = with_pool(&pool, || protect(&img, &rois, &key, &opts)).unwrap();
        assert_eq!(
            plain.bytes, instrumented.bytes,
            "JPEG bytes diverged at {workers} workers with a subscriber installed"
        );
        assert_eq!(
            plain.params.to_bytes(),
            instrumented.params.to_bytes(),
            "public parameters diverged at {workers} workers with a subscriber installed"
        );
        let rec = with_pool(&pool, || recover(&instrumented, &key.grant_all())).unwrap();
        assert_eq!(rec_plain, rec);
    }
    if let Some(obs) = session.finish() {
        // The subscriber really observed the pipeline while producing
        // byte-identical output.
        assert!(obs.span_count() > 0, "no spans recorded during protect");
        let snap = obs.metrics().snapshot();
        assert!(snap
            .histograms
            .iter()
            .any(|(name, h)| name == "core.protect" && h.count >= 3));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn protect_bytes_identical_across_worker_counts(
        seed in any::<[u8; 32]>(),
        tone in any::<u8>(),
        wblocks in 6u32..14,
        hblocks in 6u32..12,
        scheme in prop_oneof![
            Just(Scheme::Naive),
            Just(Scheme::Base),
            Just(Scheme::Compression),
            Just(Scheme::Zero),
        ],
        level in prop_oneof![
            Just(PrivacyLevel::Low),
            Just(PrivacyLevel::Medium),
            Just(PrivacyLevel::High),
        ],
    ) {
        let (w, h) = (wblocks * 8, hblocks * 8);
        let img = test_image(w, h, tone);
        let key = OwnerKey::from_seed(seed);
        let opts = ProtectOptions::new(scheme, level);
        // Two regions so the per-ROI fan-out has real work.
        let rois = [
            Rect::new(8, 8, 16, 16),
            Rect::new(w - 24, h - 24, 16, 16),
        ];

        let serial = {
            let pool = WorkerPool::new(1);
            with_pool(&pool, || protect(&img, &rois, &key, &opts)).unwrap()
        };
        for workers in [2usize, 4, 8] {
            let pool = WorkerPool::new(workers);
            let parallel = with_pool(&pool, || protect(&img, &rois, &key, &opts)).unwrap();
            prop_assert_eq!(
                &serial.bytes, &parallel.bytes,
                "JPEG bytes diverged at {} workers", workers
            );
            prop_assert_eq!(
                serial.params.to_bytes(), parallel.params.to_bytes(),
                "public parameters diverged at {} workers", workers
            );
            // Recovery under the pool matches too (decode + recover_rois).
            let rec_serial = recover(&serial, &key.grant_all()).unwrap();
            let rec_parallel =
                with_pool(&pool, || recover(&parallel, &key.grant_all())).unwrap();
            prop_assert_eq!(&rec_serial, &rec_parallel);
        }
    }
}
