//! `puppies cluster` — drive the k-of-n Shamir-shared PSP cluster from
//! the command line.
//!
//! ```text
//! puppies cluster demo [--shape n,k] [--uploads N]
//!         [--kill i]... [--corrupt i]... [--rebalance]
//! ```
//!
//! The demo uploads protected fixtures into an (n, k) cluster, applies
//! the requested faults, proves every acknowledged upload still
//! reconstructs byte-exactly from the surviving quorum, and (with
//! `--rebalance`) replaces the dead backends and re-shares at a new
//! generation. Exits nonzero if any reconstruction diverges.

use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::{ClusterConfig, ClusterPhotoId, Fault, PspConfig, ShardedPspCluster};

pub fn cmd(args: &[String]) -> Result<(), String> {
    match crate::positionals(args).first() {
        Some(&"demo") => demo(args),
        other => Err(format!(
            "unknown cluster subcommand {other:?}; try `puppies cluster demo`"
        )),
    }
}

fn parse_shape(args: &[String]) -> Result<(usize, usize), String> {
    match crate::flag_value(args, "--shape") {
        Some(s) => {
            let (a, b) = s
                .split_once(',')
                .ok_or_else(|| format!("bad --shape {s:?}: expected n,k"))?;
            Ok((
                a.trim()
                    .parse()
                    .map_err(|e| format!("bad n in --shape: {e}"))?,
                b.trim()
                    .parse()
                    .map_err(|e| format!("bad k in --shape: {e}"))?,
            ))
        }
        None => Ok((5, 3)),
    }
}

fn parse_backends(args: &[String], flag: &str, n: usize) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for v in crate::flag_values(args, flag) {
        let i: usize = v.parse().map_err(|e| format!("bad {flag} {v:?}: {e}"))?;
        if i >= n {
            return Err(format!("{flag} {i} out of range for n = {n}"));
        }
        out.push(i);
    }
    Ok(out)
}

fn demo(args: &[String]) -> Result<(), String> {
    let (n, k) = parse_shape(args)?;
    let uploads: usize = match crate::flag_value(args, "--uploads") {
        Some(v) => v.parse().map_err(|e| format!("bad --uploads {v:?}: {e}"))?,
        None => 4,
    };
    let kills = parse_backends(args, "--kill", n)?;
    let corrupts = parse_backends(args, "--corrupt", n)?;

    let mut cfg = ClusterConfig::new(n, k);
    cfg.backend = PspConfig::uncached();
    let cluster = ShardedPspCluster::new(cfg).map_err(|e| e.to_string())?;
    println!("cluster: {n} backends, any {k} reconstruct");

    // Upload while everything is healthy; remember what must come back.
    let mut expected: Vec<(ClusterPhotoId, Vec<u8>)> = Vec::new();
    for i in 0..uploads.max(1) {
        let seed = (i % 200) as u8 + 1;
        let img = RgbImage::from_fn(96, 64, |x, y| {
            Rgb::new(
                (40 + (x * 3 + y + seed as u32) % 180) as u8,
                (50 + (x + y * 2 + seed as u32 * 7) % 170) as u8,
                (60 + (x * 2 + y * 3) % 160) as u8,
            )
        });
        let key = OwnerKey::from_seed([seed; 32]);
        let opts = ProtectOptions::default().with_image_id(i as u64 + 1);
        let protected =
            protect(&img, &[Rect::new(24, 16, 32, 32)], &key, &opts).map_err(|e| e.to_string())?;
        let grant = key.grant_rois(i as u64 + 1, &[0]);
        let id = cluster
            .upload(protected.bytes.clone(), protected.params.to_bytes(), &grant)
            .map_err(|e| e.to_string())?;
        expected.push((id, protected.bytes));
    }
    println!("uploaded {} protected photos", expected.len());

    for &i in &kills {
        cluster.fault(i, Fault::Kill);
        println!("backend {i}: KILLED");
    }
    for &i in &corrupts {
        cluster.fault(i, Fault::Corrupt);
        println!("backend {i}: CORRUPTING");
    }
    if kills.len() + corrupts.len() > n - k {
        println!(
            "note: {} faulted backends exceeds the n - k = {} budget; reconstruction is expected to fail",
            kills.len() + corrupts.len(),
            n - k
        );
    }

    let mut failures = 0;
    for (id, bytes) in &expected {
        match cluster.reconstruct(*id) {
            Ok((_, got)) if got == *bytes => {
                println!("photo {}: reconstructed byte-exact", id.0);
            }
            Ok(_) => {
                failures += 1;
                println!("photo {}: RECONSTRUCTION DIVERGED", id.0);
            }
            Err(e) => {
                failures += 1;
                println!("photo {}: reconstruction failed: {e}", id.0);
            }
        }
    }

    if crate::has_flag(args, "--rebalance") {
        for &i in &kills {
            cluster.replace_backend(i).map_err(|e| e.to_string())?;
            println!("backend {i}: replaced with a fresh empty server");
        }
        for &i in &corrupts {
            cluster.clear_fault(i);
            println!("backend {i}: fault cleared");
        }
        let moved = cluster.rebalance_all().map_err(|e| e.to_string())?;
        println!("rebalanced {moved} uploads onto the repaired cluster");
        for (id, bytes) in &expected {
            let (_, got) = cluster.reconstruct(*id).map_err(|e| e.to_string())?;
            if got != *bytes {
                failures += 1;
                println!("photo {}: DIVERGED after rebalance", id.0);
            }
        }
        println!("post-rebalance verification complete");
    }

    if failures > 0 {
        return Err(format!("{failures} reconstruction failure(s)"));
    }
    println!("all acknowledged uploads verified");
    Ok(())
}
