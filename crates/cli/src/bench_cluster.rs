//! `puppies bench psp --cluster` — throughput benchmark for the k-of-n
//! Shamir-shared cluster (PuPPIeS-SIS).
//!
//! Three layers of measurement:
//!
//! * **Shamir micro** — split and reconstruct over a fixed payload, run
//!   twice with the identical algorithm: once over the log/exp-table
//!   GF(256) multiplier and once over the embedded bitwise
//!   (Russian-peasant) reference multiplier. Running both in the same
//!   process makes the speedup a machine-independent ratio, which is
//!   what the CI gate floors. Byte parity between the two field
//!   implementations is proven before anything is timed.
//! * **Cluster end-to-end** — closed-loop upload and reconstruct
//!   traffic from N client threads against a live (n, k) cluster of
//!   real `PspServer` backends, with zipf-skewed reconstruct keys.
//!   Single-PSP upload/download throughput is measured alongside for
//!   context (the cluster pays n share stores + a k-share interpolation
//!   per op — the honest cost of removing the single point of trust).
//! * **P3 baseline** — `puppies-p3` whole-image split/reconstruct
//!   timings, the paper's reference point for provider-side secrecy.

use crate::bench_psp::{Rng, Zipf};
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_psp::cluster::{gf256, shamir, ClusterConfig, ShardedPspCluster};
use puppies_psp::{ClusterPhotoId, PspConfig, PspServer};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Everything `bench psp --cluster` measured.
pub struct ClusterResults {
    pub config: RunConfig,
    /// MB/s over the table field vs the bitwise reference field.
    pub split_table_mb_s: f64,
    pub split_naive_mb_s: f64,
    pub reconstruct_table_mb_s: f64,
    pub reconstruct_naive_mb_s: f64,
    /// Closed-loop cluster ops.
    pub upload: ScenarioStats,
    pub reconstruct: ScenarioStats,
    /// Single-PSP context numbers (same payloads, no sharing).
    pub single_upload: ScenarioStats,
    pub single_download: ScenarioStats,
    /// P3 baseline: milliseconds per whole-image split / reconstruct.
    pub p3_split_ms: f64,
    pub p3_reconstruct_ms: f64,
}

impl ClusterResults {
    pub fn split_speedup(&self) -> f64 {
        self.split_table_mb_s / self.split_naive_mb_s
    }
    pub fn reconstruct_speedup(&self) -> f64 {
        self.reconstruct_table_mb_s / self.reconstruct_naive_mb_s
    }
}

#[derive(Clone, Copy)]
pub struct RunConfig {
    pub n: usize,
    pub k: usize,
    pub threads: usize,
    pub upload_ops: usize,
    pub reconstruct_ops: usize,
    pub payload_kib: usize,
    pub zipf: f64,
    pub seed: u64,
}

#[derive(Clone, Copy)]
pub struct ScenarioStats {
    pub ops: usize,
    pub wall_s: f64,
    pub ops_per_s: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

fn stats_from(latencies_us: &mut [f64], wall_s: f64) -> ScenarioStats {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    ScenarioStats {
        ops: latencies_us.len(),
        wall_s,
        ops_per_s: latencies_us.len() as f64 / wall_s.max(1e-9),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
    }
}

// ---------------------------------------------------------------------------
// Shamir micro: table vs bitwise reference field.
// ---------------------------------------------------------------------------

/// Field-stress shape for the micro: deep enough that GF multiplies
/// dominate ChaCha coefficient generation (see the comment in [`run`]).
const MICRO_N: usize = 10;
const MICRO_K: usize = 10;

fn micro_payload(kib: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed | 1);
    (0..kib * 1024).map(|_| (rng.next() >> 24) as u8).collect()
}

/// Proves the two field implementations agree end-to-end before timing:
/// table-split reconstructs under the naive field and vice versa, all
/// byte-exact.
fn verify_field_parity(payload: &[u8], n: usize, k: usize) -> Result<(), String> {
    let seed = [0x42u8; 32];
    let t = shamir::split_with(payload, n, k, 0, seed, gf256::mul)
        .map_err(|e| format!("table split: {e}"))?;
    let b = shamir::split_with(payload, n, k, 0, seed, gf256::mul_naive)
        .map_err(|e| format!("naive split: {e}"))?;
    if t != b {
        return Err("table and naive splits diverged".into());
    }
    let via_table = shamir::reconstruct_with(&t[n - k..], gf256::mul)
        .map_err(|e| format!("table reconstruct: {e}"))?;
    let via_naive = shamir::reconstruct_with(&t[..k], gf256::mul_naive)
        .map_err(|e| format!("naive reconstruct: {e}"))?;
    if via_table != payload || via_naive != payload {
        return Err("reconstruction parity failed".into());
    }
    Ok(())
}

fn time_split(payload: &[u8], n: usize, k: usize, iters: usize, mul: fn(u8, u8) -> u8) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        let mut seed = [0u8; 32];
        seed[0] = i as u8;
        black_box(shamir::split_with(payload, n, k, 0, seed, mul).expect("valid shape"));
    }
    let secs = start.elapsed().as_secs_f64();
    (iters * payload.len()) as f64 / secs / 1e6
}

fn time_reconstruct(
    shares: &[shamir::Share],
    k: usize,
    payload_len: usize,
    iters: usize,
    mul: fn(u8, u8) -> u8,
) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        // Rotate which k-subset reconstructs so the work isn't one
        // cached weight set.
        let at = i % (shares.len() - k + 1);
        black_box(shamir::reconstruct_with(&shares[at..at + k], mul).expect("quorum"));
    }
    let secs = start.elapsed().as_secs_f64();
    (iters * payload_len) as f64 / secs / 1e6
}

// ---------------------------------------------------------------------------
// End-to-end cluster workload.
// ---------------------------------------------------------------------------

fn fixture(seed: u8) -> (Vec<u8>, Vec<u8>, puppies_core::KeyGrant) {
    let img = RgbImage::from_fn(96, 64, |x, y| {
        Rgb::new(
            (35 + (x * 3 + y + seed as u32) % 190) as u8,
            (45 + (x + y * 2 + seed as u32 * 5) % 180) as u8,
            (55 + (x * 2 + y * 3) % 170) as u8,
        )
    });
    let key = OwnerKey::from_seed([seed; 32]);
    let opts = ProtectOptions::default().with_image_id(seed as u64 + 1);
    let protected =
        protect(&img, &[Rect::new(24, 16, 32, 32)], &key, &opts).expect("fixture protects");
    let grant = key.grant_rois(seed as u64 + 1, &[0]);
    (protected.bytes, protected.params.to_bytes(), grant)
}

pub fn run(config: RunConfig) -> Result<ClusterResults, String> {
    if config.k == 0 || config.k > config.n || config.n > 255 {
        return Err(format!("bad shape n = {}, k = {}", config.n, config.k));
    }

    // --- Shamir micro, parity first. ---
    // The micro runs at a fixed field-stress shape rather than the
    // cluster's (n, k): split does n·(k−1) GF multiplies per byte but
    // only (k−1) ChaCha bytes, so a deep shape keeps the measurement
    // (and the table-vs-bitwise ratio the CI floors) dominated by the
    // field multiplier instead of coefficient generation. At the
    // deployment shape (5, 3) the RNG dilutes the split ratio to ~1.3×.
    let (mn, mk) = (MICRO_N, MICRO_K);
    let payload = micro_payload(config.payload_kib, config.seed);
    verify_field_parity(&payload, config.n, config.k)?;
    verify_field_parity(&payload, mn, mk)?;
    let shares =
        shamir::split(&payload, mn, mk, 0, [7u8; 32]).map_err(|e| format!("split: {e}"))?;
    // Naive is several times slower; scale its iteration count down so
    // the bench stays quick, MB/s normalizes the difference.
    let split_table_mb_s = time_split(&payload, mn, mk, 16, gf256::mul);
    let split_naive_mb_s = time_split(&payload, mn, mk, 4, gf256::mul_naive);
    let reconstruct_table_mb_s = time_reconstruct(&shares, mk, payload.len(), 16, gf256::mul);
    let reconstruct_naive_mb_s = time_reconstruct(&shares, mk, payload.len(), 4, gf256::mul_naive);

    // --- End-to-end cluster workload. ---
    let mut cfg = ClusterConfig::new(config.n, config.k);
    cfg.backend = PspConfig::uncached();
    let cluster = ShardedPspCluster::new(cfg).map_err(|e| e.to_string())?;
    let fixtures: Vec<_> = (0..8).map(|i| fixture(i as u8 + 1)).collect();

    let (upload_stats, ids) = run_loop(config.threads, config.upload_ops, |i| {
        let (bytes, params, grant) = &fixtures[i % fixtures.len()];
        cluster
            .upload(bytes.clone(), params.clone(), grant)
            .expect("cluster upload")
    });

    let zipf = Zipf::new(ids.len(), config.zipf);
    let seed = config.seed;
    let (reconstruct_stats, _) = run_loop(config.threads, config.reconstruct_ops, |i| {
        let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let id: ClusterPhotoId = ids[zipf.sample(rng.unit())];
        let (_, bytes) = cluster.reconstruct(id).expect("cluster reconstruct");
        black_box(bytes.len());
    });

    // --- Single-PSP context. ---
    let single = PspServer::with_config(PspConfig::uncached());
    let (single_upload, sids) = run_loop(config.threads, config.upload_ops, |i| {
        let (bytes, params, _) = &fixtures[i % fixtures.len()];
        single
            .upload(bytes.clone(), params.clone())
            .expect("upload")
    });
    let (single_download, _) = run_loop(config.threads, config.reconstruct_ops, |i| {
        let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0xD1B54A32D192ED03) | 1);
        let id = sids[zipf.sample(rng.unit()).min(sids.len() - 1)];
        black_box(single.download(id).expect("download").len());
    });

    // --- P3 baseline. ---
    let p3_img = RgbImage::from_fn(96, 64, |x, y| {
        Rgb::new(
            (50 + (x * 2 + y) % 180) as u8,
            (60 + (x + y * 3) % 170) as u8,
            (40 + (x * 3 + y * 2) % 190) as u8,
        )
    });
    let coeff = CoeffImage::from_rgb(&p3_img, 75);
    let t0 = Instant::now();
    let p3_iters = 8;
    let mut p3s = None;
    for _ in 0..p3_iters {
        p3s = Some(black_box(puppies_p3::split(&coeff, 15)));
    }
    let p3_split_ms = t0.elapsed().as_secs_f64() * 1e3 / p3_iters as f64;
    let split_out = p3s.expect("p3 split ran");
    let t0 = Instant::now();
    for _ in 0..p3_iters {
        black_box(
            puppies_p3::reconstruct(&split_out.public, &split_out.private)
                .map_err(|e| format!("p3 reconstruct: {e}"))?,
        );
    }
    let p3_reconstruct_ms = t0.elapsed().as_secs_f64() * 1e3 / p3_iters as f64;

    Ok(ClusterResults {
        config,
        split_table_mb_s,
        split_naive_mb_s,
        reconstruct_table_mb_s,
        reconstruct_naive_mb_s,
        upload: upload_stats,
        reconstruct: reconstruct_stats,
        single_upload,
        single_download,
        p3_split_ms,
        p3_reconstruct_ms,
    })
}

/// Closed loop: `threads` workers drain `total` ops from a shared
/// counter; per-op latency is recorded and merged.
fn run_loop<T: Send>(
    threads: usize,
    total: usize,
    op: impl Fn(usize) -> T + Sync,
) -> (ScenarioStats, Vec<T>) {
    let counter = AtomicUsize::new(0);
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(total);
    let mut results = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.max(1) {
            let counter = &counter;
            let op = &op;
            handles.push(scope.spawn(move || {
                let mut lat = Vec::new();
                let mut out = Vec::new();
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    out.push((i, op(i)));
                    lat.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                (lat, out)
            }));
        }
        for h in handles {
            let (lat, out) = h.join().expect("bench worker");
            latencies.extend(lat);
            results.extend(out);
        }
    });
    let wall = start.elapsed().as_secs_f64();
    results.sort_by_key(|(i, _)| *i);
    let results = results.into_iter().map(|(_, t)| t).collect();
    (stats_from(&mut latencies, wall), results)
}

// ---------------------------------------------------------------------------
// Rendering, JSON, and the CI gate.
// ---------------------------------------------------------------------------

pub fn render(res: &ClusterResults) -> Vec<String> {
    let c = &res.config;
    let mut out = Vec::new();
    out.push(format!(
        "cluster bench: ({}, {}) cluster, shamir micro at ({MICRO_N}, {MICRO_K}) over {} KiB, {} threads",
        c.n, c.k, c.payload_kib, c.threads
    ));
    out.push(format!(
        "  shamir split       {:>8.1} MB/s table vs {:>7.1} MB/s bitwise (x{:.1})",
        res.split_table_mb_s,
        res.split_naive_mb_s,
        res.split_speedup()
    ));
    out.push(format!(
        "  shamir reconstruct {:>8.1} MB/s table vs {:>7.1} MB/s bitwise (x{:.1})",
        res.reconstruct_table_mb_s,
        res.reconstruct_naive_mb_s,
        res.reconstruct_speedup()
    ));
    for (name, s) in [
        ("cluster upload", &res.upload),
        ("cluster reconstruct", &res.reconstruct),
        ("single-psp upload", &res.single_upload),
        ("single-psp download", &res.single_download),
    ] {
        out.push(format!(
            "  {name:<19} {:>8.0} ops/s  p50 {:>7.0} µs  p95 {:>7.0} µs  p99 {:>7.0} µs",
            s.ops_per_s, s.p50_us, s.p95_us, s.p99_us
        ));
    }
    out.push(format!(
        "  p3 baseline: split {:.2} ms, reconstruct {:.2} ms (whole image, no ROI)",
        res.p3_split_ms, res.p3_reconstruct_ms
    ));
    out
}

fn scenario_json(s: &ScenarioStats) -> String {
    format!(
        "{{\"ops\": {}, \"wall_s\": {:.3}, \"ops_per_s\": {:.0}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
        s.ops, s.wall_s, s.ops_per_s, s.p50_us, s.p95_us, s.p99_us
    )
}

pub fn to_json(res: &ClusterResults) -> String {
    let c = &res.config;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"n\": {}, \"k\": {}, \"threads\": {}, \"upload_ops\": {}, \"reconstruct_ops\": {}, \"payload_kib\": {}, \"zipf\": {:.2}, \"seed\": {}}},\n",
        c.n, c.k, c.threads, c.upload_ops, c.reconstruct_ops, c.payload_kib, c.zipf, c.seed
    ));
    out.push_str(&format!(
        "  \"shamir\": {{\n    \"micro_shape\": [{MICRO_N}, {MICRO_K}],\n    \"table\": {{\"split_mb_s\": {:.1}, \"reconstruct_mb_s\": {:.1}}},\n    \"bitwise_reference\": {{\"split_mb_s\": {:.1}, \"reconstruct_mb_s\": {:.1}}},\n    \"speedup_vs_bitwise\": {{\"split\": {:.2}, \"reconstruct\": {:.2}}}\n  }},\n",
        res.split_table_mb_s,
        res.reconstruct_table_mb_s,
        res.split_naive_mb_s,
        res.reconstruct_naive_mb_s,
        res.split_speedup(),
        res.reconstruct_speedup()
    ));
    out.push_str(&format!(
        "  \"cluster\": {{\n    \"upload\": {},\n    \"reconstruct\": {}\n  }},\n",
        scenario_json(&res.upload),
        scenario_json(&res.reconstruct)
    ));
    out.push_str(&format!(
        "  \"single_psp\": {{\n    \"upload\": {},\n    \"download\": {}\n  }},\n",
        scenario_json(&res.single_upload),
        scenario_json(&res.single_download)
    ));
    out.push_str(&format!(
        "  \"p3_baseline\": {{\"split_ms\": {:.2}, \"reconstruct_ms\": {:.2}}}\n}}\n",
        res.p3_split_ms, res.p3_reconstruct_ms
    ));
    out
}

pub struct CheckLimits {
    /// Allowed fractional drop below the committed cluster throughput
    /// (cross-machine band; the speedup floors are the machine-
    /// independent gate).
    pub threshold: f64,
    /// Floor for table-vs-bitwise split speedup.
    pub min_split_speedup: f64,
    /// Floor for table-vs-bitwise reconstruct speedup.
    pub min_reconstruct_speedup: f64,
}

impl Default for CheckLimits {
    fn default() -> Self {
        // Split's floor is lower than reconstruct's: every split also
        // pays n SHA-256 share tags and (k−1) ChaCha coefficient rows,
        // identical across the two field implementations, which dilutes
        // the observable ratio.
        CheckLimits {
            threshold: 0.85,
            min_split_speedup: 1.4,
            min_reconstruct_speedup: 2.0,
        }
    }
}

/// The CI gate: fresh cluster throughput within the band of the
/// committed file, plus machine-independent table-vs-bitwise speedup
/// floors measured this run.
pub fn check(res: &ClusterResults, committed: &str, limits: &CheckLimits) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut ok = true;
    for (scenario, fresh) in [
        ("upload", res.upload.ops_per_s),
        ("reconstruct", res.reconstruct.ops_per_s),
    ] {
        match crate::bench_psp::parse_ops_per_s(committed, "cluster", scenario) {
            Ok(base) => {
                let ratio = fresh / base;
                let pass = ratio >= 1.0 - limits.threshold;
                ok &= pass;
                lines.push(format!(
                    "{scenario:>20}: {fresh:>9.0} ops/s vs committed {base:>9.0} (x{ratio:.2}, floor x{:.2}) {}",
                    1.0 - limits.threshold,
                    if pass { "ok" } else { "REGRESSED" }
                ));
            }
            Err(e) => {
                ok = false;
                lines.push(format!("{scenario:>20}: {e}"));
            }
        }
    }
    for (name, got, floor) in [
        (
            "split speedup",
            res.split_speedup(),
            limits.min_split_speedup,
        ),
        (
            "reconstruct speedup",
            res.reconstruct_speedup(),
            limits.min_reconstruct_speedup,
        ),
    ] {
        let pass = got >= floor;
        ok &= pass;
        lines.push(format!(
            "{name:>20}: x{got:.2} (floor x{floor:.2}) {}",
            if pass { "ok" } else { "BELOW FLOOR" }
        ));
    }
    (lines, ok)
}

/// `puppies bench psp --cluster [--shape n,k] [--threads N]
/// [--upload-ops N] [--reconstruct-ops N] [--payload-kib N] [--zipf S]
/// [--seed N] [--out file] [--check file [--threshold F]
/// [--min-split-speedup F] [--min-reconstruct-speedup F]]`
pub fn cmd(args: &[String]) -> Result<(), String> {
    let parse_num = |name: &str, default: f64| -> Result<f64, String> {
        match crate::flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name} {v:?}: {e}")),
            None => Ok(default),
        }
    };
    let (n, k) = match crate::flag_value(args, "--shape") {
        Some(s) => {
            let (a, b) = s
                .split_once(',')
                .ok_or_else(|| format!("bad --shape {s:?}: expected n,k"))?;
            (
                a.trim()
                    .parse()
                    .map_err(|e| format!("bad n in --shape: {e}"))?,
                b.trim()
                    .parse()
                    .map_err(|e| format!("bad k in --shape: {e}"))?,
            )
        }
        None => (5, 3),
    };
    let config = RunConfig {
        n,
        k,
        threads: (parse_num("--threads", 8.0)? as usize).max(1),
        upload_ops: (parse_num("--upload-ops", 400.0)? as usize).max(8),
        reconstruct_ops: (parse_num("--reconstruct-ops", 800.0)? as usize).max(8),
        payload_kib: (parse_num("--payload-kib", 64.0)? as usize).max(1),
        zipf: parse_num("--zipf", 1.1)?,
        seed: parse_num("--seed", 0xC1_05_7E_12u64 as f64)? as u64,
    };
    let limits = CheckLimits {
        threshold: parse_num("--threshold", CheckLimits::default().threshold)?,
        min_split_speedup: parse_num(
            "--min-split-speedup",
            CheckLimits::default().min_split_speedup,
        )?,
        min_reconstruct_speedup: parse_num(
            "--min-reconstruct-speedup",
            CheckLimits::default().min_reconstruct_speedup,
        )?,
    };

    let res = run(config)?;
    for line in render(&res) {
        println!("{line}");
    }

    let json = to_json(&res);
    if let Some(out) = crate::flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("results written to {out}");
    }
    if let Some(path) = crate::flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let (lines, ok) = check(&res, &text, &limits);
        for l in &lines {
            println!("{l}");
        }
        if !ok {
            return Err(format!("cluster bench failed the gate against {path}"));
        }
        println!("cluster gate passed against {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_results() -> ClusterResults {
        let s = ScenarioStats {
            ops: 10,
            wall_s: 0.1,
            ops_per_s: 100.0,
            p50_us: 10.0,
            p95_us: 20.0,
            p99_us: 30.0,
        };
        ClusterResults {
            config: RunConfig {
                n: 5,
                k: 3,
                threads: 2,
                upload_ops: 10,
                reconstruct_ops: 10,
                payload_kib: 4,
                zipf: 1.1,
                seed: 1,
            },
            split_table_mb_s: 400.0,
            split_naive_mb_s: 50.0,
            reconstruct_table_mb_s: 600.0,
            reconstruct_naive_mb_s: 80.0,
            upload: s,
            reconstruct: s,
            single_upload: s,
            single_download: s,
            p3_split_ms: 1.0,
            p3_reconstruct_ms: 0.5,
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let json = to_json(&tiny_results());
        assert_eq!(
            crate::bench_psp::parse_ops_per_s(&json, "cluster", "upload").unwrap(),
            100.0
        );
        assert_eq!(
            crate::bench_psp::parse_ops_per_s(&json, "cluster", "reconstruct").unwrap(),
            100.0
        );
        assert_eq!(
            crate::bench_psp::parse_ops_per_s(&json, "single_psp", "download").unwrap(),
            100.0
        );
    }

    #[test]
    fn check_gates_on_floors_and_band() {
        let res = tiny_results();
        let committed = to_json(&res);
        let (_, ok) = check(&res, &committed, &CheckLimits::default());
        assert!(ok, "self-check must pass");

        // Below the split-speedup floor → gate fails.
        let mut slow = tiny_results();
        slow.split_naive_mb_s = 300.0; // speedup 1.33 < 2.0
        let (lines, ok) = check(&slow, &committed, &CheckLimits::default());
        assert!(!ok, "{lines:?}");

        // Throughput collapse below the band → gate fails.
        let mut collapsed = tiny_results();
        collapsed.upload.ops_per_s = 1.0;
        let (lines, ok) = check(&collapsed, &committed, &CheckLimits::default());
        assert!(!ok, "{lines:?}");
    }

    #[test]
    fn field_parity_holds_on_micro_payload() {
        let payload = micro_payload(4, 99);
        verify_field_parity(&payload, 5, 3).unwrap();
    }

    #[test]
    fn small_run_produces_sane_results() {
        let res = run(RunConfig {
            n: 3,
            k: 2,
            threads: 2,
            upload_ops: 12,
            reconstruct_ops: 16,
            payload_kib: 4,
            zipf: 1.1,
            seed: 7,
        })
        .unwrap();
        assert!(res.upload.ops_per_s > 0.0);
        assert!(res.reconstruct.ops_per_s > 0.0);
        assert!(res.split_table_mb_s > 0.0);
        // The table-vs-bitwise speedup floor is only meaningful under
        // optimization; this debug-mode smoke test just checks the
        // ratio is finite and positive.
        assert!(res.split_speedup() > 0.0 && res.split_speedup().is_finite());
    }
}
