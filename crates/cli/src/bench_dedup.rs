//! `puppies bench psp --dup` — the duplicate-serving benchmark behind
//! `results/BENCH_psp_dedup.json`.
//!
//! Two measurements, both machine-independent (ratios and hit rates, not
//! absolute throughput):
//!
//! * **recompressed-duplicate serving** — upload N protected originals,
//!   warm every (photo, view) once, then upload R recompressed copies of
//!   each (requantized at a spread of JPEG qualities — byte-distinct,
//!   perceptually identical) and serve every (copy, view) exactly once.
//!   With the signature layer on, those first serves resolve through the
//!   second-level (signature-family) cache key and come back
//!   `sig-cached`; the same run with `PspConfig { signature: false }` is
//!   the exact-key-only baseline, which by construction scores ~0%. The
//!   CI gate holds the sig-on first-serve hit rate ≥ 90% and the
//!   baseline ≤ 1%.
//! * **near-duplicate search scaling** — fill a [`SigIndex`] with
//!   synthetic signatures at 1k/10k/100k entries, plant a known family
//!   near each probe, and count candidates scanned per query. The
//!   multi-index layout buckets each 16-bit signature band, so scanned
//!   work grows ~n/65536 per band while a linear scan grows ~n: the gate
//!   holds scanned-growth across the 100× size spread at ≤ 25×.
//!
//! Served bytes are verified, not just counted: every `sig-cached`
//! response must be byte-identical to the family root's cached result.

use crate::bench_psp::{pct, warm_allocator, Rng};
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_psp::{PhotoId, PspConfig, PspServer, ServedPath, SigEntry, SigIndex};
use puppies_transform::Transformation;
use std::time::Instant;

/// The JPEG qualities duplicate copies are requantized at. A spread, not
/// one value: recompression at different strengths must all land inside
/// the signature's near-duplicate radius.
const DUP_QUALITIES: [u8; 4] = [40, 55, 70, 85];

/// Index sizes the search-scaling measurement sweeps.
const SEARCH_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

#[derive(Clone, Copy)]
pub struct DupConfig {
    /// Distinct original photos.
    pub originals: usize,
    /// Recompressed copies per original (capped at the quality spread).
    pub copies: usize,
    /// Probe queries per search-index size.
    pub search_queries: usize,
    pub seed: u64,
}

/// First-serve tallies for the duplicate population of one scenario run.
#[derive(Clone, Copy, Default)]
pub struct DupStats {
    pub first_serves: usize,
    /// Served through the signature-family cache key.
    pub sig_cached: usize,
    /// Served from the exact cache key (identical bytes re-uploaded).
    pub cached: usize,
    /// Computed from scratch — a dedup miss.
    pub computed: usize,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

impl DupStats {
    /// Fraction of duplicate first serves answered from cache (either
    /// key). This is the headline the CI gate floors.
    pub fn hit_rate(&self) -> f64 {
        (self.sig_cached + self.cached) as f64 / self.first_serves.max(1) as f64
    }
}

/// One point of the search-scaling sweep.
#[derive(Clone, Copy)]
pub struct SearchPoint {
    pub size: usize,
    pub queries: usize,
    /// Mean candidates Hamming-verified per query — the sublinearity
    /// observable (a linear scan would verify `size` per query).
    pub scanned_per_query: f64,
    pub us_per_query: f64,
}

pub struct DedupResults {
    pub config: DupConfig,
    pub with_sig: DupStats,
    pub baseline: DupStats,
    pub search: Vec<SearchPoint>,
}

impl DedupResults {
    /// Scanned-work growth across the full index-size spread. The sizes
    /// span 100×, so ≪ 100 demonstrates sublinear search.
    pub fn scan_growth(&self) -> f64 {
        let (first, last) = match (self.search.first(), self.search.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return f64::INFINITY,
        };
        last.scanned_per_query / first.scanned_per_query.max(1e-9)
    }

    pub fn size_growth(&self) -> f64 {
        let (first, last) = match (self.search.first(), self.search.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return 1.0,
        };
        last.size as f64 / first.size.max(1) as f64
    }
}

// ---------------------------------------------------------------------------
// Duplicate-serving scenario.
// ---------------------------------------------------------------------------

/// Protected originals for the dup scenario. Same shape as the repeat
/// bench's fixtures but seeded into a distinct family per photo so no
/// two originals are near-duplicates of each other.
fn dup_fixtures(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let seed = i as u32 + 1;
            let img = RgbImage::from_fn(96, 72, |x, y| {
                let v = x
                    .wrapping_mul(13 + seed)
                    .wrapping_add(y.wrapping_mul(29))
                    .wrapping_add(seed.wrapping_mul(131));
                Rgb::new(
                    (v.wrapping_mul(2_654_435_761) >> 24) as u8,
                    (v.wrapping_mul(40_503) >> 8) as u8,
                    ((x * 2 + y).wrapping_add(seed * 17) & 0xFF) as u8,
                )
            });
            let key = OwnerKey::from_seed([seed as u8; 32]);
            let p = protect(
                &img,
                &[Rect::new(24, 16, 32, 32)],
                &key,
                &ProtectOptions::default().with_quality(75),
            )
            .expect("dedup fixture protects");
            (p.bytes, p.params.to_bytes())
        })
        .collect()
}

/// Byte-distinct, perceptually identical copy: decode, requantize at
/// `quality`, re-encode. Exactly what a client re-saving a downloaded
/// photo produces.
fn recompress(bytes: &[u8], quality: u8) -> Result<Vec<u8>, String> {
    let mut coeff = CoeffImage::decode(bytes).map_err(|e| format!("recompress decode: {e}"))?;
    coeff.requantize(quality);
    coeff
        .encode(&EncodeOptions::default())
        .map_err(|e| format!("recompress encode: {e}"))
}

/// The derived views every photo is served under: two coefficient-domain
/// ops plus a requantization (the dedup win applies to all of them).
fn dup_transforms() -> Vec<Transformation> {
    vec![
        Transformation::Rotate90,
        Transformation::Rotate180,
        Transformation::Recompress { quality: 40 },
    ]
}

/// Uploads originals, warms every (photo, view), uploads the recompressed
/// copies and serves each (copy, view) exactly once, tallying how those
/// first serves were answered. With `signature` on, `sig-cached` responses
/// are byte-compared against the family root's cached result.
fn run_dup(config: &DupConfig, signature: bool) -> Result<DupStats, String> {
    let server = PspServer::with_config(PspConfig {
        signature,
        ..PspConfig::default()
    });
    let photos = dup_fixtures(config.originals);
    let transforms = dup_transforms();
    let copies = config.copies.min(DUP_QUALITIES.len());

    let mut roots: Vec<PhotoId> = Vec::with_capacity(photos.len());
    for (b, p) in &photos {
        roots.push(
            server
                .upload(b.clone(), p.clone())
                .map_err(|e| format!("dup upload: {e}"))?,
        );
    }
    // Warm the canonical result for every (root, view).
    let mut root_results = Vec::with_capacity(roots.len() * transforms.len());
    for &id in &roots {
        for t in &transforms {
            let (pair, _, _) = server
                .download_transformed_traced(id, t)
                .map_err(|e| format!("dup warm: {e}"))?;
            root_results.push(pair);
        }
    }

    let mut dups: Vec<(usize, PhotoId)> = Vec::with_capacity(photos.len() * copies);
    for (pi, (b, p)) in photos.iter().enumerate() {
        for q in &DUP_QUALITIES[..copies] {
            let copy = recompress(b, *q)?;
            let id = server
                .upload(copy, p.clone())
                .map_err(|e| format!("dup copy upload: {e}"))?;
            dups.push((pi, id));
        }
    }

    let mut stats = DupStats::default();
    let mut lats: Vec<u32> = Vec::with_capacity(dups.len() * transforms.len());
    for &(pi, id) in &dups {
        for (ti, t) in transforms.iter().enumerate() {
            let start = Instant::now();
            let (pair, _, served) = server
                .download_transformed_traced(id, t)
                .map_err(|e| format!("dup serve: {e}"))?;
            lats.push(start.elapsed().as_nanos().min(u32::MAX as u128) as u32);
            stats.first_serves += 1;
            match served {
                ServedPath::SigCached => {
                    stats.sig_cached += 1;
                    let root = &root_results[pi * transforms.len() + ti];
                    if pair.0.as_ref() != root.0.as_ref() || pair.1.as_ref() != root.1.as_ref() {
                        return Err(format!(
                            "dedup violation: sig-cached serve of copy {id:?} under {t:?} \
                             is not byte-identical to its family root"
                        ));
                    }
                }
                ServedPath::Cached => stats.cached += 1,
                _ => stats.computed += 1,
            }
        }
    }
    lats.sort_unstable();
    stats.p50_us = pct(&lats, 0.50);
    stats.p95_us = pct(&lats, 0.95);
    stats.p99_us = pct(&lats, 0.99);
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Search-scaling sweep.
// ---------------------------------------------------------------------------

fn synthetic_entry(sig: u64, n: u64) -> SigEntry {
    SigEntry {
        sig,
        id: PhotoId(n),
        content_fnv: n,
        family_fnv: n,
        params_fnv: 1,
        width: 96,
        height: 72,
    }
}

/// Fills a [`SigIndex`] with `size` random signatures, then runs probe
/// queries that each flip ≤ 2 bits of a planted signature — a guaranteed
/// near-duplicate — and reports candidates scanned and time per query.
fn run_search(size: usize, queries: usize, seed: u64) -> SearchPoint {
    let mut rng = Rng::new(seed ^ size as u64);
    let mut index = SigIndex::new();
    let mut planted: Vec<u64> = Vec::with_capacity(size);
    for n in 0..size {
        let sig = rng.next();
        planted.push(sig);
        index.insert(synthetic_entry(sig, n as u64));
    }
    let start = Instant::now();
    let before = index.scanned();
    let mut found = 0usize;
    for _ in 0..queries {
        let base = planted[(rng.next() % size as u64) as usize];
        let flips = rng.next() % 3;
        let mut probe = base;
        for _ in 0..flips {
            probe ^= 1u64 << (rng.next() % 64);
        }
        if !index
            .lookup(probe, puppies_psp::NEAR_DUP_DISTANCE)
            .is_empty()
        {
            found += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(found, queries, "every planted probe must be found");
    SearchPoint {
        size,
        queries,
        scanned_per_query: (index.scanned() - before) as f64 / queries.max(1) as f64,
        us_per_query: elapsed.as_secs_f64() * 1e6 / queries.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Driver, rendering, JSON, and the CI gate.
// ---------------------------------------------------------------------------

pub fn run(config: DupConfig) -> Result<DedupResults, String> {
    warm_allocator();
    eprintln!(
        "bench psp --dup: {} originals x {} recompressed copies, {} views each; \
         search sweep {:?} x {} queries",
        config.originals,
        config.copies.min(DUP_QUALITIES.len()),
        dup_transforms().len(),
        SEARCH_SIZES,
        config.search_queries,
    );
    let with_sig = run_dup(&config, true)?;
    let baseline = run_dup(&config, false)?;
    let search = SEARCH_SIZES
        .iter()
        .map(|&size| run_search(size, config.search_queries, config.seed))
        .collect();
    Ok(DedupResults {
        config,
        with_sig,
        baseline,
        search,
    })
}

pub fn render(res: &DedupResults) -> Vec<String> {
    let mut out = Vec::new();
    for (name, s) in [("signature on", &res.with_sig), ("baseline", &res.baseline)] {
        out.push(format!(
            "{name:>16}: {}/{} duplicate first serves cached ({} sig-cached, {} exact, \
             {} computed) — hit rate {:.1}%, p50 {:.1} us p99 {:.1} us",
            s.sig_cached + s.cached,
            s.first_serves,
            s.sig_cached,
            s.cached,
            s.computed,
            s.hit_rate() * 100.0,
            s.p50_us,
            s.p99_us,
        ));
    }
    for p in &res.search {
        out.push(format!(
            "{:>16}: {} entries — {:.1} candidates scanned/query, {:.1} us/query",
            "search", p.size, p.scanned_per_query, p.us_per_query,
        ));
    }
    out.push(format!(
        "{:>16}: scanned work grew {:.1}x across a {:.0}x size spread",
        "sublinearity",
        res.scan_growth(),
        res.size_growth(),
    ));
    out
}

pub fn to_json(res: &DedupResults) -> String {
    let dup_json = |s: &DupStats| {
        format!(
            "{{\"first_serves\": {}, \"sig_cached\": {}, \"cached\": {}, \"computed\": {}, \
             \"hit_rate\": {:.4}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            s.first_serves,
            s.sig_cached,
            s.cached,
            s.computed,
            s.hit_rate(),
            s.p50_us,
            s.p95_us,
            s.p99_us
        )
    };
    let c = &res.config;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"originals\": {}, \"copies\": {}, \"search_queries\": {}, \"seed\": {}, \"simd_backend\": \"{}\"}},\n",
        c.originals,
        c.copies.min(DUP_QUALITIES.len()),
        c.search_queries,
        c.seed,
        puppies_image::simd::backend().name()
    ));
    out.push_str(&format!(
        "  \"duplicates\": {{\n    \"signature_on\": {},\n    \"baseline_exact_only\": {}\n  }},\n",
        dup_json(&res.with_sig),
        dup_json(&res.baseline)
    ));
    out.push_str("  \"search\": [\n");
    for (i, p) in res.search.iter().enumerate() {
        let sep = if i + 1 == res.search.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"size\": {}, \"queries\": {}, \"scanned_per_query\": {:.2}, \"us_per_query\": {:.2}}}{sep}\n",
            p.size, p.queries, p.scanned_per_query, p.us_per_query
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"scaling\": {{\"size_growth\": {:.1}, \"scan_growth\": {:.2}}}\n}}\n",
        res.size_growth(),
        res.scan_growth()
    ));
    out
}

/// Extracts one `"key": <number>` following `"section"` — same
/// fixed-schema scanning as the other bench parsers; the files are
/// produced by [`to_json`] only.
pub fn parse_field(json: &str, section: &str, key: &str) -> Result<f64, String> {
    let sec_at = json
        .find(&format!("\"{section}\""))
        .ok_or_else(|| format!("section {section:?} not found"))?;
    let rest = &json[sec_at..];
    let needle = format!("\"{key}\": ");
    let val_at = rest
        .find(&needle)
        .ok_or_else(|| format!("{key:?} not found in {section:?}"))?;
    let tail = &rest[val_at + needle.len()..];
    let end = tail
        .find([',', '}', '\n'])
        .ok_or_else(|| format!("unterminated {key:?} value"))?;
    tail[..end]
        .trim()
        .parse()
        .map_err(|e| format!("bad {key} in {section}: {e}"))
}

pub struct DedupLimits {
    /// Floor on the sig-on duplicate first-serve hit rate.
    pub min_dup_hit_rate: f64,
    /// Ceiling on the exact-key-only baseline (must stay ~0: a nonzero
    /// baseline means the workload stopped producing byte-distinct dups).
    pub max_baseline_hit_rate: f64,
    /// Ceiling on scanned-work growth across the 100x index-size spread.
    pub max_scan_growth: f64,
}

impl Default for DedupLimits {
    fn default() -> Self {
        DedupLimits {
            min_dup_hit_rate: 0.9,
            max_baseline_hit_rate: 0.01,
            max_scan_growth: 25.0,
        }
    }
}

/// The CI gate. Every check is machine-independent (rates and growth
/// ratios); the committed file is held to the same hit-rate floor so the
/// artifact can't silently go stale below the claim it documents.
pub fn check(res: &DedupResults, committed: &str, limits: &DedupLimits) -> (Vec<String>, bool) {
    fn gate(
        lines: &mut Vec<String>,
        ok: &mut bool,
        name: &str,
        got: Result<f64, String>,
        bound: f64,
        upper: bool,
    ) {
        match got {
            Ok(got) => {
                let pass = if upper { got <= bound } else { got >= bound };
                *ok &= pass;
                lines.push(format!(
                    "{name:>24}: {got:.3} ({} {bound:.3}) {}",
                    if upper { "ceiling" } else { "floor" },
                    if pass { "ok" } else { "FAILED" }
                ));
            }
            Err(e) => {
                *ok = false;
                lines.push(format!("{name:>24}: {e}"));
            }
        }
    }
    let mut lines = Vec::new();
    let mut ok = true;
    let l = &mut lines;
    let o = &mut ok;
    gate(
        l,
        o,
        "dup hit rate",
        Ok(res.with_sig.hit_rate()),
        limits.min_dup_hit_rate,
        false,
    );
    gate(
        l,
        o,
        "baseline hit rate",
        Ok(res.baseline.hit_rate()),
        limits.max_baseline_hit_rate,
        true,
    );
    gate(
        l,
        o,
        "search scan growth",
        Ok(res.scan_growth()),
        limits.max_scan_growth,
        true,
    );
    gate(
        l,
        o,
        "committed hit rate",
        parse_field(committed, "signature_on", "hit_rate"),
        limits.min_dup_hit_rate,
        false,
    );
    gate(
        l,
        o,
        "committed scan growth",
        parse_field(committed, "scaling", "scan_growth"),
        limits.max_scan_growth,
        true,
    );
    (lines, ok)
}

/// `puppies bench psp --dup [--originals N] [--copies N]
/// [--search-queries N] [--seed N] [--out file] [--check file
/// [--min-dup-hit-rate F] [--max-baseline-hit-rate F]
/// [--max-scan-growth F]]`
pub fn cmd(args: &[String]) -> Result<(), String> {
    let parse_num = |name: &str, default: f64| -> Result<f64, String> {
        match crate::flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name} {v:?}: {e}")),
            None => Ok(default),
        }
    };
    let config = DupConfig {
        originals: (parse_num("--originals", 12.0)? as usize).max(1),
        copies: (parse_num("--copies", 4.0)? as usize).max(1),
        search_queries: (parse_num("--search-queries", 200.0)? as usize).max(1),
        seed: parse_num("--seed", 0xD0D0_CAFEu32 as f64)? as u64,
    };
    let limits = DedupLimits {
        min_dup_hit_rate: parse_num(
            "--min-dup-hit-rate",
            DedupLimits::default().min_dup_hit_rate,
        )?,
        max_baseline_hit_rate: parse_num(
            "--max-baseline-hit-rate",
            DedupLimits::default().max_baseline_hit_rate,
        )?,
        max_scan_growth: parse_num("--max-scan-growth", DedupLimits::default().max_scan_growth)?,
    };

    let res = run(config)?;
    for line in render(&res) {
        println!("{line}");
    }
    let json = to_json(&res);
    if let Some(out) = crate::flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("results written to {out}");
    }
    if let Some(path) = crate::flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let (lines, ok) = check(&res, &text, &limits);
        for l in &lines {
            println!("{l}");
        }
        if !ok {
            return Err(format!("psp dedup bench failed the gate against {path}"));
        }
        println!("psp dedup gate passed against {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_results() -> DedupResults {
        DedupResults {
            config: DupConfig {
                originals: 4,
                copies: 2,
                search_queries: 50,
                seed: 1,
            },
            with_sig: DupStats {
                first_serves: 24,
                sig_cached: 23,
                cached: 0,
                computed: 1,
                p50_us: 5.0,
                p95_us: 9.0,
                p99_us: 12.0,
            },
            baseline: DupStats {
                first_serves: 24,
                sig_cached: 0,
                cached: 0,
                computed: 24,
                p50_us: 400.0,
                p95_us: 900.0,
                p99_us: 1200.0,
            },
            search: vec![
                SearchPoint {
                    size: 1_000,
                    queries: 50,
                    scanned_per_query: 1.2,
                    us_per_query: 0.4,
                },
                SearchPoint {
                    size: 100_000,
                    queries: 50,
                    scanned_per_query: 7.5,
                    us_per_query: 1.1,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let res = fake_results();
        let json = to_json(&res);
        let hit = parse_field(&json, "signature_on", "hit_rate").unwrap();
        assert!((hit - res.with_sig.hit_rate()).abs() < 1e-3);
        let growth = parse_field(&json, "scaling", "scan_growth").unwrap();
        assert!((growth - res.scan_growth()).abs() < 0.02);
        assert_eq!(
            parse_field(&json, "baseline_exact_only", "first_serves").unwrap(),
            24.0
        );
    }

    #[test]
    fn check_gates_on_hit_rate_and_scan_growth() {
        let res = fake_results();
        let committed = to_json(&res);
        let (lines, ok) = check(&res, &committed, &DedupLimits::default());
        assert!(ok, "healthy results must pass their own file: {lines:?}");
        // A dedup collapse trips the floor.
        let mut cold = fake_results();
        cold.with_sig.sig_cached = 2;
        cold.with_sig.computed = 22;
        let (lines, ok) = check(&cold, &committed, &DedupLimits::default());
        assert!(!ok, "8% dup hit rate must fail the 90% floor: {lines:?}");
        // A linear-scan index trips the growth ceiling.
        let mut linear = fake_results();
        linear.search[1].scanned_per_query = 99_000.0;
        let (lines, ok) = check(&linear, &committed, &DedupLimits::default());
        assert!(!ok, "linear scan growth must fail the ceiling: {lines:?}");
        // A leaky baseline (dups no longer byte-distinct) trips too.
        let mut leaky = fake_results();
        leaky.baseline.cached = 24;
        leaky.baseline.computed = 0;
        let (lines, ok) = check(&leaky, &committed, &DedupLimits::default());
        assert!(!ok, "nonzero baseline must fail the ceiling: {lines:?}");
    }

    #[test]
    fn search_sweep_is_sublinear_and_finds_planted_probes() {
        let a = run_search(500, 40, 7);
        let b = run_search(5_000, 40, 7);
        assert_eq!(a.queries, 40);
        // 10x the entries must cost far less than 10x the scanned work.
        assert!(
            b.scanned_per_query < a.scanned_per_query * 5.0,
            "scanned/query grew {:.1} -> {:.1} over a 10x size spread",
            a.scanned_per_query,
            b.scanned_per_query
        );
    }

    #[test]
    fn dup_scenario_hits_with_signature_and_misses_without() {
        let config = DupConfig {
            originals: 2,
            copies: 2,
            search_queries: 10,
            seed: 3,
        };
        let on = run_dup(&config, true).unwrap();
        assert_eq!(on.first_serves, 12);
        assert!(
            on.hit_rate() >= 0.9,
            "sig-on dup hit rate {:.2} below 0.9 ({} sig, {} exact, {} computed)",
            on.hit_rate(),
            on.sig_cached,
            on.cached,
            on.computed
        );
        let off = run_dup(&config, false).unwrap();
        assert_eq!(off.hit_rate(), 0.0, "baseline must never hit");
    }
}
