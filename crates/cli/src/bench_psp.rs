//! `puppies bench psp` — closed-loop throughput benchmark for the PSP
//! serving path.
//!
//! Two scenarios, each driven by N client threads in a closed loop (every
//! thread issues its next request the moment the previous one returns):
//!
//! * **repeat-transform** — pure `download_transformed` traffic over a
//!   small population of (photo, transformation) keys sampled from a
//!   zipf distribution (the "80/20" shape of real photo serving: a few
//!   hot derived views absorb most requests). This is where the
//!   content-addressed transform cache pays.
//! * **mixed-uncached** — download-heavy mixed traffic (downloads,
//!   params fetches, uploads) that never touches the transform cache.
//!   This is where sharding and the zero-copy `Arc<[u8]>` download path
//!   pay.
//!
//! Both scenarios run twice: once against the current [`PspServer`] and
//! once against [`LegacyServer`], an embedded replica of the pre-cache
//! server (one global `RwLock<HashMap>` of `Vec<u8>` photos, full-`Vec`
//! clone on every download, one global write-locked request log, and a
//! full decode→transform→re-encode pipeline — at hardcoded quality 75 on
//! the pixel path — for every transformed view). Running both on the
//! same machine in the same process makes the speedup ratios
//! machine-independent, which is what the CI gate checks.
//!
//! Before timing anything, the harness proves the two servers agree: the
//! batch APIs (`transform_batch`, `download_batch`) fan the whole key
//! population across a worker pool and every answer must be
//! byte-identical to the legacy pipeline's.

use puppies_core::parallel::{with_pool, WorkerPool};
use puppies_core::{protect, OwnerKey, ProtectOptions, PublicParams};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_psp::{CacheStats, PhotoId, PspServer, ServedPath};
use puppies_transform::{ScaleFilter, Transformation};
use std::collections::{HashMap, VecDeque};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Everything `bench psp` measured, ready for rendering and JSON.
pub struct PspResults {
    pub config: RunConfig,
    pub current_repeat: ScenarioStats,
    pub current_mixed: ScenarioStats,
    pub legacy_repeat: ScenarioStats,
    pub legacy_mixed: ScenarioStats,
    /// Per-op percentiles from the *current*-server runs, merged across
    /// both scenarios: (op name, p50/p95/p99 in µs).
    pub per_op: Vec<(&'static str, Pcts)>,
    pub cache: CacheStats,
    pub serve: ServeStats,
}

/// Served-path tallies from the serve-path audit: how computed transform
/// responses were produced — straight from quantized coefficients, via
/// the decode-to-pixels fallback, or from the transform-result cache.
#[derive(Clone, Copy, Default)]
pub struct ServeStats {
    pub coeff_domain: u64,
    pub pixel_fallback: u64,
    pub cached: u64,
}

impl ServeStats {
    /// Fraction of *computed* (non-cached) transform responses served
    /// without ever materializing pixels. This is the decode-free floor
    /// `bench psp --check` gates on.
    pub fn coeff_serve_rate(&self) -> f64 {
        let computed = self.coeff_domain + self.pixel_fallback;
        self.coeff_domain as f64 / computed.max(1) as f64
    }
}

#[derive(Clone, Copy)]
pub struct RunConfig {
    pub threads: usize,
    pub repeat_ops: usize,
    pub mixed_ops: usize,
    pub repeat_photos: usize,
    pub mixed_photos: usize,
    pub zipf: f64,
    pub seed: u64,
}

#[derive(Clone, Copy)]
pub struct ScenarioStats {
    pub ops: usize,
    pub wall_s: f64,
    pub ops_per_s: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

#[derive(Clone, Copy, Default)]
pub struct Pcts {
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

impl PspResults {
    pub fn speedup_repeat(&self) -> f64 {
        self.current_repeat.ops_per_s / self.legacy_repeat.ops_per_s
    }
    pub fn speedup_mixed(&self) -> f64 {
        self.current_mixed.ops_per_s / self.legacy_mixed.ops_per_s
    }
}

// ---------------------------------------------------------------------------
// The pre-PR server, replicated.
// ---------------------------------------------------------------------------

struct LegacyEntry {
    op: &'static str,
    id: u64,
    bytes: u64,
    dur_ns: u64,
    ok: bool,
}

const LEGACY_LOG_CAPACITY: usize = 256;

/// The pre-PR store's photo map: owned byte vectors behind one global lock.
type LegacyPhotoMap = HashMap<u64, (Vec<u8>, Vec<u8>)>;

/// Faithful replica of the store before the sharded/cached rewrite: the
/// same lock shapes, the same clones, the same per-request bookkeeping,
/// the same codec work per transformed view.
struct LegacyServer {
    photos: parking_lot::RwLock<LegacyPhotoMap>,
    next_id: AtomicU64,
    requests: parking_lot::RwLock<VecDeque<LegacyEntry>>,
}

impl LegacyServer {
    fn new() -> Self {
        LegacyServer {
            photos: parking_lot::RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            requests: parking_lot::RwLock::new(VecDeque::new()),
        }
    }

    fn log(&self, op: &'static str, id: u64, bytes: u64, start: Instant, ok: bool) {
        let entry = LegacyEntry {
            op,
            id,
            bytes,
            dur_ns: start.elapsed().as_nanos() as u64,
            ok,
        };
        black_box((entry.op, entry.id, entry.bytes, entry.dur_ns, entry.ok));
        let mut log = self.requests.write();
        if log.len() == LEGACY_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(entry);
    }

    fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> u64 {
        let start = Instant::now();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let size = (bytes.len() + params.len()) as u64;
        self.photos.write().insert(id, (bytes, params));
        self.log("upload", id, size, start, true);
        id
    }

    fn download(&self, id: u64) -> Vec<u8> {
        let start = Instant::now();
        let out = self.photos.read().get(&id).map(|p| p.0.clone()).unwrap();
        self.log("download", id, out.len() as u64, start, true);
        out
    }

    fn download_params(&self, id: u64) -> Vec<u8> {
        let start = Instant::now();
        let out = self.photos.read().get(&id).map(|p| p.1.clone()).unwrap();
        self.log("download_params", id, out.len() as u64, start, true);
        out
    }

    /// Serves a transformed view exactly as the pre-PR server computed
    /// one: decode, transform (hardcoded quality-75 re-encode on the
    /// pixel path), re-encode params — from scratch, every request.
    fn download_transformed(&self, id: u64, t: &Transformation) -> (Vec<u8>, Vec<u8>) {
        let start = Instant::now();
        let (bytes, params_bytes) = self.photos.read().get(&id).cloned().unwrap();
        let coeff = CoeffImage::decode(&bytes).expect("legacy decode");
        let new_bytes = if t.is_coeff_domain(coeff.width(), coeff.height()) {
            t.apply_to_coeff(&coeff)
                .expect("legacy coeff transform")
                .encode(&EncodeOptions::default())
                .expect("legacy encode")
        } else {
            let rgb = coeff.to_rgb();
            let transformed = t.apply_to_rgb(&rgb).expect("legacy rgb transform");
            puppies_jpeg::encode_rgb(&transformed, 75).expect("legacy encode")
        };
        let mut params = PublicParams::from_bytes(&params_bytes).expect("legacy params");
        params.transformation = Some(t.clone());
        let new_params = params.to_bytes();
        let total = (new_bytes.len() + new_params.len()) as u64;
        self.log("transform", id, total, start, true);
        (new_bytes, new_params)
    }
}

// ---------------------------------------------------------------------------
// A common face for both servers so one runner times either.
// ---------------------------------------------------------------------------

trait BenchTarget: Sync {
    fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> u64;
    fn download(&self, id: u64) -> usize;
    fn download_params(&self, id: u64) -> usize;
    fn download_transformed(&self, id: u64, t: &Transformation) -> usize;
}

impl BenchTarget for LegacyServer {
    fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> u64 {
        LegacyServer::upload(self, bytes, params)
    }
    fn download(&self, id: u64) -> usize {
        LegacyServer::download(self, id).len()
    }
    fn download_params(&self, id: u64) -> usize {
        LegacyServer::download_params(self, id).len()
    }
    fn download_transformed(&self, id: u64, t: &Transformation) -> usize {
        let (b, p) = LegacyServer::download_transformed(self, id, t);
        b.len() + p.len()
    }
}

impl BenchTarget for PspServer {
    fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> u64 {
        PspServer::upload(self, bytes, params).expect("upload").0
    }
    fn download(&self, id: u64) -> usize {
        PspServer::download(self, PhotoId(id))
            .expect("download")
            .len()
    }
    fn download_params(&self, id: u64) -> usize {
        PspServer::download_params(self, PhotoId(id))
            .expect("download_params")
            .len()
    }
    fn download_transformed(&self, id: u64, t: &Transformation) -> usize {
        let (b, p) = PspServer::download_transformed(self, PhotoId(id), t).expect("transformed");
        b.len() + p.len()
    }
}

// ---------------------------------------------------------------------------
// Workload machinery: seeded rng, zipf sampling, fixtures.
// ---------------------------------------------------------------------------

/// xorshift64* — tiny, seedable, good enough to shape a workload.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zipf(s) over `n` ranks via a precomputed CDF + binary search. Rank 0
/// is the hottest; callers shuffle the rank→key mapping so "hot" isn't
/// correlated with upload order.
pub(crate) struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    pub(crate) fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A deterministic textured photo, protected. High-frequency texture
/// keeps the JPEG payload realistically large so download memcpys cost
/// what they cost in production.
fn fixture(w: u32, h: u32, roi: Rect, seed: u32, quality: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(w, h, |x, y| {
        let v = x
            .wrapping_mul(31)
            .wrapping_add(y.wrapping_mul(17))
            .wrapping_add(seed.wrapping_mul(97));
        Rgb::new(
            (v.wrapping_mul(2_654_435_761) >> 24) as u8,
            (v.wrapping_mul(40_503) >> 8) as u8,
            ((x ^ y).wrapping_add(seed * 11) & 0xFF) as u8,
        )
    });
    let key = OwnerKey::from_seed([seed as u8; 32]);
    let protected = protect(
        &img,
        &[roi],
        &key,
        &ProtectOptions::default().with_quality(quality),
    )
    .expect("bench fixture protects");
    (protected.bytes, protected.params.to_bytes())
}

/// Repeat-scenario photos are small (96×72) at quality 75: the codec
/// work per miss stays in the hundreds of microseconds, so cache hits —
/// not decode amortization — carry the scenario.
pub(crate) fn repeat_fixtures(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| fixture(96, 72, Rect::new(24, 16, 32, 32), i as u32 + 1, 75))
        .collect()
}

/// Mixed-scenario photos are larger (~100 KB): the legacy server's
/// per-download `Vec` clone moves the whole payload, which is exactly
/// the cost the `Arc<[u8]>` path deletes. Payloads deliberately stay
/// below the allocator's 128 KB mmap threshold — past it, every clone
/// degenerates into mmap/munmap churn and the bench measures the
/// kernel's page-fault path instead of the store.
fn mixed_fixtures(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| fixture(320, 240, Rect::new(80, 60, 120, 80), i as u32 + 101, 85))
        .collect()
}

/// The four derived views every repeat-scenario photo is requested under:
/// two lossless coefficient-domain ops, a requantization, and a pixel-path
/// scale (which also exercises the decode memo and quality derivation).
pub(crate) fn repeat_transforms() -> Vec<Transformation> {
    vec![
        Transformation::Rotate90,
        Transformation::Rotate180,
        Transformation::Recompress { quality: 40 },
        Transformation::Scale {
            width: 48,
            height: 36,
            filter: ScaleFilter::Bilinear,
        },
    ]
}

// ---------------------------------------------------------------------------
// Closed-loop runners.
// ---------------------------------------------------------------------------

const OP_UPLOAD: usize = 0;
const OP_DOWNLOAD: usize = 1;
const OP_PARAMS: usize = 2;
const OP_TRANSFORMED: usize = 3;
pub const OP_NAMES: [&str; 4] = [
    "upload",
    "download",
    "download_params",
    "download_transformed",
];

type LatBuckets = [Vec<u32>; 4];

fn spawn_clients<F>(threads: usize, ops: usize, body: F) -> (f64, LatBuckets)
where
    F: Fn(usize, usize, &mut LatBuckets) + Sync,
{
    let per_thread = (ops / threads).max(1);
    // All clients wait on a barrier so thread-spawn cost stays outside
    // the timed window; the clock starts when the last client is ready.
    let barrier = std::sync::Barrier::new(threads + 1);
    let mut merged: LatBuckets = Default::default();
    let mut wall_s = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let body = &body;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut lats: LatBuckets = Default::default();
                    barrier.wait();
                    body(tid, per_thread, &mut lats);
                    lats
                })
            })
            .collect();
        // The clock starts *before* main enters the barrier: workers can
        // only proceed once main arrives, so this timestamp bounds the
        // first op from above. (Starting it after the barrier releases
        // would race — on one core the workers often run before main is
        // rescheduled, undercounting the wall.)
        let started = Instant::now();
        barrier.wait();
        for h in handles {
            let lats = h.join().expect("client thread");
            for (dst, src) in merged.iter_mut().zip(lats) {
                dst.extend(src);
            }
        }
        wall_s = started.elapsed().as_secs_f64();
    });
    for bucket in &mut merged {
        bucket.sort_unstable();
    }
    (wall_s, merged)
}

/// Folds one chunk's wall time and latencies into a running total.
fn accumulate(acc: &mut (f64, LatBuckets), chunk: (f64, LatBuckets)) {
    acc.0 += chunk.0;
    for (dst, src) in acc.1.iter_mut().zip(chunk.1) {
        dst.extend(src);
    }
}

fn timed(kind: usize, lats: &mut LatBuckets, f: impl FnOnce() -> usize) {
    let start = Instant::now();
    black_box(f());
    let ns = start.elapsed().as_nanos().min(u32::MAX as u128) as u32;
    lats[kind].push(ns);
}

/// Pure `download_transformed` traffic over zipf-sampled (photo, view)
/// keys. `keys` pairs server-local photo ids with transformations; the
/// rank→key permutation is seeded so both servers see the same stream.
fn run_repeat<T: BenchTarget>(
    target: &T,
    keys: &[(u64, Transformation)],
    zipf_s: f64,
    ops: usize,
    threads: usize,
    seed: u64,
) -> (f64, LatBuckets) {
    let zipf = Zipf::new(keys.len(), zipf_s);
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    let mut rng = Rng::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    for i in (1..perm.len()).rev() {
        perm.swap(i, (rng.next() % (i as u64 + 1)) as usize);
    }
    spawn_clients(threads, ops, |tid, per_thread, lats| {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (tid as u64 + 1));
        for bucket in lats.iter_mut() {
            bucket.reserve(per_thread);
        }
        for _ in 0..per_thread {
            let rank = zipf.sample(rng.unit());
            let (id, t) = &keys[perm[rank]];
            timed(OP_TRANSFORMED, lats, || target.download_transformed(*id, t));
        }
    })
}

/// Download-heavy mixed traffic — the read-mostly shape of a real photo
/// service (reads outnumber writes by orders of magnitude): 78% image
/// downloads, 20% params fetches, 2% uploads. None of it touches the
/// transform cache. Note the upload cost is asymmetric by design: the
/// legacy `Vec`-based API takes ownership of the client buffer for free,
/// while the `Arc<[u8]>` store pays one ingest copy — the timed ops
/// charge the current server for that copy honestly, and the scenario
/// shows it back out of the read path many times over.
fn run_mixed<T: BenchTarget>(
    target: &T,
    ids: &[u64],
    fixtures: &[(Vec<u8>, Vec<u8>)],
    ops: usize,
    threads: usize,
    seed: u64,
) -> (f64, LatBuckets) {
    spawn_clients(threads, ops, |tid, per_thread, lats| {
        let mut rng = Rng::new(seed.wrapping_mul(0xD134_2543_DE82_EF95) ^ (tid as u64 + 1));
        for bucket in lats.iter_mut() {
            bucket.reserve(per_thread);
        }
        for _ in 0..per_thread {
            let roll = rng.next() % 100;
            if roll < 78 {
                let id = ids[(rng.next() % ids.len() as u64) as usize];
                timed(OP_DOWNLOAD, lats, || target.download(id));
            } else if roll < 98 {
                let id = ids[(rng.next() % ids.len() as u64) as usize];
                timed(OP_PARAMS, lats, || target.download_params(id));
            } else {
                let (b, p) = &fixtures[(rng.next() % fixtures.len() as u64) as usize];
                // A real client owns its request body before the server
                // ever sees it — build the owned buffers outside the
                // timed region so the op measures the server, not the
                // client's copy.
                let (body, blob) = (b.clone(), p.clone());
                timed(OP_UPLOAD, lats, || target.upload(body, blob) as usize);
            }
        }
    })
}

pub(crate) fn pct(sorted: &[u32], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1000.0
}

fn scenario_stats(wall_s: f64, lats: &LatBuckets) -> ScenarioStats {
    let mut all: Vec<u32> = Vec::new();
    for bucket in lats {
        all.extend(bucket);
    }
    all.sort_unstable();
    let ops = all.len();
    ScenarioStats {
        ops,
        wall_s,
        ops_per_s: ops as f64 / wall_s.max(1e-9),
        p50_us: pct(&all, 0.50),
        p95_us: pct(&all, 0.95),
        p99_us: pct(&all, 0.99),
    }
}

/// Touch a chunk of heap up front so first-run page faults and allocator
/// growth land outside the timed region (same trick as the codec bench).
pub(crate) fn warm_allocator() {
    let mut sink = 0u8;
    for _ in 0..4 {
        let block = vec![0xA5u8; 4 << 20];
        sink = sink.wrapping_add(block[block.len() / 2]);
    }
    black_box(sink);
}

// ---------------------------------------------------------------------------
// The bench driver.
// ---------------------------------------------------------------------------

/// Runs both scenarios against both servers and returns the comparison.
///
/// # Errors
/// Fails if the byte-identity verification between the current server's
/// batch APIs and the legacy pipeline finds any divergence.
pub fn run(config: RunConfig) -> Result<PspResults, String> {
    warm_allocator();

    eprintln!(
        "bench psp: {} client threads, repeat {} ops over {} photos x {} views (zipf {:.2}), mixed {} ops over {} photos",
        config.threads,
        config.repeat_ops,
        config.repeat_photos,
        repeat_transforms().len(),
        config.zipf,
        config.mixed_ops,
        config.mixed_photos,
    );
    let repeat_photos = repeat_fixtures(config.repeat_photos);
    let mixed_photos = mixed_fixtures(config.mixed_photos);
    let avg = |set: &[(Vec<u8>, Vec<u8>)]| {
        set.iter().map(|(b, p)| b.len() + p.len()).sum::<usize>() / set.len().max(1)
    };
    eprintln!(
        "payloads: repeat avg {} KB, mixed avg {} KB",
        avg(&repeat_photos) / 1024,
        avg(&mixed_photos) / 1024
    );
    let transforms = repeat_transforms();

    // --- Byte-identity verification (also the batch APIs' CLI workout).
    verify_parity(&repeat_photos, &mixed_photos, &transforms, config.threads)?;

    // --- Serve-path audit (counter-verified, before anything is timed).
    let serve = audit_serve_paths(&repeat_photos, &transforms)?;

    // Each scenario alternates legacy/current across short chunks
    // rather than one long run per server: on hosts with burstable CPU
    // (frequency scaling, hypervisor quota), throughput can sag over a
    // multi-second bench, and whichever server happened to run last
    // would eat the sag. Interleaving makes both servers sample the same
    // host state, so the *ratio* — what the CI gate checks — stays
    // honest even when absolute numbers wobble.
    const CHUNKS: usize = 4;
    let chunk_seed = |c: usize| {
        config
            .seed
            .wrapping_add((c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    };

    // --- mixed-uncached scenario.
    let legacy = LegacyServer::new();
    let legacy_ids: Vec<u64> = mixed_photos
        .iter()
        .map(|(b, p)| legacy.upload(b.clone(), p.clone()))
        .collect();
    let current = PspServer::new();
    let current_ids: Vec<u64> = mixed_photos
        .iter()
        .map(|(b, p)| current.upload(b.clone(), p.clone()).expect("upload").0)
        .collect();
    let mut legacy_acc: (f64, LatBuckets) = (0.0, Default::default());
    let mut current_acc: (f64, LatBuckets) = (0.0, Default::default());
    for c in 0..CHUNKS {
        let ops = config.mixed_ops / CHUNKS;
        accumulate(
            &mut legacy_acc,
            run_mixed(
                &legacy,
                &legacy_ids,
                &mixed_photos,
                ops,
                config.threads,
                chunk_seed(c),
            ),
        );
        accumulate(
            &mut current_acc,
            run_mixed(
                &current,
                &current_ids,
                &mixed_photos,
                ops,
                config.threads,
                chunk_seed(c),
            ),
        );
    }
    let legacy_mixed = scenario_stats(legacy_acc.0, &legacy_acc.1);
    let current_mixed = scenario_stats(current_acc.0, &current_acc.1);
    let current_mixed_lats = current_acc.1;

    // --- repeat-transform scenario.
    let legacy = LegacyServer::new();
    let legacy_keys = upload_keys(&legacy, &repeat_photos, &transforms, LegacyServer::upload);
    let current = PspServer::new();
    let current_keys = upload_keys(&current, &repeat_photos, &transforms, |s, b, p| {
        s.upload(b, p).expect("upload").0
    });
    let mut legacy_acc: (f64, LatBuckets) = (0.0, Default::default());
    let mut current_acc: (f64, LatBuckets) = (0.0, Default::default());
    for c in 0..CHUNKS {
        let ops = config.repeat_ops / CHUNKS;
        accumulate(
            &mut legacy_acc,
            run_repeat(
                &legacy,
                &legacy_keys,
                config.zipf,
                ops,
                config.threads,
                chunk_seed(c),
            ),
        );
        accumulate(
            &mut current_acc,
            run_repeat(
                &current,
                &current_keys,
                config.zipf,
                ops,
                config.threads,
                chunk_seed(c),
            ),
        );
    }
    let legacy_repeat = scenario_stats(legacy_acc.0, &legacy_acc.1);
    let current_repeat = scenario_stats(current_acc.0, &current_acc.1);
    let current_repeat_lats = current_acc.1;
    let cache = current.cache_stats();

    let mut per_op = Vec::new();
    for (kind, name) in OP_NAMES.iter().enumerate() {
        let mut merged: Vec<u32> = Vec::new();
        merged.extend(&current_repeat_lats[kind]);
        merged.extend(&current_mixed_lats[kind]);
        merged.sort_unstable();
        per_op.push((
            *name,
            Pcts {
                p50_us: pct(&merged, 0.50),
                p95_us: pct(&merged, 0.95),
                p99_us: pct(&merged, 0.99),
            },
        ));
    }

    Ok(PspResults {
        config,
        current_repeat,
        current_mixed,
        legacy_repeat,
        legacy_mixed,
        per_op,
        cache,
        serve,
    })
}

/// Replays every (photo, view) pair twice against a fresh server with an
/// obs subscriber installed, and proves the decode-free serving claim
/// three ways before anything is timed:
///
/// 1. every coefficient-eligible transform is served `coeff-domain` —
///    zero decode-to-pixels fallbacks among eligible views;
/// 2. the second pass comes entirely from the transform cache;
/// 3. the `psp.serve.coeff_domain` / `psp.serve.pixel_fallback` obs
///    counters agree exactly with the per-request served-path reports.
fn audit_serve_paths(
    photos: &[(Vec<u8>, Vec<u8>)],
    transforms: &[Transformation],
) -> Result<ServeStats, String> {
    let session = puppies_obs::Obs::install();
    let server = PspServer::new();
    let mut stats = ServeStats::default();
    for (b, p) in photos {
        let id = server
            .upload(b.clone(), p.clone())
            .map_err(|e| format!("serve audit upload: {e}"))?;
        let coeff =
            CoeffImage::decode(b).map_err(|e| format!("serve audit: undecodable fixture: {e}"))?;
        let (w, h) = (coeff.width(), coeff.height());
        for pass in 0..2 {
            for t in transforms {
                let (_, _, served) = server
                    .download_transformed_traced(id, t)
                    .map_err(|e| format!("serve audit transform: {e}"))?;
                match served {
                    ServedPath::CoeffDomain => stats.coeff_domain += 1,
                    ServedPath::PixelFallback => stats.pixel_fallback += 1,
                    ServedPath::Cached | ServedPath::SigCached => stats.cached += 1,
                    ServedPath::NotApplicable => {
                        return Err(format!(
                            "serve audit: transform {t:?} reported no served path"
                        ))
                    }
                }
                if t.is_coeff_domain(w, h) && served == ServedPath::PixelFallback {
                    return Err(format!(
                        "serve-path violation: coeff-eligible {t:?} on a {w}x{h} photo \
                         decoded to pixels"
                    ));
                }
                if pass == 1 && !matches!(served, ServedPath::Cached | ServedPath::SigCached) {
                    return Err(format!(
                        "serve audit: repeated {t:?} missed the transform cache ({})",
                        served.as_str()
                    ));
                }
            }
        }
    }
    let obs = session
        .finish()
        .ok_or_else(|| "serve audit: obs session lost".to_string())?;
    let counter = |name: &str| obs.metrics().counter(name).map_or(0, |c| c.get());
    let (coeff_ctr, pixel_ctr) = (
        counter("psp.serve.coeff_domain"),
        counter("psp.serve.pixel_fallback"),
    );
    if coeff_ctr != stats.coeff_domain || pixel_ctr != stats.pixel_fallback {
        return Err(format!(
            "serve audit: obs counters disagree with per-request reports \
             (coeff {coeff_ctr} vs {}, pixel {pixel_ctr} vs {})",
            stats.coeff_domain, stats.pixel_fallback
        ));
    }
    eprintln!(
        "serve audit: {} coeff-domain, {} pixel-fallback, {} cached — coeff rate {:.0}%, \
         zero eligible fallbacks, counters agree",
        stats.coeff_domain,
        stats.pixel_fallback,
        stats.cached,
        stats.coeff_serve_rate() * 100.0
    );
    Ok(stats)
}

fn upload_keys<S>(
    server: &S,
    photos: &[(Vec<u8>, Vec<u8>)],
    transforms: &[Transformation],
    upload: impl Fn(&S, Vec<u8>, Vec<u8>) -> u64,
) -> Vec<(u64, Transformation)> {
    let mut keys = Vec::with_capacity(photos.len() * transforms.len());
    for (b, p) in photos {
        let id = upload(server, b.clone(), p.clone());
        for t in transforms {
            keys.push((id, t.clone()));
        }
    }
    keys
}

/// Every (photo, view) answer from the current server's `transform_batch`
/// — fanned across a worker pool — must be byte-identical to the legacy
/// pipeline's, and `download_batch` must return the uploaded bytes
/// unchanged. A bench that compares servers doing *different* work would
/// be meaningless, so parity failures are fatal.
fn verify_parity(
    repeat_photos: &[(Vec<u8>, Vec<u8>)],
    mixed_photos: &[(Vec<u8>, Vec<u8>)],
    transforms: &[Transformation],
    threads: usize,
) -> Result<(), String> {
    let legacy = LegacyServer::new();
    let legacy_keys = upload_keys(&legacy, repeat_photos, transforms, LegacyServer::upload);
    let current = PspServer::new();
    let current_keys = upload_keys(&current, repeat_photos, transforms, |s, b, p| {
        s.upload(b, p).expect("upload").0
    });
    let requests: Vec<(PhotoId, Transformation)> = current_keys
        .iter()
        .map(|(id, t)| (PhotoId(*id), t.clone()))
        .collect();
    let pool = WorkerPool::new(threads.clamp(1, 4));
    let batch = with_pool(&pool, || current.transform_batch(&requests));
    for (i, result) in batch.into_iter().enumerate() {
        let (bytes, params) = result.map_err(|e| format!("transform_batch[{i}]: {e}"))?;
        let (id, ref t) = legacy_keys[i];
        let (lb, lp) = legacy.download_transformed(id, t);
        if bytes.as_ref() != lb.as_slice() || params.as_ref() != lp.as_slice() {
            return Err(format!(
                "parity violation: transform_batch[{i}] diverged from the legacy pipeline"
            ));
        }
    }
    let ids: Vec<PhotoId> = mixed_photos
        .iter()
        .map(|(b, p)| current.upload(b.clone(), p.clone()).expect("upload"))
        .collect();
    let downloads = with_pool(&pool, || current.download_batch(&ids));
    for (i, result) in downloads.into_iter().enumerate() {
        let bytes = result.map_err(|e| format!("download_batch[{i}]: {e}"))?;
        if bytes.as_ref() != mixed_photos[i].0.as_slice() {
            return Err(format!(
                "parity violation: download_batch[{i}] did not return the uploaded bytes"
            ));
        }
    }
    eprintln!(
        "parity: {} transformed views + {} downloads byte-identical to the legacy pipeline",
        legacy_keys.len(),
        ids.len()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Rendering, JSON, and the CI gate.
// ---------------------------------------------------------------------------

pub fn render(res: &PspResults) -> Vec<String> {
    let mut out = Vec::new();
    for (name, cur, old) in [
        ("repeat-transform", &res.current_repeat, &res.legacy_repeat),
        ("mixed-uncached", &res.current_mixed, &res.legacy_mixed),
    ] {
        out.push(format!(
            "{name:>16}: legacy {:>9.0} ops/s | current {:>9.0} ops/s | speedup {:5.2}x",
            old.ops_per_s,
            cur.ops_per_s,
            cur.ops_per_s / old.ops_per_s,
        ));
    }
    out.push(format!(
        "{:>16}: {} hits / {} misses / {} evictions (hit rate {:.1}%)",
        "transform cache",
        res.cache.hits,
        res.cache.misses,
        res.cache.evictions,
        res.cache.hit_rate() * 100.0,
    ));
    out.push(format!(
        "{:>16}: {} coeff-domain / {} pixel-fallback / {} cached (coeff rate {:.1}%)",
        "serve paths",
        res.serve.coeff_domain,
        res.serve.pixel_fallback,
        res.serve.cached,
        res.serve.coeff_serve_rate() * 100.0,
    ));
    for (name, p) in &res.per_op {
        if p.p50_us > 0.0 || p.p99_us > 0.0 {
            out.push(format!(
                "{name:>16}: p50 {:8.1} us  p95 {:8.1} us  p99 {:8.1} us",
                p.p50_us, p.p95_us, p.p99_us
            ));
        }
    }
    out
}

fn scenario_json(s: &ScenarioStats, hit_rate: Option<f64>) -> String {
    let hit = match hit_rate {
        Some(h) => format!(", \"hit_rate\": {h:.4}"),
        None => String::new(),
    };
    format!(
        "{{\"ops\": {}, \"wall_s\": {:.3}, \"ops_per_s\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}{hit}}}",
        s.ops, s.wall_s, s.ops_per_s, s.p50_us, s.p95_us, s.p99_us
    )
}

/// Serializes results in the same hand-rolled, fixed-schema style as the
/// codec bench: two scenario sections for the current and pre-PR servers,
/// the machine-independent speedup ratios, cache counters, and per-op
/// percentiles from the current runs.
pub fn to_json(res: &PspResults) -> String {
    let c = &res.config;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"threads\": {}, \"repeat_ops\": {}, \"mixed_ops\": {}, \"repeat_photos\": {}, \"mixed_photos\": {}, \"zipf\": {:.2}, \"seed\": {}, \"simd_backend\": \"{}\", \"f32_lanes\": {}}},\n",
        c.threads, c.repeat_ops, c.mixed_ops, c.repeat_photos, c.mixed_photos, c.zipf, c.seed,
        puppies_image::simd::backend().name(),
        puppies_image::simd::backend().f32_lanes()
    ));
    out.push_str("  \"current\": {\n");
    out.push_str(&format!(
        "    \"repeat_transform\": {},\n",
        scenario_json(&res.current_repeat, Some(res.cache.hit_rate()))
    ));
    out.push_str(&format!(
        "    \"mixed_uncached\": {}\n  }},\n",
        scenario_json(&res.current_mixed, None)
    ));
    out.push_str("  \"baseline_pre_pr\": {\n");
    out.push_str(&format!(
        "    \"repeat_transform\": {},\n",
        scenario_json(&res.legacy_repeat, None)
    ));
    out.push_str(&format!(
        "    \"mixed_uncached\": {}\n  }},\n",
        scenario_json(&res.legacy_mixed, None)
    ));
    out.push_str(&format!(
        "  \"speedup_vs_pre_pr\": {{\"repeat_transform\": {:.2}, \"mixed_uncached\": {:.2}}},\n",
        res.speedup_repeat(),
        res.speedup_mixed()
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n",
        res.cache.hits,
        res.cache.misses,
        res.cache.evictions,
        res.cache.hit_rate()
    ));
    out.push_str(&format!(
        "  \"serve\": {{\"coeff_domain\": {}, \"pixel_fallback\": {}, \"cached\": {}, \"coeff_serve_rate\": {:.4}}},\n",
        res.serve.coeff_domain,
        res.serve.pixel_fallback,
        res.serve.cached,
        res.serve.coeff_serve_rate()
    ));
    out.push_str("  \"per_op_us\": {\n");
    for (i, (name, p)) in res.per_op.iter().enumerate() {
        let sep = if i + 1 == res.per_op.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{name}\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}{sep}\n",
            p.p50_us, p.p95_us, p.p99_us
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts `"ops_per_s"` for one scenario of one section from a
/// committed results file. Fixed-schema scanning, like the codec bench's
/// parser — the files are produced by [`to_json`] only.
pub fn parse_ops_per_s(json: &str, section: &str, scenario: &str) -> Result<f64, String> {
    let sec_at = json
        .find(&format!("\"{section}\""))
        .ok_or_else(|| format!("section {section:?} not found"))?;
    let rest = &json[sec_at..];
    let scen_at = rest
        .find(&format!("\"{scenario}\""))
        .ok_or_else(|| format!("scenario {scenario:?} not found in {section:?}"))?;
    let rest = &rest[scen_at..];
    let key = "\"ops_per_s\": ";
    let val_at = rest
        .find(key)
        .ok_or_else(|| format!("ops_per_s not found for {section}/{scenario}"))?;
    let tail = &rest[val_at + key.len()..];
    let end = tail
        .find([',', '}'])
        .ok_or_else(|| "unterminated ops_per_s value".to_string())?;
    tail[..end]
        .trim()
        .parse()
        .map_err(|e| format!("bad ops_per_s for {section}/{scenario}: {e}"))
}

pub struct CheckLimits {
    /// Allowed fractional drop below the committed current throughput
    /// (0.85 ⇒ fresh must reach 15% of committed — a cross-machine band,
    /// not a regression tripwire; the speedup floors below are the
    /// machine-independent gate).
    pub threshold: f64,
    pub min_speedup_repeat: f64,
    pub min_speedup_mixed: f64,
    pub min_hit_rate: f64,
    /// Floor on the fraction of computed transforms served straight from
    /// quantized coefficients. The audited workload's four views are
    /// three coeff-eligible + one pixel scale, so a healthy run sits at
    /// 0.75; 0.5 catches the hot path silently falling back wholesale.
    pub min_coeff_serve_rate: f64,
}

impl Default for CheckLimits {
    fn default() -> Self {
        CheckLimits {
            threshold: 0.85,
            min_speedup_repeat: 5.0,
            min_speedup_mixed: 2.0,
            min_hit_rate: 0.5,
            min_coeff_serve_rate: 0.5,
        }
    }
}

/// The CI gate: fresh throughput within the band of the committed file,
/// plus the machine-independent floors — repeat-transform speedup,
/// mixed-ops speedup, and cache hit rate, all measured this run.
pub fn check(res: &PspResults, committed: &str, limits: &CheckLimits) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut ok = true;
    for (scenario, fresh) in [
        ("repeat_transform", res.current_repeat.ops_per_s),
        ("mixed_uncached", res.current_mixed.ops_per_s),
    ] {
        match parse_ops_per_s(committed, "current", scenario) {
            Ok(base) => {
                let ratio = fresh / base;
                let pass = ratio >= 1.0 - limits.threshold;
                ok &= pass;
                lines.push(format!(
                    "{scenario:>18}: {fresh:>9.0} ops/s vs committed {base:>9.0} (x{ratio:.2}, floor x{:.2}) {}",
                    1.0 - limits.threshold,
                    if pass { "ok" } else { "REGRESSED" }
                ));
            }
            Err(e) => {
                ok = false;
                lines.push(format!("{scenario:>18}: {e}"));
            }
        }
    }
    for (name, got, floor) in [
        (
            "speedup repeat",
            res.speedup_repeat(),
            limits.min_speedup_repeat,
        ),
        (
            "speedup mixed",
            res.speedup_mixed(),
            limits.min_speedup_mixed,
        ),
        ("cache hit rate", res.cache.hit_rate(), limits.min_hit_rate),
        (
            "coeff serve rate",
            res.serve.coeff_serve_rate(),
            limits.min_coeff_serve_rate,
        ),
    ] {
        let pass = got >= floor;
        ok &= pass;
        lines.push(format!(
            "{name:>18}: {got:.2} (floor {floor:.2}) {}",
            if pass { "ok" } else { "BELOW FLOOR" }
        ));
    }
    (lines, ok)
}

// ---------------------------------------------------------------------------
// CLI entry point.
// ---------------------------------------------------------------------------

/// `puppies bench psp [--threads N] [--repeat-ops N] [--mixed-ops N]
/// [--repeat-photos N] [--mixed-photos N] [--zipf S] [--seed N]
/// [--out file] [--check file [--threshold F] [--min-speedup-repeat F]
/// [--min-speedup-mixed F] [--min-hit-rate F] [--min-coeff-serve-rate F]]
/// [--trace file] [--stats file]`
pub fn cmd(args: &[String]) -> Result<(), String> {
    let parse_num = |name: &str, default: f64| -> Result<f64, String> {
        match crate::flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name} {v:?}: {e}")),
            None => Ok(default),
        }
    };
    let config = RunConfig {
        threads: (parse_num("--threads", 8.0)? as usize).max(1),
        repeat_ops: (parse_num("--repeat-ops", 1600.0)? as usize).max(8),
        mixed_ops: (parse_num("--mixed-ops", 6000.0)? as usize).max(8),
        repeat_photos: (parse_num("--repeat-photos", 32.0)? as usize).max(1),
        mixed_photos: (parse_num("--mixed-photos", 32.0)? as usize).max(1),
        zipf: parse_num("--zipf", 1.1)?,
        seed: parse_num("--seed", 0x5EED_CAFE as f64)? as u64,
    };
    let limits = CheckLimits {
        threshold: parse_num("--threshold", CheckLimits::default().threshold)?,
        min_speedup_repeat: parse_num(
            "--min-speedup-repeat",
            CheckLimits::default().min_speedup_repeat,
        )?,
        min_speedup_mixed: parse_num(
            "--min-speedup-mixed",
            CheckLimits::default().min_speedup_mixed,
        )?,
        min_hit_rate: parse_num("--min-hit-rate", CheckLimits::default().min_hit_rate)?,
        min_coeff_serve_rate: parse_num(
            "--min-coeff-serve-rate",
            CheckLimits::default().min_coeff_serve_rate,
        )?,
    };

    let res = run(config)?;
    for line in render(&res) {
        println!("{line}");
    }

    // Instrumented slice *after* the timed runs (installing the subscriber
    // first would tax the comparison): a short single-threaded replay on a
    // fresh server, purely to produce the trace/stats artifacts.
    if let Some(obs) = crate::obs_from_args(args) {
        let server = PspServer::new();
        let photos = repeat_fixtures(8);
        let transforms = repeat_transforms();
        let keys = upload_keys(&server, &photos, &transforms, |s, b, p| {
            s.upload(b, p).expect("upload").0
        });
        let _ = run_repeat(&server, &keys, config.zipf, 200, 1, config.seed);
        obs.finish()?;
    }

    let json = to_json(&res);
    if let Some(out) = crate::flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("results written to {out}");
    }
    if let Some(path) = crate::flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let (lines, ok) = check(&res, &text, &limits);
        for l in &lines {
            println!("{l}");
        }
        if !ok {
            return Err(format!("psp serving bench failed the gate against {path}"));
        }
        println!("psp serving gate passed against {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_samples_in_range() {
        let z = Zipf::new(100, 1.1);
        assert!(z.cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        let mut rng = Rng::new(7);
        let mut hottest = 0usize;
        for _ in 0..10_000 {
            let r = z.sample(rng.unit());
            assert!(r < 100);
            if r == 0 {
                hottest += 1;
            }
        }
        // Rank 0 carries 1/H_{100,1.1} ≈ 20% of the mass.
        assert!(hottest > 1000, "rank 0 sampled only {hottest}/10000 times");
    }

    fn fake_results() -> PspResults {
        let s = |ops_per_s: f64| ScenarioStats {
            ops: 1000,
            wall_s: 1.0,
            ops_per_s,
            p50_us: 1.0,
            p95_us: 2.0,
            p99_us: 3.0,
        };
        PspResults {
            config: RunConfig {
                threads: 8,
                repeat_ops: 1000,
                mixed_ops: 1000,
                repeat_photos: 4,
                mixed_photos: 4,
                zipf: 1.1,
                seed: 1,
            },
            current_repeat: s(60_000.0),
            current_mixed: s(900_000.0),
            legacy_repeat: s(6_000.0),
            legacy_mixed: s(300_000.0),
            per_op: vec![("download", Pcts::default())],
            cache: CacheStats {
                hits: 900,
                misses: 100,
                evictions: 0,
                entries: 100,
                bytes: 1000,
                capacity_bytes: 1 << 20,
            },
            serve: ServeStats {
                coeff_domain: 96,
                pixel_fallback: 32,
                cached: 128,
            },
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let res = fake_results();
        let json = to_json(&res);
        assert_eq!(
            parse_ops_per_s(&json, "current", "repeat_transform").unwrap(),
            60_000.0
        );
        assert_eq!(
            parse_ops_per_s(&json, "baseline_pre_pr", "mixed_uncached").unwrap(),
            300_000.0
        );
    }

    #[test]
    fn check_gates_on_speedup_floors_and_hit_rate() {
        let res = fake_results();
        let committed = to_json(&res);
        let (_, ok) = check(&res, &committed, &CheckLimits::default());
        assert!(ok, "healthy results must pass their own file");
        // Collapse the repeat speedup below the floor: gate must trip.
        let mut slow = fake_results();
        slow.current_repeat.ops_per_s = 20_000.0;
        let (lines, ok) = check(&slow, &committed, &CheckLimits::default());
        assert!(!ok, "speedup 3.3x must fail the 5x floor: {lines:?}");
        // A hit-rate collapse trips it too.
        let mut cold = fake_results();
        cold.cache.hits = 10;
        cold.cache.misses = 990;
        let (lines, ok) = check(&cold, &committed, &CheckLimits::default());
        assert!(!ok, "1% hit rate must fail the 50% floor: {lines:?}");
        // A wholesale fall-back to the pixel pipeline trips it too.
        let mut pixels = fake_results();
        pixels.serve.coeff_domain = 16;
        pixels.serve.pixel_fallback = 112;
        let (lines, ok) = check(&pixels, &committed, &CheckLimits::default());
        assert!(
            !ok,
            "12% coeff serve rate must fail the 50% floor: {lines:?}"
        );
    }

    #[test]
    fn coeff_serve_rate_counts_only_computed_responses() {
        let s = ServeStats {
            coeff_domain: 3,
            pixel_fallback: 1,
            cached: 1000,
        };
        assert!((s.coeff_serve_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ServeStats::default().coeff_serve_rate(), 0.0);
    }
}
