//! `puppies bench psp --net` — closed-loop load generator for the
//! networked PSP (`puppies serve` stack, exercised in-process over real
//! loopback TCP).
//!
//! The harness boots a [`puppies_psp::net::Server`] on an ephemeral port
//! with a throwaway store, uploads a photo population, then drives it
//! with N blocking client connections, each in a closed loop:
//!
//! * **net-cached-transform** — `POST /photos/<id>/transformed` over
//!   zipf-sampled (photo, view) keys, the shape where the transform
//!   cache absorbs almost every request; the client-side `x-cache`
//!   header gives the end-to-end hit rate.
//! * **net-mixed** — 78% downloads / 20% params / 2% uploads, the
//!   read-mostly door mix, all over the wire.
//!
//! For a machine-independent gate, the same key population is then
//! served *in process* on [`PspConfig::uncached`] — the full
//! decode→transform→re-encode pipeline with no cache and no network.
//! The ratio `net cached / in-process uncached` is the committed floor:
//! if a networked cache hit cannot beat half the speed of a local
//! uncached transform, the serving stack (framing, HTTP parse, thread
//! handoff) is eating more than the codec it was built to avoid.
//!
//! Latencies are recorded through `puppies-obs` histograms — the same
//! process hosts the server, so its `psp.net.*` request metrics land in
//! the same snapshot and both sides of the wire appear in `--stats` /
//! `--trace` artifacts.

use crate::bench_psp::{
    pct, repeat_fixtures, repeat_transforms, warm_allocator, Rng, ServeStats, Zipf,
};
use puppies_psp::net::client::{WireCache, WireServed};
use puppies_psp::net::{Client, ServeConfig, Server};
use puppies_psp::{PhotoId, PspConfig, PspServer};
use puppies_transform::Transformation;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One timed scenario: op count, wall, throughput, percentiles (µs).
pub struct NetScenario {
    pub ops: usize,
    pub wall_s: f64,
    pub ops_per_s: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

pub struct NetResults {
    pub config: NetConfig,
    pub net_cached: NetScenario,
    pub net_mixed: NetScenario,
    pub inprocess_uncached: NetScenario,
    /// End-to-end cache hit rate observed from `x-cache` headers.
    pub hit_rate: f64,
    /// Served-path tallies observed from `x-served-path` headers on the
    /// cached-transform loop: the wire-visible decode-free claim.
    pub serve: ServeStats,
}

#[derive(Clone, Copy)]
pub struct NetConfig {
    pub connections: usize,
    pub transform_ops: usize,
    pub mixed_ops: usize,
    pub photos: usize,
    pub zipf: f64,
    pub seed: u64,
}

impl NetResults {
    /// The machine-independent ratio the CI floor checks.
    pub fn net_vs_inprocess(&self) -> f64 {
        self.net_cached.ops_per_s / self.inprocess_uncached.ops_per_s
    }
}

fn stats(wall_s: f64, mut lats_ns: Vec<u32>) -> NetScenario {
    lats_ns.sort_unstable();
    NetScenario {
        ops: lats_ns.len(),
        wall_s,
        ops_per_s: lats_ns.len() as f64 / wall_s.max(1e-9),
        p50_us: pct(&lats_ns, 0.50),
        p95_us: pct(&lats_ns, 0.95),
        p99_us: pct(&lats_ns, 0.99),
    }
}

/// Runs `per_conn` closed-loop iterations on `connections` threads, each
/// with its own `Client`, timing every op and mirroring it into the named
/// obs histogram. Returns `(wall_s, latencies_ns)`.
fn drive_clients(
    addr: &str,
    connections: usize,
    per_conn: usize,
    hist: &'static str,
    body: impl Fn(&mut Client, usize, &mut Rng) -> Result<(), String> + Sync,
) -> Result<(f64, Vec<u32>), String> {
    let barrier = std::sync::Barrier::new(connections + 1);
    let mut merged: Vec<u32> = Vec::with_capacity(connections * per_conn);
    let mut wall_s = 0.0;
    let err: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|tid| {
                let barrier = &barrier;
                let body = &body;
                let err = &err;
                scope.spawn(move || -> Vec<u32> {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(e) => {
                            *err.lock() = Some(format!("connect: {e}"));
                            barrier.wait();
                            return Vec::new();
                        }
                    };
                    let mut rng = Rng::new(0x5EED_0000 ^ (tid as u64 + 1));
                    let mut lats = Vec::with_capacity(per_conn);
                    barrier.wait();
                    for i in 0..per_conn {
                        let start = Instant::now();
                        if let Err(e) = body(&mut client, i, &mut rng) {
                            *err.lock() = Some(e);
                            break;
                        }
                        let ns = start.elapsed().as_nanos().min(u32::MAX as u128) as u32;
                        lats.push(ns);
                        puppies_obs::record(hist, u64::from(ns) / 1000);
                    }
                    lats
                })
            })
            .collect();
        let started = Instant::now();
        barrier.wait();
        for h in handles {
            merged.extend(h.join().expect("client thread"));
        }
        wall_s = started.elapsed().as_secs_f64();
    });
    if let Some(e) = err.into_inner() {
        return Err(format!("net bench client failed: {e}"));
    }
    Ok((wall_s, merged))
}

/// Boots the server, runs all three scenarios, shuts the server down
/// gracefully, and returns the comparison.
///
/// # Errors
/// Fails on server/client errors or a parity violation between the wire
/// and the in-process serving path.
pub fn run(config: NetConfig) -> Result<NetResults, String> {
    warm_allocator();
    let dir = std::env::temp_dir().join(format!("puppies_bench_net_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    // fsync off: uploads happen during setup and 2% of the mixed loop;
    // this bench measures the serving stack, not the disk.
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.clone(),
        fsync: false,
        psp: PspConfig::default(),
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?
        .to_string();
    let server_thread = std::thread::spawn(move || server.run());
    let admin = std::fs::read_to_string(dir.join("admin.token"))
        .map_err(|e| format!("admin token: {e}"))?
        .trim()
        .to_string();

    eprintln!(
        "bench psp --net: {} connection(s) to {addr}, transform {} ops over {} photos x {} views (zipf {:.2}), mixed {} ops",
        config.connections,
        config.transform_ops,
        config.photos,
        repeat_transforms().len(),
        config.zipf,
        config.mixed_ops,
    );

    // --- Setup: upload the photo population over the wire.
    let photos = repeat_fixtures(config.photos);
    let transforms = repeat_transforms();
    let mut setup = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let mut keys: Vec<(PhotoId, Transformation)> = Vec::new();
    for (bytes, params) in &photos {
        let receipt = setup
            .upload(bytes, params)
            .map_err(|e| format!("setup upload: {e}"))?;
        for t in &transforms {
            keys.push((receipt.id, t.clone()));
        }
    }

    // Parity spot-check: the wire must serve exactly what the in-process
    // path computes, or throughput numbers compare different work.
    let reference = PspServer::new();
    let ref_id = reference
        .upload(photos[0].0.clone(), photos[0].1.clone())
        .map_err(|e| e.to_string())?;
    let (wire_b, wire_p, _, wire_served) = setup
        .download_transformed_traced(keys[0].0, &keys[0].1)
        .map_err(|e| format!("parity transform: {e}"))?;
    if wire_served != WireServed::CoeffDomain {
        return Err(format!(
            "serve-path violation: coeff-eligible {:?} served {wire_served:?} over the wire",
            keys[0].1
        ));
    }
    let (ref_b, ref_p) = reference
        .download_transformed(ref_id, &keys[0].1)
        .map_err(|e| e.to_string())?;
    if wire_b != ref_b.to_vec() || wire_p != ref_p.to_vec() {
        return Err("parity violation: wire transform differs from in-process".into());
    }

    // --- net-cached-transform: zipf keys, closed loop per connection.
    let zipf = Zipf::new(keys.len(), config.zipf);
    let hits = AtomicU64::new(0);
    let lookups = AtomicU64::new(0);
    let served_coeff = AtomicU64::new(0);
    let served_pixel = AtomicU64::new(0);
    let served_cached = AtomicU64::new(0);
    let per_conn = (config.transform_ops / config.connections).max(1);
    let keys_ref = &keys;
    let (wall, lats) = drive_clients(
        &addr,
        config.connections,
        per_conn,
        "bench.net.transformed_us",
        |client, _i, rng| {
            let (id, t) = &keys_ref[zipf.sample(rng.unit())];
            let (_, _, cache, served) = client
                .download_transformed_traced(*id, t)
                .map_err(|e| format!("download_transformed: {e}"))?;
            lookups.fetch_add(1, Ordering::Relaxed);
            if cache == WireCache::Hit {
                hits.fetch_add(1, Ordering::Relaxed);
            }
            match served {
                WireServed::CoeffDomain => served_coeff.fetch_add(1, Ordering::Relaxed),
                WireServed::PixelFallback => served_pixel.fetch_add(1, Ordering::Relaxed),
                WireServed::Cached | WireServed::SigCached => {
                    served_cached.fetch_add(1, Ordering::Relaxed)
                }
                WireServed::Unknown => return Err("server did not report x-served-path".into()),
            };
            Ok(())
        },
    )?;
    let net_cached = stats(wall, lats);
    let hit_rate =
        hits.load(Ordering::Relaxed) as f64 / lookups.load(Ordering::Relaxed).max(1) as f64;
    let serve = ServeStats {
        coeff_domain: served_coeff.load(Ordering::Relaxed),
        pixel_fallback: served_pixel.load(Ordering::Relaxed),
        cached: served_cached.load(Ordering::Relaxed),
    };

    // --- net-mixed: read-mostly door mix over the wire.
    let ids: Vec<PhotoId> = keys
        .iter()
        .map(|(id, _)| *id)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let ids_ref = &ids;
    let photos_ref = &photos;
    let per_conn = (config.mixed_ops / config.connections).max(1);
    let (wall, lats) = drive_clients(
        &addr,
        config.connections,
        per_conn,
        "bench.net.mixed_us",
        |client, _i, rng| {
            let roll = rng.next() % 100;
            if roll < 78 {
                let id = ids_ref[(rng.next() % ids_ref.len() as u64) as usize];
                client.download(id).map_err(|e| format!("download: {e}"))?;
            } else if roll < 98 {
                let id = ids_ref[(rng.next() % ids_ref.len() as u64) as usize];
                client
                    .download_params(id)
                    .map_err(|e| format!("params: {e}"))?;
            } else {
                let (b, p) = &photos_ref[(rng.next() % photos_ref.len() as u64) as usize];
                client.upload(b, p).map_err(|e| format!("upload: {e}"))?;
            }
            Ok(())
        },
    )?;
    let net_mixed = stats(wall, lats);

    // --- Stitched end-to-end trace: only when a subscriber is live (the
    // `--trace` / `--obs-overhead-gate` rerun), so the plain run stays
    // untouched by the extra ops.
    if puppies_obs::enabled() {
        trace_stitch(&addr, &photos[0])?;
    }

    // --- Graceful shutdown before the in-process baseline so the server's
    // threads aren't competing for cores.
    setup
        .shutdown(&admin)
        .map_err(|e| format!("shutdown: {e}"))?;
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server: {e}"))?;

    // --- In-process uncached baseline: the same zipf stream against the
    // raw pipeline (no cache, no memo, no network).
    let uncached = PspServer::with_config(PspConfig::uncached());
    let local_keys: Vec<(PhotoId, Transformation)> = {
        let mut out = Vec::new();
        for (bytes, params) in &photos {
            let id = uncached
                .upload(bytes.clone(), params.clone())
                .map_err(|e| e.to_string())?;
            for t in &transforms {
                out.push((id, t.clone()));
            }
        }
        out
    };
    let per_conn = (config.transform_ops / config.connections).max(1);
    let barrier = std::sync::Barrier::new(config.connections + 1);
    let mut merged: Vec<u32> = Vec::new();
    let mut wall_s = 0.0;
    let uncached_ref = &uncached;
    let local_keys_ref = &local_keys;
    let zipf_ref = &zipf;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|tid| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng = Rng::new(0x5EED_0000 ^ (tid as u64 + 1));
                    let mut lats = Vec::with_capacity(per_conn);
                    barrier.wait();
                    for _ in 0..per_conn {
                        let (id, t) = &local_keys_ref[zipf_ref.sample(rng.unit())];
                        let start = Instant::now();
                        let served = uncached_ref.download_transformed(*id, t);
                        std::hint::black_box(served.expect("uncached transform"));
                        let ns = start.elapsed().as_nanos().min(u32::MAX as u128) as u32;
                        lats.push(ns);
                        puppies_obs::record("bench.inprocess.uncached_us", u64::from(ns) / 1000);
                    }
                    lats
                })
            })
            .collect();
        let started = Instant::now();
        barrier.wait();
        for h in handles {
            merged.extend(h.join().expect("baseline thread"));
        }
        wall_s = started.elapsed().as_secs_f64();
    });
    let inprocess_uncached = stats(wall_s, merged);

    let _ = std::fs::remove_dir_all(&dir);
    Ok(NetResults {
        config,
        net_cached,
        net_mixed,
        inprocess_uncached,
        hit_rate,
        serve,
    })
}

/// One fully stitched operation for the committed trace artifact: a root
/// span owning a wire upload + transform (client → server through the
/// `x-puppies-trace` header) and a k-of-n cluster upload + reconstruct
/// (root → per-backend spans through explicit parents), so a single trace
/// id covers client, server, worker pool, and all n backends.
fn trace_stitch(addr: &str, photo: &(Vec<u8>, Vec<u8>)) -> Result<(), String> {
    let _root = puppies_obs::span("bench.net.e2e", "bench");
    let mut client = Client::connect(addr).map_err(|e| format!("stitch connect: {e}"))?;
    let receipt = client
        .upload(&photo.0, &photo.1)
        .map_err(|e| format!("stitch upload: {e}"))?;
    client
        .download_transformed_traced(receipt.id, &Transformation::Rotate90)
        .map_err(|e| format!("stitch transform: {e}"))?;
    let mut cfg = puppies_psp::ClusterConfig::new(3, 2);
    cfg.backend = PspConfig::uncached();
    let cluster = puppies_psp::ShardedPspCluster::new(cfg).map_err(|e| e.to_string())?;
    let grant = puppies_core::OwnerKey::from_seed([7u8; 32]).grant_all();
    let id = cluster
        .upload(photo.0.clone(), photo.1.clone(), &grant)
        .map_err(|e| format!("stitch cluster upload: {e}"))?;
    cluster
        .reconstruct(id)
        .map_err(|e| format!("stitch cluster reconstruct: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Rendering, JSON, and the CI gate.
// ---------------------------------------------------------------------------

pub fn render(res: &NetResults) -> Vec<String> {
    let line = |name: &str, s: &NetScenario| {
        format!(
            "{name:>22}: {:>9.0} ops/s  p50 {:7.1} us  p95 {:7.1} us  p99 {:7.1} us",
            s.ops_per_s, s.p50_us, s.p95_us, s.p99_us
        )
    };
    vec![
        line("net-cached-transform", &res.net_cached),
        line("net-mixed", &res.net_mixed),
        line("inprocess-uncached", &res.inprocess_uncached),
        format!(
            "{:>22}: {:.2}x (net cached vs in-process uncached), hit rate {:.1}%",
            "ratio",
            res.net_vs_inprocess(),
            res.hit_rate * 100.0
        ),
        format!(
            "{:>22}: {} coeff-domain / {} pixel-fallback / {} cached (coeff rate {:.1}%)",
            "served paths",
            res.serve.coeff_domain,
            res.serve.pixel_fallback,
            res.serve.cached,
            res.serve.coeff_serve_rate() * 100.0
        ),
    ]
}

fn scenario_json(s: &NetScenario, hit_rate: Option<f64>) -> String {
    let hit = match hit_rate {
        Some(h) => format!(", \"hit_rate\": {h:.4}"),
        None => String::new(),
    };
    format!(
        "{{\"ops\": {}, \"wall_s\": {:.3}, \"ops_per_s\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}{hit}}}",
        s.ops, s.wall_s, s.ops_per_s, s.p50_us, s.p95_us, s.p99_us
    )
}

/// Fixed-schema JSON, committed as `results/BENCH_psp_net.json`.
pub fn to_json(res: &NetResults) -> String {
    let c = &res.config;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"config\": {{\"connections\": {}, \"transform_ops\": {}, \"mixed_ops\": {}, \"photos\": {}, \"zipf\": {:.2}, \"seed\": {}}},\n",
        c.connections, c.transform_ops, c.mixed_ops, c.photos, c.zipf, c.seed
    ));
    out.push_str("  \"net\": {\n");
    out.push_str(&format!(
        "    \"cached_transform\": {},\n",
        scenario_json(&res.net_cached, Some(res.hit_rate))
    ));
    out.push_str(&format!(
        "    \"mixed\": {}\n  }},\n",
        scenario_json(&res.net_mixed, None)
    ));
    out.push_str(&format!(
        "  \"inprocess_uncached\": {{\n    \"transform\": {}\n  }},\n",
        scenario_json(&res.inprocess_uncached, None)
    ));
    out.push_str(&format!(
        "  \"serve\": {{\"coeff_domain\": {}, \"pixel_fallback\": {}, \"cached\": {}, \"coeff_serve_rate\": {:.4}}},\n",
        res.serve.coeff_domain,
        res.serve.pixel_fallback,
        res.serve.cached,
        res.serve.coeff_serve_rate()
    ));
    out.push_str(&format!(
        "  \"ratio_net_cached_vs_inprocess_uncached\": {:.2}\n}}\n",
        res.net_vs_inprocess()
    ));
    out
}

pub struct NetCheckLimits {
    /// Allowed fractional drop below the committed net cached throughput
    /// (cross-machine band, like the in-process bench's).
    pub threshold: f64,
    /// Floor on net cached / in-process uncached (machine-independent).
    pub min_ratio: f64,
    /// Floor on the end-to-end `x-cache` hit rate.
    pub min_hit_rate: f64,
    /// Floor on the `x-served-path` coeff-domain rate among computed
    /// (non-cached) responses.
    pub min_coeff_serve_rate: f64,
}

impl Default for NetCheckLimits {
    fn default() -> Self {
        NetCheckLimits {
            threshold: 0.85,
            min_ratio: 0.5,
            min_hit_rate: 0.5,
            min_coeff_serve_rate: 0.5,
        }
    }
}

/// The CI gate for the networked path.
pub fn check(res: &NetResults, committed: &str, limits: &NetCheckLimits) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut ok = true;
    match crate::bench_psp::parse_ops_per_s(committed, "net", "cached_transform") {
        Ok(base) => {
            let ratio = res.net_cached.ops_per_s / base;
            let pass = ratio >= 1.0 - limits.threshold;
            ok &= pass;
            lines.push(format!(
                "  cached_transform: {:>9.0} ops/s vs committed {base:>9.0} (x{ratio:.2}, floor x{:.2}) {}",
                res.net_cached.ops_per_s,
                1.0 - limits.threshold,
                if pass { "ok" } else { "REGRESSED" }
            ));
        }
        Err(e) => {
            ok = false;
            lines.push(format!("  cached_transform: {e}"));
        }
    }
    for (name, got, floor) in [
        (
            "net/inprocess ratio",
            res.net_vs_inprocess(),
            limits.min_ratio,
        ),
        ("hit rate", res.hit_rate, limits.min_hit_rate),
        (
            "coeff serve rate",
            res.serve.coeff_serve_rate(),
            limits.min_coeff_serve_rate,
        ),
    ] {
        let pass = got >= floor;
        ok &= pass;
        lines.push(format!(
            "{name:>20}: {got:.2} (floor {floor:.2}) {}",
            if pass { "ok" } else { "BELOW FLOOR" }
        ));
    }
    (lines, ok)
}

// ---------------------------------------------------------------------------
// CLI entry point (dispatched from `bench psp --net`).
// ---------------------------------------------------------------------------

/// `puppies bench psp --net [--connections N] [--transform-ops N]
/// [--mixed-ops N] [--photos N] [--zipf S] [--seed N] [--out file]
/// [--check file [--threshold F] [--min-ratio F] [--min-hit-rate F]
/// [--min-coeff-serve-rate F]] [--obs-overhead-gate PCT]
/// [--trace file] [--stats file]`
///
/// With `--obs-overhead-gate` the bench runs twice: a plain pass whose
/// numbers feed `--out`/`--check`, then an instrumented rerun (whose
/// snapshot feeds `--trace`/`--stats` and includes the stitched
/// end-to-end trace); the gate fails if instrumentation costs more than
/// PCT percent of cached-transform throughput.
pub fn cmd(args: &[String]) -> Result<(), String> {
    let parse_num = |name: &str, default: f64| -> Result<f64, String> {
        match crate::flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name} {v:?}: {e}")),
            None => Ok(default),
        }
    };
    let config = NetConfig {
        connections: (parse_num("--connections", 8.0)? as usize).max(1),
        transform_ops: (parse_num("--transform-ops", 2000.0)? as usize).max(8),
        mixed_ops: (parse_num("--mixed-ops", 2000.0)? as usize).max(8),
        photos: (parse_num("--photos", 24.0)? as usize).max(1),
        zipf: parse_num("--zipf", 1.1)?,
        seed: parse_num("--seed", 0x5EED_CAFE as f64)? as u64,
    };
    let limits = NetCheckLimits {
        threshold: parse_num("--threshold", NetCheckLimits::default().threshold)?,
        min_ratio: parse_num("--min-ratio", NetCheckLimits::default().min_ratio)?,
        min_hit_rate: parse_num("--min-hit-rate", NetCheckLimits::default().min_hit_rate)?,
        min_coeff_serve_rate: parse_num(
            "--min-coeff-serve-rate",
            NetCheckLimits::default().min_coeff_serve_rate,
        )?,
    };

    let gate: Option<f64> = match crate::flag_value(args, "--obs-overhead-gate") {
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("bad --obs-overhead-gate {v:?}: {e}"))?,
        ),
        None => None,
    };

    // Gated mode measures a plain pass first, so the committed numbers
    // are never produced with a subscriber attached; otherwise one run,
    // with the obs session (when requested) wrapping it so client-side
    // histograms and the in-process server's psp.net.* metrics land in
    // one snapshot.
    let (res, overhead) = if gate.is_some() {
        let plain = run(config)?;
        let obs = crate::obs_from_args(args);
        let session = obs.is_none().then(puppies_obs::Obs::install);
        let instr = run(config)?;
        let overhead = (plain.net_cached.ops_per_s / instr.net_cached.ops_per_s - 1.0) * 100.0;
        if let Some(o) = obs {
            o.finish()?;
        }
        drop(session);
        println!(
            "instrumented rerun: {:.0} ops/s vs plain {:.0} ops/s (overhead {overhead:+.2}%)",
            instr.net_cached.ops_per_s, plain.net_cached.ops_per_s
        );
        (plain, Some(overhead))
    } else {
        let obs = crate::obs_from_args(args);
        let res = run(config)?;
        if let Some(o) = obs {
            o.finish()?;
        }
        (res, None)
    };
    for line in render(&res) {
        println!("{line}");
    }

    let json = to_json(&res);
    if let Some(out) = crate::flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("results written to {out}");
    }
    if let Some(path) = crate::flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let (lines, ok) = check(&res, &text, &limits);
        for l in &lines {
            println!("{l}");
        }
        if !ok {
            return Err(format!("psp net bench failed the gate against {path}"));
        }
        println!("psp net gate passed against {path}");
    }
    if let (Some(gate), Some(overhead)) = (gate, overhead) {
        if overhead > gate {
            return Err(format!(
                "instrumentation overhead {overhead:.2}% exceeds the {gate:.2}% gate"
            ));
        }
        println!("instrumentation overhead {overhead:.2}% within the {gate:.2}% gate");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> NetResults {
        let s = |ops_per_s: f64| NetScenario {
            ops: 1000,
            wall_s: 1.0,
            ops_per_s,
            p50_us: 100.0,
            p95_us: 200.0,
            p99_us: 400.0,
        };
        NetResults {
            config: NetConfig {
                connections: 8,
                transform_ops: 1000,
                mixed_ops: 1000,
                photos: 16,
                zipf: 1.1,
                seed: 1,
            },
            net_cached: s(8_000.0),
            net_mixed: s(12_000.0),
            inprocess_uncached: s(4_000.0),
            hit_rate: 0.93,
            serve: ServeStats {
                coeff_domain: 72,
                pixel_fallback: 24,
                cached: 904,
            },
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let json = to_json(&fake());
        assert_eq!(
            crate::bench_psp::parse_ops_per_s(&json, "net", "cached_transform").unwrap(),
            8_000.0
        );
        assert_eq!(
            crate::bench_psp::parse_ops_per_s(&json, "inprocess_uncached", "transform").unwrap(),
            4_000.0
        );
    }

    #[test]
    fn check_gates_on_ratio_and_hit_rate() {
        let res = fake();
        let committed = to_json(&res);
        let (_, ok) = check(&res, &committed, &NetCheckLimits::default());
        assert!(ok, "healthy results must pass their own file");
        let mut slow = fake();
        slow.net_cached.ops_per_s = 1_000.0; // ratio 0.25 < 0.5 floor
        let (lines, ok) = check(&slow, &committed, &NetCheckLimits::default());
        assert!(!ok, "ratio 0.25 must fail the 0.5 floor: {lines:?}");
        let mut cold = fake();
        cold.hit_rate = 0.1;
        let (lines, ok) = check(&cold, &committed, &NetCheckLimits::default());
        assert!(!ok, "10% hit rate must fail the 50% floor: {lines:?}");
    }
}
