//! `puppies` — command-line front end for the PuPPIeS pipeline.
//!
//! ```text
//! puppies keygen <key-file>
//! puppies detect <in.ppm>
//! puppies protect <in.ppm> <out.jpg> --key <key-file> --params <out.pup>
//!         [--roi x,y,w,h]... [--auto] [--scheme n|b|c|z] [--level low|medium|high]
//!         [--quality 1..100] [--image-id N] [--transform-friendly]
//! puppies protect-batch <in.ppm>... --key <key-file> --out-dir <dir>
//!         [--threads N] [protect flags; --image-id is the id of the first
//!         image, subsequent images increment it]
//! puppies grant --key <key-file> --image-id N --out <grant-file> [--roi i]...
//! puppies recover <in.jpg> <out.ppm> --params <in.pup> (--key <key-file> | --grant <grant-file>)
//! puppies inspect --params <in.pup>
//! puppies stats <stats.json>
//! puppies serve --dir <store-dir> [--addr host:port] [--no-fsync]
//! puppies net smoke|flood|verify|ready|dup --addr <host:port> [...]
//! puppies search <probe.jpg> --addr <host:port> [--params <in.pup>]
//! puppies top --addr <host:port> [--samples N] [--interval-ms M] [--plain]
//!         [--assert-monotonic] [--assert-nonzero <series>]...
//! puppies wal-dump --dir <store-dir>
//! puppies cluster demo [--shape n,k] [--uploads N] [--kill i]... [--corrupt i]...
//! ```
//!
//! Images are read/written as binary PPM (P6); the protected image is a
//! baseline JPEG any viewer can open (showing the perturbed regions).
//!
//! `protect`, `protect-batch`, `recover`, `conformance`, and `bench` all
//! accept `--trace <file>` (write a Chrome `trace_event` file loadable in
//! Perfetto / `about:tracing`) and `--stats <file>` (write a JSON metrics
//! snapshot that `puppies stats` pretty-prints).
//!
//! `bench` measures the codec hot path; `bench psp` runs the closed-loop
//! PSP serving benchmark (sharded store + transform cache vs an embedded
//! replica of the pre-cache server) — see [`bench_psp`]. `bench psp
//! --cluster` benches the k-of-n Shamir-shared cluster instead — see
//! [`bench_cluster`] — and `bench psp --dup` the recompressed-duplicate
//! dedup path and near-duplicate search scaling — see [`bench_dedup`].

use puppies_core::{
    protect, KeyGrant, OwnerKey, PerturbProfile, PrivacyLevel, ProtectOptions, PublicParams, Scheme,
};
use puppies_image::{io as img_io, Rect};
use puppies_psp::channel::{decode_grant, encode_grant};
use std::process::exit;

mod bench;
mod bench_cluster;
mod bench_dedup;
mod bench_net;
mod bench_psp;
mod cluster;
mod serve;
mod top;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("keygen") => cmd_keygen(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("protect") => cmd_protect(&args[1..]),
        Some("protect-batch") => cmd_protect_batch(&args[1..]),
        Some("grant") => cmd_grant(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("conformance") => cmd_conformance(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("cluster") => cluster::cmd(&args[1..]),
        Some("serve") => serve::cmd_serve(&args[1..]),
        Some("net") => serve::cmd_net(&args[1..]),
        Some("search") => serve::cmd_search(&args[1..]),
        Some("top") => top::cmd(&args[1..]),
        Some("wal-dump") => serve::cmd_wal_dump(&args[1..]),
        Some("help") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `puppies help`")),
    };
    if let Err(e) = code {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "puppies — privacy-preserving partial image sharing\n\
         commands: keygen, detect, protect, protect-batch, grant, recover, inspect, stats, conformance, bench,\n\
         \x20         serve, net (smoke|flood|verify|ready|dup), search, top, wal-dump, cluster (demo)\n\
         (see the crate docs or README for full flag reference)"
    );
}

type CliResult = Result<(), String>;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].as_str())
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positionals(args: &[String]) -> Vec<&str> {
    // Positional = arguments not consumed as flags or flag values.
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Boolean flags take no value.
            let boolean = matches!(
                a.as_str(),
                "--auto" | "--transform-friendly" | "--bless" | "--dup"
            );
            if !boolean && i + 1 < args.len() {
                skip = true;
            }
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn positional(args: &[String], idx: usize) -> Result<&str, String> {
    positionals(args)
        .get(idx)
        .copied()
        .ok_or_else(|| format!("missing positional argument #{}", idx + 1))
}

/// An observability session requested on the command line: `--trace <file>`
/// collects a Chrome `trace_event` timeline, `--stats <file>` a JSON
/// metrics snapshot. Absent both flags this is `None` and the pipeline's
/// instrumentation stays a no-op.
struct ObsOutput {
    session: puppies_obs::ObsSession,
    trace: Option<String>,
    stats: Option<String>,
}

fn obs_from_args(args: &[String]) -> Option<ObsOutput> {
    let trace = flag_value(args, "--trace").map(str::to_string);
    let stats = flag_value(args, "--stats").map(str::to_string);
    (trace.is_some() || stats.is_some()).then(|| ObsOutput {
        session: puppies_obs::Obs::install(),
        trace,
        stats,
    })
}

impl ObsOutput {
    /// Uninstalls the subscriber and writes the requested files.
    fn finish(self) -> CliResult {
        let Some(obs) = self.session.finish() else {
            return Ok(());
        };
        if let Some(path) = &self.trace {
            std::fs::write(path, obs.chrome_trace()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("trace ({} span(s)) written to {path}", obs.span_count());
        }
        if let Some(path) = &self.stats {
            std::fs::write(path, obs.stats_json()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("stats written to {path} — view with `puppies stats {path}`");
        }
        Ok(())
    }
}

fn load_key(path: &str) -> Result<OwnerKey, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading key {path}: {e}"))?;
    let seed: [u8; 32] = bytes
        .try_into()
        .map_err(|_| format!("key file {path} must be exactly 32 bytes"))?;
    Ok(OwnerKey::from_seed(seed))
}

fn cmd_keygen(args: &[String]) -> CliResult {
    let path = positional(args, 0)?;
    let mut seed = [0u8; 32];
    // getrandom via rand's thread_rng (OS entropy).
    use rand::RngCore;
    rand::thread_rng().fill_bytes(&mut seed);
    std::fs::write(path, seed).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote 32-byte owner key to {path} — keep it private");
    Ok(())
}

fn cmd_detect(args: &[String]) -> CliResult {
    let path = positional(args, 0)?;
    let img = img_io::load_ppm(path).map_err(|e| format!("loading {path}: {e}"))?;
    let rec = puppies_vision::detect::recommend_rois(
        &img,
        &puppies_vision::detect::RecommendParams::default(),
    );
    println!("{} raw detection(s):", rec.detections.len());
    for d in &rec.detections {
        println!("  {:?} {:?}", d.kind, d.rect);
    }
    println!("{} disjoint recommended region(s):", rec.regions.len());
    for r in &rec.regions {
        println!("  --roi {},{},{},{}", r.x, r.y, r.w, r.h);
    }
    Ok(())
}

fn parse_roi(spec: &str) -> Result<Rect, String> {
    let parts: Vec<u32> = spec
        .split(',')
        .map(|p| p.trim().parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad --roi {spec:?}: {e}"))?;
    if parts.len() != 4 {
        return Err(format!("--roi must be x,y,w,h, got {spec:?}"));
    }
    Ok(Rect::new(parts[0], parts[1], parts[2], parts[3]))
}

/// Parses the protection flags shared by `protect` and `protect-batch`:
/// `--scheme`, `--level`, `--transform-friendly`, `--quality`, `--image-id`.
fn parse_protect_opts(args: &[String]) -> Result<ProtectOptions, String> {
    let scheme = match flag_value(args, "--scheme").unwrap_or("z") {
        "n" => Scheme::Naive,
        "b" => Scheme::Base,
        "c" => Scheme::Compression,
        "z" => Scheme::Zero,
        other => return Err(format!("unknown scheme {other:?} (n|b|c|z)")),
    };
    let level = match flag_value(args, "--level").unwrap_or("medium") {
        "low" => PrivacyLevel::Low,
        "medium" => PrivacyLevel::Medium,
        "high" => PrivacyLevel::High,
        other => return Err(format!("unknown level {other:?} (low|medium|high)")),
    };
    let mut opts = if has_flag(args, "--transform-friendly") {
        ProtectOptions::from_profile(PerturbProfile::transform_friendly())
    } else {
        ProtectOptions::new(scheme, level)
    };
    if let Some(q) = flag_value(args, "--quality") {
        opts = opts.with_quality(q.parse().map_err(|e| format!("bad --quality: {e}"))?);
    }
    if let Some(id) = flag_value(args, "--image-id") {
        opts = opts.with_image_id(id.parse().map_err(|e| format!("bad --image-id: {e}"))?);
    }
    Ok(opts)
}

/// Regions for one image: explicit `--roi` rects plus `--auto` detections.
fn gather_rois(args: &[String], img: &puppies_image::RgbImage) -> Result<Vec<Rect>, String> {
    let mut rois: Vec<Rect> = flag_values(args, "--roi")
        .into_iter()
        .map(parse_roi)
        .collect::<Result<_, _>>()?;
    if has_flag(args, "--auto") {
        let rec = puppies_vision::detect::recommend_rois(
            img,
            &puppies_vision::detect::RecommendParams::default(),
        );
        rois.extend(rec.regions);
    }
    if rois.is_empty() {
        return Err("no regions: pass --roi x,y,w,h and/or --auto".into());
    }
    Ok(rois)
}

fn cmd_protect(args: &[String]) -> CliResult {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let key = load_key(flag_value(args, "--key").ok_or("missing --key")?)?;
    let params_path = flag_value(args, "--params").ok_or("missing --params")?;

    let img = img_io::load_ppm(input).map_err(|e| format!("loading {input}: {e}"))?;
    let rois = gather_rois(args, &img)?;
    let opts = parse_protect_opts(args)?;

    let obs = obs_from_args(args);
    let protected = protect(&img, &rois, &key, &opts).map_err(|e| e.to_string())?;
    if let Some(o) = obs {
        o.finish()?;
    }
    std::fs::write(output, &protected.bytes).map_err(|e| format!("writing {output}: {e}"))?;
    std::fs::write(params_path, protected.params.to_bytes())
        .map_err(|e| format!("writing {params_path}: {e}"))?;
    println!(
        "protected {} region(s); image {} bytes -> {output}, params {} bytes -> {params_path}",
        protected.params.rois.len(),
        protected.bytes.len(),
        protected.params.encoded_len()
    );
    Ok(())
}

/// Protects many images with one key on a shared worker pool. Each image
/// gets a distinct id (`--image-id` plus its position) so its ROIs can be
/// granted independently; outputs land in `--out-dir` as `<stem>.jpg` +
/// `<stem>.pup`.
fn cmd_protect_batch(args: &[String]) -> CliResult {
    let inputs = positionals(args);
    if inputs.is_empty() {
        return Err("no input images: pass one or more <in.ppm>".into());
    }
    let key = load_key(flag_value(args, "--key").ok_or("missing --key")?)?;
    let out_dir = flag_value(args, "--out-dir").ok_or("missing --out-dir")?;
    let opts = parse_protect_opts(args)?;
    let pool = match flag_value(args, "--threads") {
        Some(n) => puppies_core::parallel::WorkerPool::new(
            n.parse().map_err(|e| format!("bad --threads: {e}"))?,
        ),
        None => puppies_core::parallel::current(),
    };
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;

    let obs = obs_from_args(args);
    let results = puppies_core::parallel::with_pool(&pool, || {
        pool.map_indexed(inputs.len(), |i| -> Result<String, String> {
            let input = inputs[i];
            let stem = std::path::Path::new(input)
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("cannot derive a file stem from {input:?}"))?;
            let img = img_io::load_ppm(input).map_err(|e| format!("loading {input}: {e}"))?;
            let rois = gather_rois(args, &img)?;
            let opts = opts.clone().with_image_id(opts.image_id + i as u64);
            let protected = protect(&img, &rois, &key, &opts).map_err(|e| e.to_string())?;
            let jpg = format!("{out_dir}/{stem}.jpg");
            let pup = format!("{out_dir}/{stem}.pup");
            std::fs::write(&jpg, &protected.bytes).map_err(|e| format!("writing {jpg}: {e}"))?;
            std::fs::write(&pup, protected.params.to_bytes())
                .map_err(|e| format!("writing {pup}: {e}"))?;
            Ok(format!(
                "{input} -> {jpg} ({} bytes, {} region(s), id {})",
                protected.bytes.len(),
                protected.params.rois.len(),
                opts.image_id
            ))
        })
    });
    if let Some(o) = obs {
        o.finish()?;
    }
    let mut failed = 0usize;
    for r in results {
        match r {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("error: {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        return Err(format!("{failed} of {} image(s) failed", inputs.len()));
    }
    println!(
        "protected {} image(s) on {} worker thread(s)",
        inputs.len(),
        pool.threads()
    );
    Ok(())
}

fn cmd_grant(args: &[String]) -> CliResult {
    let key = load_key(flag_value(args, "--key").ok_or("missing --key")?)?;
    let image_id: u64 = flag_value(args, "--image-id")
        .ok_or("missing --image-id")?
        .parse()
        .map_err(|e| format!("bad --image-id: {e}"))?;
    let out = flag_value(args, "--out").ok_or("missing --out")?;
    let rois: Vec<u16> = {
        let specified = flag_values(args, "--roi");
        if specified.is_empty() {
            (0..16).collect() // grant generously by default
        } else {
            specified
                .into_iter()
                .map(|s| {
                    s.parse::<u16>()
                        .map_err(|e| format!("bad --roi index: {e}"))
                })
                .collect::<Result<_, _>>()?
        }
    };
    let grant = key.grant_rois(image_id, &rois);
    std::fs::write(out, encode_grant(&grant)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "granted {} matrix(es) for image {image_id} rois {rois:?} -> {out}",
        grant.explicit_matrix_count()
    );
    Ok(())
}

fn cmd_recover(args: &[String]) -> CliResult {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let params_path = flag_value(args, "--params").ok_or("missing --params")?;
    let grant: KeyGrant = if let Some(kp) = flag_value(args, "--key") {
        load_key(kp)?.grant_all()
    } else if let Some(gp) = flag_value(args, "--grant") {
        let bytes = std::fs::read(gp).map_err(|e| format!("reading {gp}: {e}"))?;
        decode_grant(&bytes).map_err(|e| e.to_string())?
    } else {
        return Err("pass --key (owner) or --grant (receiver)".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let params_bytes =
        std::fs::read(params_path).map_err(|e| format!("reading {params_path}: {e}"))?;
    let params = PublicParams::from_bytes(&params_bytes).map_err(|e| e.to_string())?;
    let obs = obs_from_args(args);
    let recovered = puppies_core::shadow::recover_transformed(&bytes, &params, &grant)
        .map_err(|e| e.to_string())?;
    if let Some(o) = obs {
        o.finish()?;
    }
    img_io::save_ppm(&recovered, output).map_err(|e| format!("writing {output}: {e}"))?;
    println!("recovered image written to {output}");
    Ok(())
}

/// `puppies stats <stats.json>` — pretty-prints a metrics snapshot written
/// by `--stats`, with per-stage p50/p95/p99 latencies in ms.
fn cmd_stats(args: &[String]) -> CliResult {
    let path = positional(args, 0)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snap = puppies_obs::parse_stats_json(&text)?;
    print!("{}", puppies_obs::render_stats(&snap));
    Ok(())
}

fn cmd_inspect(args: &[String]) -> CliResult {
    let params_path = flag_value(args, "--params").ok_or("missing --params")?;
    let bytes = std::fs::read(params_path).map_err(|e| format!("reading {params_path}: {e}"))?;
    let params = PublicParams::from_bytes(&bytes).map_err(|e| e.to_string())?;
    println!(
        "image id {} | {}x{} @ q{} | transformation: {:?}",
        params.image_id, params.width, params.height, params.quality, params.transformation
    );
    for roi in &params.rois {
        let (m_r, k) = roi.profile.range.parameters();
        println!(
            "  roi {} {:?} scheme {} mR {} K {} dcRange {} zind {} wind {}",
            roi.index,
            roi.rect,
            roi.profile.scheme.name(),
            m_r,
            k,
            roi.profile.dc_range,
            roi.zind.len(),
            roi.wind.len()
        );
    }
    Ok(())
}

/// `puppies bench [--out f.json] [--check committed.json] [--pre old.json]
/// [--pre-section current] [--threshold 0.4] [--min-protect-speedup F]
/// [--iters N] [--threads N] [--quality Q] [--obs-overhead-gate PCT]
/// [--trace f.json] [--stats f.json]`
///
/// Measures codec + protect/recover throughput on the deterministic
/// fixture, then repeats the run with an observability subscriber
/// installed to collect the per-stage breakdown (written to the JSON
/// `stages` section) and the instrumentation overhead.
/// `--check` is CI's perf gate against the committed
/// `results/BENCH_codec.json`; `--pre` embeds an earlier run's
/// `--pre-section` (default `current`) as the pre-PR baseline with
/// computed speedups; `--obs-overhead-gate` fails the run if the summed
/// instrumented op time exceeds the plain run by more than PCT percent.
fn cmd_bench(args: &[String]) -> CliResult {
    // `bench psp` is the serving-path benchmark (`--net` drives it over
    // real loopback TCP); everything else is the codec bench.
    if positionals(args).first() == Some(&"psp") {
        if has_flag(args, "--net") {
            return bench_net::cmd(args);
        }
        if has_flag(args, "--cluster") {
            return bench_cluster::cmd(args);
        }
        if has_flag(args, "--dup") {
            return bench_dedup::cmd(args);
        }
        return bench_psp::cmd(args);
    }
    let parse_num = |name: &str, default: f64| -> Result<f64, String> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name} {v:?}: {e}")),
            None => Ok(default),
        }
    };
    let iters = parse_num("--iters", 5.0)? as usize;
    let threads = parse_num("--threads", 1.0)? as usize;
    let quality = parse_num("--quality", 75.0)? as u8;
    let threshold = parse_num("--threshold", 0.4)?;

    let res = bench::run(iters.max(1), threads.max(1), quality)?;
    for &(name, r) in &res.ops {
        println!(
            "{name:>8}: {:8.2} ms  {:>10.0} blocks/s  {:8.2} MB/s",
            r.ms, r.blocks_per_s, r.mb_per_s
        );
    }

    // Second, instrumented pass: stage-level span histograms plus a
    // like-for-like set of op timings for the overhead measurement.
    let (instr_res, obs) = bench::run_instrumented(iters.max(1), threads.max(1), quality)?;
    let snap = obs.metrics().snapshot();
    let overhead = bench::overhead_pct(&res, &instr_res);
    println!(
        "instrumented rerun: {} span(s), overhead {overhead:+.2}%",
        obs.span_count()
    );
    if let Some(path) = flag_value(args, "--trace") {
        std::fs::write(path, obs.chrome_trace()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let Some(path) = flag_value(args, "--stats") {
        std::fs::write(path, obs.stats_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("stats written to {path} — view with `puppies stats {path}`");
    }

    let pre = match flag_value(args, "--pre") {
        Some(path) => {
            let section = flag_value(args, "--pre-section").unwrap_or("current");
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Some(bench::parse_section(&text, section)?)
        }
        None => None,
    };
    let json = bench::to_json(&res, pre.as_deref(), Some(&snap), Some(overhead));
    if let Some(out) = flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("results written to {out}");
    }
    if let Some(path) = flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let committed = bench::parse_section(&text, "current")?;
        let (lines, ok) = bench::check(&res, &committed, threshold);
        for l in &lines {
            println!("{l}");
        }
        if !ok {
            return Err(format!(
                "throughput regressed more than {:.0}% below {path}",
                threshold * 100.0
            ));
        }
        println!("within {:.0}% of {path}", threshold * 100.0);
        if let Some(floor) = flag_value(args, "--min-protect-speedup") {
            let floor: f64 = floor
                .parse()
                .map_err(|e| format!("bad --min-protect-speedup {floor:?}: {e}"))?;
            let (line, ok) = bench::check_protect_floor(&text, floor)?;
            println!("{line}");
            if !ok {
                return Err(format!(
                    "committed protect speedup fell below the {floor:.2}x floor in {path}"
                ));
            }
        }
    }
    if let Some(gate) = flag_value(args, "--obs-overhead-gate") {
        let gate: f64 = gate
            .parse()
            .map_err(|e| format!("bad --obs-overhead-gate {gate:?}: {e}"))?;
        if overhead > gate {
            return Err(format!(
                "instrumentation overhead {overhead:.2}% exceeds the {gate:.2}% gate"
            ));
        }
        println!("instrumentation overhead {overhead:.2}% within the {gate:.2}% gate");
    }
    Ok(())
}

fn cmd_conformance(args: &[String]) -> CliResult {
    use puppies_conformance::{HarnessConfig, Report};
    let mut cfg = HarnessConfig {
        bless: has_flag(args, "--bless"),
        ..HarnessConfig::default()
    };
    if let Some(dir) = flag_value(args, "--golden-dir") {
        cfg.golden_dir = dir.into();
    }
    if let Some(dir) = flag_value(args, "--corpus-dir") {
        cfg.corpus_dir = Some(dir.into());
    }
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.fuzz_seed = seed
            .parse()
            .map_err(|e| format!("bad --seed {seed:?}: {e}"))?;
    }
    if let Some(scale) = flag_value(args, "--fuzz-scale") {
        cfg.fuzz_scale = scale
            .parse()
            .map_err(|e| format!("bad --fuzz-scale {scale:?}: {e}"))?;
    }
    for suite in flag_values(args, "--skip") {
        cfg.skip.push(suite.to_string());
    }
    let obs = obs_from_args(args);
    let report: Report = puppies_conformance::run_all(&cfg).map_err(|e| e.to_string())?;
    if let Some(o) = obs {
        o.finish()?;
    }
    let text = report.render();
    print!("{text}");
    if let Some(dir) = flag_value(args, "--report-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        let path = std::path::Path::new(dir).join("conformance-report.txt");
        std::fs::write(&path, &text).map_err(|e| format!("writing report: {e}"))?;
        println!("report written to {}", path.display());
    }
    if report.is_ok() {
        Ok(())
    } else {
        Err(format!(
            "{} conformance case(s) failed",
            report.failures().len()
        ))
    }
}
