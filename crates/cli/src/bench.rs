//! `puppies bench` — the codec throughput runner behind
//! `results/BENCH_codec.json`.
//!
//! Measures the four hot paths every shared photo pays at least once
//! (owner protect, receiver recover, plus the raw encode/decode they are
//! built on) on a deterministic fixture, single-threaded by default so
//! numbers are comparable across machines and PRs. Results are written as
//! machine-readable JSON; `--check` compares a fresh run against a
//! committed file with a generous regression threshold (CI's perf gate),
//! and `--pre` embeds an earlier run as the pre-PR baseline with computed
//! speedups, which is how before/after numbers land in one committed file.

use std::fmt::Write as _;
use std::time::Instant;

use puppies_core::{protect, recover, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_datasets::{generate_one, DatasetProfile};
use puppies_image::{Rect, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};

/// One measured operation: best-of-N wall time plus derived throughput.
#[derive(Debug, Clone, Copy)]
pub struct OpResult {
    /// Best (minimum) wall time over the measured iterations, in ms.
    pub ms: f64,
    /// 8×8 blocks processed per second (all components).
    pub blocks_per_s: f64,
    /// Megabytes of raw RGB pixels processed per second.
    pub mb_per_s: f64,
}

/// The full measurement set for one fixture.
#[derive(Debug, Clone)]
pub struct BenchResults {
    /// Fixture geometry: (width, height, total blocks across components).
    pub fixture: (u32, u32, u64),
    /// JPEG quality used throughout.
    pub quality: u8,
    /// Worker threads the pool was pinned to.
    pub threads: usize,
    /// Measured operations in report order.
    pub ops: Vec<(&'static str, OpResult)>,
}

const OPS: [&str; 4] = ["encode", "decode", "protect", "recover"];

fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(dt);
    }
    best
}

/// Runs the measurement suite. `iters` is the per-op iteration count; the
/// best (minimum) time is reported, which is far more stable than the mean
/// on shared CI runners.
pub fn run(iters: usize, threads: usize, quality: u8) -> Result<BenchResults, String> {
    // Allocator warmup: allocate-and-free one large block before timing.
    // glibc serves multi-hundred-KB Vecs (planes, block tables) straight
    // from mmap and returns them on free, so every timed iteration would
    // otherwise pay mmap + page-fault costs; freeing an mmapped chunk
    // raises malloc's dynamic mmap threshold, after which those Vecs
    // recycle heap pages. Touch every page so the pages really exist.
    {
        let mut warm = vec![0u8; 16 << 20];
        for page in warm.chunks_mut(4096) {
            page[0] = 1;
        }
        std::hint::black_box(&warm);
    }

    let img = fixture_image();
    let (w, h) = (img.width(), img.height());
    let pixel_mb = (w as f64 * h as f64 * 3.0) / 1e6;

    let pool = puppies_core::parallel::WorkerPool::new(threads);
    puppies_core::parallel::with_pool(&pool, || {
        let coeff = CoeffImage::from_rgb(&img, quality);
        let blocks: u64 = coeff
            .components()
            .iter()
            .map(|c| c.blocks_w() as u64 * c.blocks_h() as u64)
            .sum();
        let opts = EncodeOptions::default();
        let bytes = coeff.encode(&opts).map_err(|e| e.to_string())?;

        // Full-image encode: RGB pixels -> quantized coefficients -> JFIF
        // bytes (FDCT + quantization + entropy coding).
        let encode_ms = time_best(iters, || {
            CoeffImage::from_rgb(&img, quality)
                .encode(&opts)
                .expect("bench encode")
        });
        // Full-image decode: JFIF bytes -> coefficients -> RGB pixels
        // (entropy decode + dequantization + IDCT).
        let decode_ms = time_best(iters, || {
            CoeffImage::decode(&bytes).expect("bench decode").to_rgb()
        });

        // Protect/recover on two face-sized ROIs, the owner/receiver cost
        // per shared photo.
        let key = OwnerKey::from_seed([0x5E; 32]);
        let rois = [Rect::new(48, 32, 96, 96), Rect::new(256, 128, 96, 96)];
        let popts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium).with_quality(quality);
        let protected = protect(&img, &rois, &key, &popts).map_err(|e| e.to_string())?;
        let protect_ms = time_best(iters, || {
            protect(&img, &rois, &key, &popts).expect("bench protect")
        });
        let grant = key.grant_all();
        let recover_ms = time_best(iters, || {
            recover(&protected, &grant).expect("bench recover")
        });

        let op = |ms: f64| OpResult {
            ms,
            blocks_per_s: blocks as f64 / (ms / 1e3),
            mb_per_s: pixel_mb / (ms / 1e3),
        };
        Ok(BenchResults {
            fixture: (w, h, blocks),
            quality,
            threads: pool.threads(),
            ops: vec![
                ("encode", op(encode_ms)),
                ("decode", op(decode_ms)),
                ("protect", op(protect_ms)),
                ("recover", op(recover_ms)),
            ],
        })
    })
}

/// The deterministic PASCAL-profile fixture (same generator as
/// `puppies-bench`), so Criterion benches and this runner agree on the
/// workload.
fn fixture_image() -> RgbImage {
    generate_one(DatasetProfile::pascal().with_count(1), 0xBE7C, 0).image
}

/// Runs the same measurement suite with an observability subscriber
/// installed: every span the pipeline emits feeds a histogram, giving the
/// per-stage breakdown (`jpeg.fdct_quant`, `jpeg.entropy_encode`, ...) and
/// a second set of op timings whose gap to the plain run *is* the
/// instrumentation overhead.
pub fn run_instrumented(
    iters: usize,
    threads: usize,
    quality: u8,
) -> Result<(BenchResults, std::sync::Arc<puppies_obs::Obs>), String> {
    let session = puppies_obs::Obs::install();
    let res = run(iters, threads, quality);
    let obs = session
        .finish()
        .ok_or("another observability session replaced the bench subscriber")?;
    Ok((res?, obs))
}

/// Instrumentation overhead in percent: how much slower the summed
/// best-of op times are with a subscriber installed.
pub fn overhead_pct(plain: &BenchResults, instrumented: &BenchResults) -> f64 {
    let sum = |r: &BenchResults| r.ops.iter().map(|&(_, op)| op.ms).sum::<f64>();
    (sum(instrumented) / sum(plain) - 1.0) * 100.0
}

fn write_op(json: &mut String, indent: &str, name: &str, r: OpResult) {
    let _ = write!(
        json,
        "{indent}\"{name}\": {{\"ms\": {:.3}, \"blocks_per_s\": {:.0}, \"mb_per_s\": {:.3}}}",
        r.ms, r.blocks_per_s, r.mb_per_s
    );
}

/// Renders results (optionally with a pre-PR baseline section, the
/// speedups against it, an instrumented stage-level breakdown, and the
/// measured instrumentation overhead) as the committed JSON document.
///
/// Section order matters: `current` and `baseline_pre_pr` are emitted
/// before `stages`, because [`parse_section`] scans forward from the
/// section key for the op names and must not land in the stage names.
pub fn to_json(
    res: &BenchResults,
    pre: Option<&[(String, OpResult)]>,
    stages: Option<&puppies_obs::MetricsSnapshot>,
    overhead_pct: Option<f64>,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"schema\": 1,\n  \"fixture\": {{\"width\": {}, \"height\": {}, \"blocks\": {}, \"quality\": {}, \"threads\": {}, \"simd_backend\": \"{}\", \"f32_lanes\": {}}},",
        res.fixture.0,
        res.fixture.1,
        res.fixture.2,
        res.quality,
        res.threads,
        puppies_image::simd::backend().name(),
        puppies_image::simd::backend().f32_lanes()
    );
    json.push_str("  \"current\": {\n");
    for (i, &(name, r)) in res.ops.iter().enumerate() {
        write_op(&mut json, "    ", name, r);
        json.push_str(if i + 1 < res.ops.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }");
    if let Some(pre) = pre {
        json.push_str(",\n  \"baseline_pre_pr\": {\n");
        for (i, (name, r)) in pre.iter().enumerate() {
            write_op(&mut json, "    ", name, *r);
            json.push_str(if i + 1 < pre.len() { ",\n" } else { "\n" });
        }
        json.push_str("  },\n  \"speedup_vs_pre_pr\": {");
        let mut first = true;
        let mut encdec_new = 0.0f64;
        let mut encdec_old = 0.0f64;
        for (name, old) in pre {
            if let Some(&(_, new)) = res.ops.iter().find(|(n, _)| n == name) {
                if !first {
                    json.push_str(", ");
                }
                first = false;
                let _ = write!(json, "\"{name}\": {:.2}", old.ms / new.ms);
                if name == "encode" || name == "decode" {
                    encdec_new += new.ms;
                    encdec_old += old.ms;
                }
            }
        }
        if encdec_new > 0.0 {
            let _ = write!(
                json,
                ", \"encode_plus_decode\": {:.2}",
                encdec_old / encdec_new
            );
        }
        json.push('}');
    }
    if let Some(snap) = stages {
        json.push_str(",\n  \"stages\": {\n");
        let ms = |ns: f64| ns / 1e6;
        for (i, (name, h)) in snap.histograms.iter().enumerate() {
            let _ = write!(
                json,
                "    \"{}\": {{\"count\": {}, \"total_ms\": {:.3}, \"min_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                puppies_obs::escape_json(name),
                h.count,
                ms(h.sum as f64),
                ms(h.min as f64),
                ms(h.p50),
                ms(h.p95),
                ms(h.p99),
            );
            json.push_str(if i + 1 < snap.histograms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  }");
    }
    if let Some(pct) = overhead_pct {
        let _ = write!(json, ",\n  \"obs_overhead_pct\": {pct:.2}");
    }
    json.push_str("\n}\n");
    json
}

/// Pulls `"<op>": {"ms": X, ...}` values out of a JSON document produced
/// by [`to_json`] (section = `current` or `baseline_pre_pr`). A tiny
/// fixed-schema scanner, not a general JSON parser — the workspace has no
/// serde and the file format is ours.
pub fn parse_section(json: &str, section: &str) -> Result<Vec<(String, OpResult)>, String> {
    let start = json
        .find(&format!("\"{section}\""))
        .ok_or_else(|| format!("no \"{section}\" section in JSON"))?;
    let body = &json[start..];
    let mut out = Vec::new();
    for name in OPS {
        let key = format!("\"{name}\"");
        let at = body
            .find(&key)
            .ok_or_else(|| format!("no \"{name}\" entry in \"{section}\""))?;
        let obj = &body[at..];
        let field = |f: &str| -> Result<f64, String> {
            let fk = format!("\"{f}\":");
            let p = obj.find(&fk).ok_or_else(|| format!("no {f} for {name}"))?;
            let rest = obj[p + fk.len()..].trim_start();
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end]
                .parse::<f64>()
                .map_err(|e| format!("bad {f} for {name}: {e}"))
        };
        out.push((
            name.to_string(),
            OpResult {
                ms: field("ms")?,
                blocks_per_s: field("blocks_per_s")?,
                mb_per_s: field("mb_per_s")?,
            },
        ));
    }
    Ok(out)
}

/// Compares a fresh run against committed numbers: any op whose throughput
/// fell below `(1 - threshold)` of the committed value is a regression.
/// Returns human-readable lines plus pass/fail.
pub fn check(
    res: &BenchResults,
    committed: &[(String, OpResult)],
    threshold: f64,
) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut ok = true;
    for (name, old) in committed {
        let Some(&(_, new)) = res.ops.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let ratio = new.blocks_per_s / old.blocks_per_s;
        let verdict = if ratio < 1.0 - threshold {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        lines.push(format!(
            "{name:>8}: {:>10.0} blocks/s vs committed {:>10.0} ({:+.1}%) {verdict}",
            new.blocks_per_s,
            old.blocks_per_s,
            (ratio - 1.0) * 100.0
        ));
    }
    (lines, ok)
}

/// The explicit-SIMD protect floor (`--min-protect-speedup`): the
/// committed results file must itself record a protect speedup of at
/// least `floor` over its embedded `baseline_pre_pr` section. Both
/// numbers come from one machine and one run (written by `--pre`), so
/// the ratio is machine-independent — the fresh-run band in [`check`]
/// is what keeps the committed `current` numbers honest.
///
/// # Errors
/// Fails if the committed file lacks either section or a `protect` entry.
pub fn check_protect_floor(committed_json: &str, floor: f64) -> Result<(String, bool), String> {
    let get = |section: &str| -> Result<OpResult, String> {
        parse_section(committed_json, section)?
            .into_iter()
            .find(|(n, _)| n == "protect")
            .map(|(_, r)| r)
            .ok_or_else(|| format!("no protect entry in \"{section}\""))
    };
    let current = get("current")?;
    let pre = get("baseline_pre_pr")?;
    let speedup = pre.ms / current.ms;
    let pass = speedup >= floor;
    let line = format!(
        "protect speedup in committed file: {speedup:.2}x ({:.3} ms -> {:.3} ms, floor {floor:.2}x) {}",
        pre.ms,
        current.ms,
        if pass { "ok" } else { "BELOW FLOOR" }
    );
    Ok((line, pass))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_results() -> BenchResults {
        let op = |ms: f64| OpResult {
            ms,
            blocks_per_s: 1000.0 / ms,
            mb_per_s: 1.0 / ms,
        };
        BenchResults {
            fixture: (500, 330, 7938),
            quality: 75,
            threads: 1,
            ops: vec![
                ("encode", op(10.0)),
                ("decode", op(5.0)),
                ("protect", op(20.0)),
                ("recover", op(15.0)),
            ],
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let res = fake_results();
        let json = to_json(&res, None, None, None);
        let parsed = parse_section(&json, "current").unwrap();
        assert_eq!(parsed.len(), 4);
        for ((name, got), (want_name, want)) in parsed.iter().zip(res.ops.iter()) {
            assert_eq!(name, want_name);
            assert!((got.ms - want.ms).abs() < 1e-3);
            assert!((got.blocks_per_s - want.blocks_per_s).abs() < 1.0);
        }
    }

    #[test]
    fn baseline_section_and_speedups_emitted() {
        let res = fake_results();
        let pre: Vec<(String, OpResult)> = res
            .ops
            .iter()
            .map(|&(n, r)| {
                (
                    n.to_string(),
                    OpResult {
                        ms: r.ms * 4.0,
                        blocks_per_s: r.blocks_per_s / 4.0,
                        mb_per_s: r.mb_per_s / 4.0,
                    },
                )
            })
            .collect();
        let json = to_json(&res, Some(&pre), None, None);
        assert!(json.contains("\"baseline_pre_pr\""));
        assert!(json.contains("\"encode_plus_decode\": 4.00"));
        let parsed = parse_section(&json, "baseline_pre_pr").unwrap();
        assert!((parsed[0].1.ms - res.ops[0].1.ms * 4.0).abs() < 1e-3);
    }

    #[test]
    fn stage_breakdown_emitted_after_op_sections() {
        let res = fake_results();
        let pre: Vec<(String, OpResult)> =
            res.ops.iter().map(|&(n, r)| (n.to_string(), r)).collect();
        let snap = puppies_obs::MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![(
                "jpeg.encode".into(),
                puppies_obs::HistStats {
                    count: 5,
                    sum: 10_000_000,
                    min: 1_500_000,
                    max: 2_500_000,
                    p50: 2_000_000.0,
                    p95: 2_400_000.0,
                    p99: 2_500_000.0,
                },
            )],
        };
        let json = to_json(&res, Some(&pre), Some(&snap), Some(1.25));
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"obs_overhead_pct\": 1.25"));
        // The stage entry's name collides with the op name; the scanner
        // must still pull op timings out of the op sections, which come
        // first in the document.
        let cur = parse_section(&json, "current").unwrap();
        assert!((cur[0].1.ms - res.ops[0].1.ms).abs() < 1e-3);
        let base = parse_section(&json, "baseline_pre_pr").unwrap();
        assert!((base[0].1.ms - res.ops[0].1.ms).abs() < 1e-3);
        assert!(json.contains("\"total_ms\": 10.000"));
        assert!(json.contains("\"p50_ms\": 2.000"));
    }

    #[test]
    fn check_flags_regressions_beyond_threshold() {
        let res = fake_results();
        let committed: Vec<(String, OpResult)> =
            res.ops.iter().map(|&(n, r)| (n.to_string(), r)).collect();
        let (_, ok) = check(&res, &committed, 0.4);
        assert!(ok, "identical numbers must pass");
        let inflated: Vec<(String, OpResult)> = res
            .ops
            .iter()
            .map(|&(n, r)| {
                (
                    n.to_string(),
                    OpResult {
                        ms: r.ms / 2.0,
                        blocks_per_s: r.blocks_per_s * 2.0,
                        mb_per_s: r.mb_per_s * 2.0,
                    },
                )
            })
            .collect();
        let (_, ok) = check(&res, &inflated, 0.4);
        assert!(!ok, "a 2x slowdown must fail the 40% gate");
    }

    #[test]
    fn protect_floor_reads_the_committed_speedup() {
        let res = fake_results();
        // Embed a 2.5x-slower baseline: the 2x floor passes, 3x fails.
        let pre: Vec<(String, OpResult)> = res
            .ops
            .iter()
            .map(|&(n, r)| {
                (
                    n.to_string(),
                    OpResult {
                        ms: r.ms * 2.5,
                        blocks_per_s: r.blocks_per_s / 2.5,
                        mb_per_s: r.mb_per_s / 2.5,
                    },
                )
            })
            .collect();
        let json = to_json(&res, Some(&pre), None, None);
        let (_, ok) = check_protect_floor(&json, 2.0).unwrap();
        assert!(ok, "2.5x committed speedup must clear the 2x floor");
        let (line, ok) = check_protect_floor(&json, 3.0).unwrap();
        assert!(!ok, "2.5x committed speedup must fail a 3x floor: {line}");
        // A file without a baseline section is an error, not a pass.
        let bare = to_json(&res, None, None, None);
        assert!(check_protect_floor(&bare, 2.0).is_err());
    }
}
