//! `puppies serve` / `puppies net …` / `puppies wal-dump` — the service
//! side of the PSP, plus the network tooling CI's `service` job drives:
//!
//! ```text
//! puppies serve --dir <store-dir> [--addr 127.0.0.1:0] [--no-fsync]
//! puppies net smoke  --addr <host:port>
//! puppies net flood  --addr <host:port> --manifest <file> [--count N] [--bytes N]
//! puppies net verify --addr <host:port> --manifest <file>
//! puppies net ready  --addr <host:port> [--timeout-ms N]
//! puppies net dup    --addr <host:port>
//! puppies search <probe.jpg> --addr <host:port> [--params <in.pup>]
//! puppies wal-dump --dir <store-dir>
//! ```
//!
//! `smoke` runs the full upload → grant → transform → download flow over
//! the wire and byte-compares every response against an in-process
//! [`PspServer`] fed the same inputs. `flood` uploads continuously,
//! appending `<id> <fnv64 hex>` to the manifest *after* each server ack
//! (so the manifest is exactly the set of acknowledged uploads — the
//! durability contract under `kill -9`). `verify` re-downloads every
//! manifest entry and checks content hashes; a torn final manifest line
//! (the flood itself was killed mid-write) is tolerated and reported.
//! `dup` proves the perceptual-identity fast path end to end: a
//! recompressed copy's first transformed serve must come back
//! `x-served-path: sig-cached` and byte-identical to the original's.
//! `search` probes the server's near-duplicate index with a local image.

use crate::{flag_value, has_flag, CliResult};
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::net::{serve, Client, ServeConfig};
use puppies_psp::{KeyAgreement, PhotoId, PspServer};
use puppies_transform::Transformation;
use std::io::Write;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub fn cmd_serve(args: &[String]) -> CliResult {
    let dir = flag_value(args, "--dir").ok_or("missing --dir <store-dir>")?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let config = ServeConfig {
        addr: addr.into(),
        dir: dir.into(),
        fsync: !has_flag(args, "--no-fsync"),
        ..ServeConfig::new(addr, dir)
    };
    serve(&config).map_err(|e| e.to_string())
}

pub fn cmd_net(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("smoke") => net_smoke(&args[1..]),
        Some("flood") => net_flood(&args[1..]),
        Some("verify") => net_verify(&args[1..]),
        Some("ready") => net_ready(&args[1..]),
        Some("dup") => net_dup(&args[1..]),
        other => Err(format!(
            "unknown net subcommand {other:?}; expected smoke|flood|verify|ready|dup"
        )),
    }
}

fn addr_arg(args: &[String]) -> Result<&str, String> {
    flag_value(args, "--addr").ok_or_else(|| "missing --addr <host:port>".into())
}

/// Connects (retrying while the listener comes up) and polls `/readyz`
/// until the store is recovered or the timeout lapses. The serving loop
/// binds before WAL replay, so tooling must not take "connected" for
/// "ready".
fn connect_ready(addr: &str, timeout_ms: u64) -> Result<Client, String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
    let mut last: String;
    loop {
        match Client::connect(addr) {
            Ok(mut client) => match client.ready() {
                Ok(true) => return Ok(client),
                Ok(false) => last = "readyz: 503".into(),
                Err(e) => last = e.to_string(),
            },
            Err(e) => last = e.to_string(),
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!("{addr} not ready after {timeout_ms}ms ({last})"));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// `puppies net ready --addr <host:port> [--timeout-ms N]` — block until
/// `/readyz` is 200 (CI's boot barrier), default timeout 10 s.
fn net_ready(args: &[String]) -> CliResult {
    let addr = addr_arg(args)?;
    let timeout_ms: u64 = match flag_value(args, "--timeout-ms") {
        Some(v) => v.parse().map_err(|e| format!("bad --timeout-ms: {e}"))?,
        None => 10_000,
    };
    connect_ready(addr, timeout_ms)?;
    println!("ready: {addr}");
    Ok(())
}

/// A deterministic protected photo for wire checks.
fn fixture(seed: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(96, 64, |x, y| {
        Rgb::new(
            seed.wrapping_add((x * 3 + y) as u8),
            (x + y * 2) as u8,
            seed ^ (x as u8),
        )
    });
    let p = protect(
        &img,
        &[Rect::new(16, 8, 32, 32)],
        &OwnerKey::from_seed([seed; 32]),
        &ProtectOptions::default(),
    )
    .map_err(|e| e.to_string())
    .expect("fixture protect");
    (p.bytes, p.params.to_bytes())
}

/// Network e2e smoke: every wire response must match the in-process
/// server byte-for-byte — upload echo, serving-door transform, in-place
/// transform, and the encrypted grant mailbox round trip.
fn net_smoke(args: &[String]) -> CliResult {
    let addr = addr_arg(args)?;
    let mut client = connect_ready(addr, 10_000)?;
    client.health().map_err(|e| e.to_string())?;

    let reference = PspServer::new();
    let (bytes, params) = fixture(11);
    let receipt = client.upload(&bytes, &params).map_err(|e| e.to_string())?;
    let ref_id = reference
        .upload(bytes.clone(), params.clone())
        .map_err(|e| e.to_string())?;

    let parity = |name: &str, net: &[u8], local: &[u8]| -> CliResult {
        if net != local {
            return Err(format!("{name}: wire bytes differ from in-process bytes"));
        }
        println!("parity ok: {name} ({} bytes)", net.len());
        Ok(())
    };
    parity(
        "download",
        &client.download(receipt.id).map_err(|e| e.to_string())?,
        &reference.download(ref_id).map_err(|e| e.to_string())?,
    )?;
    parity(
        "params",
        &client
            .download_params(receipt.id)
            .map_err(|e| e.to_string())?,
        &reference
            .download_params(ref_id)
            .map_err(|e| e.to_string())?,
    )?;

    let t = Transformation::Rotate90;
    let (net_b, net_p, _) = client
        .download_transformed(receipt.id, &t)
        .map_err(|e| e.to_string())?;
    let (ref_b, ref_p) = reference
        .download_transformed(ref_id, &t)
        .map_err(|e| e.to_string())?;
    parity("transformed bytes", &net_b, &ref_b)?;
    parity("transformed params", &net_p, &ref_p)?;

    // Grant flow: receiver registers, sender deposits end-to-end
    // encrypted, receiver drains and decrypts.
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha20Rng::from_seed([42u8; 32]);
    let receiver_ka = KeyAgreement::new(&mut rng);
    let sender_ka = KeyAgreement::new(&mut rng);
    let token = client
        .register_receiver(receiver_ka.public_value())
        .map_err(|e| e.to_string())?;
    let grant_plain = OwnerKey::from_seed([11u8; 32]).grant_all();
    let grant_bytes = puppies_psp::channel::encode_grant(&grant_plain);
    let ciphertext = sender_ka
        .agree(receiver_ka.public_value())
        .encrypt(&grant_bytes);
    client
        .deposit_grant(
            receiver_ka.public_value(),
            sender_ka.public_value(),
            &ciphertext,
        )
        .map_err(|e| e.to_string())?;
    let grants = client.fetch_grants(&token).map_err(|e| e.to_string())?;
    let (sender_public, fetched) = grants
        .first()
        .ok_or("grant mailbox came back empty over the wire")?;
    let decrypted = receiver_ka
        .agree(*sender_public)
        .decrypt(fetched)
        .map_err(|e| e.to_string())?;
    if decrypted != grant_bytes {
        return Err("grant ciphertext did not round-trip".into());
    }
    println!(
        "parity ok: grant mailbox ({} byte ciphertext)",
        fetched.len()
    );

    // In-place transform under the owner token, then download parity.
    client
        .transform(receipt.id, &receipt.owner_token, &Transformation::Rotate180)
        .map_err(|e| e.to_string())?;
    reference
        .transform(ref_id, &Transformation::Rotate180)
        .map_err(|e| e.to_string())?;
    parity(
        "post-transform download",
        &client.download(receipt.id).map_err(|e| e.to_string())?,
        &reference.download(ref_id).map_err(|e| e.to_string())?,
    )?;
    println!("net smoke ok: wire and in-process byte-identical");
    Ok(())
}

/// Uploads `--count` payloads (default: until killed), appending
/// `<id> <fnv64 hex>` to `--manifest` after each acknowledged upload,
/// flushed per line — the manifest is the durability oracle `verify`
/// replays after a crash.
fn net_flood(args: &[String]) -> CliResult {
    let addr = addr_arg(args)?;
    let manifest = flag_value(args, "--manifest").ok_or("missing --manifest <file>")?;
    let count: u64 = match flag_value(args, "--count") {
        Some(v) => v.parse().map_err(|e| format!("bad --count: {e}"))?,
        None => u64::MAX,
    };
    let payload_len: usize = match flag_value(args, "--bytes") {
        Some(v) => v.parse().map_err(|e| format!("bad --bytes: {e}"))?,
        None => 4096,
    };
    let mut client = connect_ready(addr, 10_000)?;
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(manifest)
        .map_err(|e| format!("opening {manifest}: {e}"))?;
    let mut acked = 0u64;
    for i in 0..count {
        // Distinct content per upload so content-addressing is exercised.
        let mut payload = vec![0u8; payload_len];
        let mut h = fnv64(&i.to_le_bytes());
        for chunk in payload.chunks_mut(8) {
            h = fnv64(&h.to_le_bytes());
            let src = h.to_le_bytes();
            chunk.copy_from_slice(&src[..chunk.len()]);
        }
        let params = i.to_le_bytes().to_vec();
        let receipt = client
            .upload(&payload, &params)
            .map_err(|e| e.to_string())?;
        writeln!(out, "{} {:016x}", receipt.id.0, fnv64(&payload))
            .and_then(|()| out.flush())
            .map_err(|e| format!("writing {manifest}: {e}"))?;
        acked += 1;
    }
    println!("flood: {acked} acknowledged upload(s) recorded in {manifest}");
    Ok(())
}

/// Re-downloads every manifest entry and checks content hashes. A torn
/// final line is tolerated (the flood process was killed mid-write);
/// anything else missing or mismatched is a durability violation.
fn net_verify(args: &[String]) -> CliResult {
    let addr = addr_arg(args)?;
    let manifest = flag_value(args, "--manifest").ok_or("missing --manifest <file>")?;
    let text = std::fs::read_to_string(manifest).map_err(|e| format!("reading {manifest}: {e}"))?;
    let mut client = connect_ready(addr, 10_000)?;
    let lines: Vec<&str> = text.split('\n').collect();
    let complete = text.ends_with('\n');
    let mut verified = 0u64;
    let mut torn = 0u64;
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        let last = i + 1 == lines.len();
        let parsed = line.split_once(' ').and_then(|(id, hash)| {
            Some((id.parse::<u64>().ok()?, u64::from_str_radix(hash, 16).ok()?))
        });
        let Some((id, hash)) = parsed else {
            if last && !complete {
                torn += 1;
                continue; // the flood was killed mid-line: not acknowledged
            }
            return Err(format!("{manifest}:{}: unparseable line {line:?}", i + 1));
        };
        let bytes = client
            .download(PhotoId(id))
            .map_err(|e| format!("photo {id} (acknowledged pre-crash) is gone: {e}"))?;
        if fnv64(&bytes) != hash {
            return Err(format!(
                "photo {id} recovered with wrong content (fnv {:016x}, manifest {hash:016x})",
                fnv64(&bytes)
            ));
        }
        verified += 1;
    }
    println!("verify: {verified} acknowledged upload(s) byte-identical after recovery ({torn} torn manifest line(s) ignored)");
    Ok(())
}

/// `puppies net dup --addr <host:port>` — end-to-end check of the
/// perceptual-identity fast path over the wire: upload an original, warm
/// one transformed view, upload a byte-distinct recompressed copy of the
/// same image, and require the copy's *first* transformed serve to come
/// back `x-served-path: sig-cached` with bytes identical to the
/// original's cached result. Finishes with a `/search` probe that must
/// rank both photos as near-duplicates of the original bytes.
fn net_dup(args: &[String]) -> CliResult {
    use puppies_psp::net::client::WireServed;
    let addr = addr_arg(args)?;
    let mut client = connect_ready(addr, 10_000)?;

    let (bytes, params) = fixture(23);
    let original = client.upload(&bytes, &params).map_err(|e| e.to_string())?;
    let t = Transformation::Rotate90;
    let (orig_b, orig_p, _, _) = client
        .download_transformed_traced(original.id, &t)
        .map_err(|e| e.to_string())?;

    // A client re-saving the downloaded photo: byte-distinct, same image.
    let mut coeff = puppies_jpeg::CoeffImage::decode(&bytes).map_err(|e| e.to_string())?;
    coeff.requantize(55);
    let copy_bytes = coeff
        .encode(&puppies_jpeg::EncodeOptions::default())
        .map_err(|e| e.to_string())?;
    if copy_bytes == bytes {
        return Err("net dup: recompressed copy is not byte-distinct".into());
    }
    let copy = client
        .upload(&copy_bytes, &params)
        .map_err(|e| e.to_string())?;
    let (dup_b, dup_p, _, served) = client
        .download_transformed_traced(copy.id, &t)
        .map_err(|e| e.to_string())?;
    if served != WireServed::SigCached {
        return Err(format!(
            "net dup: copy's first transformed serve was not sig-cached (got {served:?})"
        ));
    }
    if dup_b != orig_b || dup_p != orig_p {
        return Err("net dup: sig-cached serve differs from the original's bytes".into());
    }
    println!(
        "dup ok: first serve of the recompressed copy was sig-cached ({} bytes, byte-identical)",
        dup_b.len()
    );

    let (sig, matches) = client
        .search(&bytes, Some(&params))
        .map_err(|e| e.to_string())?;
    let ids: Vec<u64> = matches.iter().map(|(id, _)| id.0).collect();
    if !ids.contains(&original.id.0) || !ids.contains(&copy.id.0) {
        return Err(format!(
            "net dup: /search for sig {sig:016x} missed the family (got ids {ids:?})"
        ));
    }
    println!(
        "search ok: sig {sig:016x} matched {} photo(s) including both family members",
        matches.len()
    );
    Ok(())
}

/// `puppies search <probe.jpg> --addr <host:port> [--params <in.pup>]` —
/// asks a serving PSP for stored photos perceptually near the probe
/// image. The probe's private regions (if `--params` names them) are
/// excluded from its signature, exactly as at upload time.
pub fn cmd_search(args: &[String]) -> CliResult {
    let probe_path = crate::positional(args, 0)?;
    let addr = addr_arg(args)?;
    let bytes = std::fs::read(probe_path).map_err(|e| format!("reading {probe_path}: {e}"))?;
    let params = match flag_value(args, "--params") {
        Some(p) => Some(std::fs::read(p).map_err(|e| format!("reading {p}: {e}"))?),
        None => None,
    };
    let mut client = connect_ready(addr, 10_000)?;
    let (sig, matches) = client
        .search(&bytes, params.as_deref())
        .map_err(|e| e.to_string())?;
    println!("probe signature: {sig:016x}");
    if matches.is_empty() {
        println!("no near-duplicates stored");
        return Ok(());
    }
    for (id, distance) in &matches {
        println!("  photo {:>6}  hamming distance {distance}", id.0);
    }
    println!("{} near-duplicate(s)", matches.len());
    Ok(())
}

/// Human-readable dump of a store's WAL — the failure artifact CI uploads
/// when the service job trips.
pub fn cmd_wal_dump(args: &[String]) -> CliResult {
    let dir = flag_value(args, "--dir").ok_or("missing --dir <store-dir>")?;
    let path = std::path::Path::new(dir).join("wal.log");
    // Read-only: scan the bytes rather than `Wal::replay`, which would
    // truncate a torn tail in place — a dump must not mutate evidence.
    let data = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let (records, good) = puppies_psp::wal::scan(&data);
    // Write, don't println!: the dump is routinely piped to `head`, and
    // println! panics on the EPIPE when the pipe closes early.
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "{}: {} record(s), {} torn byte(s) at the tail",
        path.display(),
        records.len(),
        data.len() as u64 - good
    );
    for (i, record) in records.iter().enumerate() {
        if writeln!(out, "{i:>6}: {record:?}").is_err() {
            break;
        }
    }
    Ok(())
}
