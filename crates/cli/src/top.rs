//! `puppies top` — a live dashboard over a serving PSP's `/metrics`.
//!
//! ```text
//! puppies top --addr <host:port> [--samples N] [--interval-ms M]
//!             [--plain] [--assert-monotonic] [--assert-nonzero <series>]...
//! ```
//!
//! Polls the Prometheus text exposition, renders totals plus the
//! per-endpoint SLO window table, and derives rates from successive
//! samples. The `--assert-*` flags turn it into CI's scrape checker:
//! `--assert-monotonic` fails if any `*_total` counter ever decreases
//! between samples, `--assert-nonzero <substring>` fails if no matching
//! series is positive by the final sample.

use crate::{flag_value, flag_values, has_flag, CliResult};
use puppies_psp::net::Client;
use std::collections::BTreeMap;

/// One scrape, parsed: full series key (`name{labels}`) → value.
type Scrape = BTreeMap<String, f64>;

fn parse_scrape(text: &str) -> Scrape {
    let mut out = Scrape::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split on the last space: label values may not contain unescaped
        // spaces but this stays safe if a timestamp is ever appended.
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Ok(v) = value.parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

/// The label value of `label` inside a `name{a="b",...}` series key.
fn label_of<'a>(key: &'a str, label: &str) -> Option<&'a str> {
    let needle = format!("{label}=\"");
    let start = key.find(&needle)? + needle.len();
    let end = key[start..].find('"')? + start;
    Some(&key[start..end])
}

fn series<'a>(scrape: &'a Scrape, name: &str) -> impl Iterator<Item = (&'a str, f64)> + 'a {
    let prefix = format!("{name}{{");
    let bare = name.to_string();
    scrape
        .iter()
        .filter(move |(k, _)| **k == bare || k.starts_with(&prefix))
        .map(|(k, v)| (k.as_str(), *v))
}

fn value(scrape: &Scrape, key: &str) -> f64 {
    scrape.get(key).copied().unwrap_or(0.0)
}

fn render(scrape: &Scrape, prev: Option<&Scrape>, interval_ms: u64) -> String {
    let mut out = String::new();
    // fold, not sum(): an empty f64 sum() is -0.0, which prints as "-0".
    let total = |name: &str| series(scrape, name).map(|(_, v)| v).fold(0.0, |a, b| a + b);
    let requests = total("psp_net_requests_total");
    let errors = total("psp_net_errors_total");
    let rate = prev
        .map(|p| {
            let dr = requests - p.get("psp_net_requests_total").copied().unwrap_or(0.0);
            dr.max(0.0) * 1000.0 / interval_ms.max(1) as f64
        })
        .unwrap_or(0.0);
    out.push_str(&format!(
        "ready:{} connections:{} requests:{requests:.0} ({rate:.1}/s) errors:{errors:.0}\n",
        value(scrape, "psp_ready"),
        value(scrape, "psp_net_connections"),
    ));
    if let Some(entries) = scrape.get("psp_sig_index_entries") {
        out.push_str(&format!(
            "sig index: {entries:.0} entries, {:.0} family hit(s), {:.0} search(es)\n",
            value(scrape, "psp_sig_hit_total"),
            value(scrape, "psp_sig_search_total"),
        ));
    }
    let healthy = scrape.get("psp_cluster_backends_healthy");
    if let Some(h) = healthy {
        out.push_str(&format!(
            "cluster: {h:.0}/{:.0} backends healthy, quorum k={:.0}\n",
            value(scrape, "psp_cluster_backends_total"),
            value(scrape, "psp_cluster_quorum_k"),
        ));
    }
    let mut endpoints: Vec<&str> = series(scrape, "psp_slo_requests_total")
        .filter_map(|(k, _)| label_of(k, "endpoint"))
        .collect();
    endpoints.sort_unstable();
    if !endpoints.is_empty() {
        out.push_str(&format!(
            "{:<12} {:>9} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}\n",
            "endpoint",
            "requests",
            "errors",
            "req/s",
            "p99 ms",
            "err %",
            "cache %",
            "coeff %",
            "sig %"
        ));
    }
    let slo = |name: &str, ep: &str| value(scrape, &format!("{name}{{endpoint=\"{ep}\"}}"));
    let pct = |v: f64| {
        if v < 0.0 {
            "-".to_string()
        } else {
            format!("{:.1}", v * 100.0)
        }
    };
    for ep in endpoints {
        let opt = |name: &str| {
            scrape
                .get(&format!("{name}{{endpoint=\"{ep}\"}}"))
                .copied()
                .unwrap_or(-1.0)
        };
        out.push_str(&format!(
            "{ep:<12} {:>9.0} {:>7.0} {:>9.2} {:>9.2} {:>7} {:>7} {:>7} {:>7}\n",
            slo("psp_slo_requests_total", ep),
            slo("psp_slo_errors_total", ep),
            slo("psp_slo_window_request_rate", ep),
            slo("psp_slo_window_p99_us", ep) / 1000.0,
            pct(slo("psp_slo_window_error_rate", ep)),
            pct(opt("psp_slo_window_cache_hit_rate")),
            pct(opt("psp_slo_window_coeff_serve_rate")),
            pct(opt("psp_slo_window_sig_hit_rate")),
        ));
    }
    out
}

/// Counters that decreased between two scrapes (name → before/after).
fn regressions(prev: &Scrape, cur: &Scrape) -> Vec<String> {
    prev.iter()
        .filter(|(k, _)| k.split('{').next().unwrap_or("").ends_with("_total"))
        .filter_map(|(k, before)| {
            let after = cur.get(k)?;
            (after < before).then(|| format!("{k}: {before} -> {after}"))
        })
        .collect()
}

pub fn cmd(args: &[String]) -> CliResult {
    let addr = flag_value(args, "--addr").ok_or("missing --addr <host:port>")?;
    let samples: u64 = match flag_value(args, "--samples") {
        Some(v) => v.parse().map_err(|e| format!("bad --samples: {e}"))?,
        None => u64::MAX,
    };
    let interval_ms: u64 = match flag_value(args, "--interval-ms") {
        Some(v) => v.parse().map_err(|e| format!("bad --interval-ms: {e}"))?,
        None => 1000,
    };
    let plain = has_flag(args, "--plain");
    let assert_monotonic = has_flag(args, "--assert-monotonic");
    let assert_nonzero = flag_values(args, "--assert-nonzero");
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut prev: Option<Scrape> = None;
    let mut last = Scrape::new();
    for i in 0..samples.max(1) {
        let text = match client.metrics_text() {
            Ok(t) => t,
            Err(_) => {
                // The connection may have idled out; one reconnect attempt.
                client = Client::connect(addr).map_err(|e| e.to_string())?;
                client.metrics_text().map_err(|e| e.to_string())?
            }
        };
        let scrape = parse_scrape(&text);
        if scrape.is_empty() {
            return Err("scrape parsed to zero series — is /metrics serving?".into());
        }
        if assert_monotonic {
            if let Some(p) = &prev {
                let bad = regressions(p, &scrape);
                if !bad.is_empty() {
                    return Err(format!("counter(s) went backwards: {}", bad.join("; ")));
                }
            }
        }
        if !plain {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(&scrape, prev.as_ref(), interval_ms));
        if plain {
            println!("---");
        }
        last = scrape.clone();
        prev = Some(scrape);
        if i + 1 < samples {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    for needle in assert_nonzero {
        let hit = last.iter().any(|(k, v)| k.contains(needle) && *v > 0.0);
        if !hit {
            return Err(format!("no series matching {needle:?} is nonzero"));
        }
        println!("assert-nonzero ok: {needle}");
    }
    if assert_monotonic {
        println!("assert-monotonic ok: no *_total series decreased");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP psp_net_requests_total psp.net.requests\n\
# TYPE psp_net_requests_total counter\n\
psp_net_requests_total 42\n\
psp_slo_requests_total{endpoint=\"upload\"} 17\n\
psp_slo_window_p99_us{endpoint=\"upload\"} 1234.5\n\
psp_ready 1\n";

    #[test]
    fn scrape_parses_values_and_labels() {
        let s = parse_scrape(SAMPLE);
        assert_eq!(s.get("psp_net_requests_total"), Some(&42.0));
        assert_eq!(
            s.get("psp_slo_requests_total{endpoint=\"upload\"}"),
            Some(&17.0)
        );
        assert_eq!(
            label_of("psp_slo_requests_total{endpoint=\"upload\"}", "endpoint"),
            Some("upload")
        );
    }

    #[test]
    fn monotonicity_check_flags_decreases_only() {
        let before = parse_scrape(SAMPLE);
        let mut after = before.clone();
        assert!(regressions(&before, &after).is_empty());
        after.insert("psp_net_requests_total".into(), 41.0);
        // Gauges may move freely; only *_total decreases are violations.
        after.insert("psp_ready".into(), 0.0);
        let bad = regressions(&before, &after);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].starts_with("psp_net_requests_total"));
    }

    #[test]
    fn render_builds_the_endpoint_table() {
        let s = parse_scrape(SAMPLE);
        let text = render(&s, None, 1000);
        assert!(text.contains("requests:42"));
        assert!(text.contains("upload"));
        assert!(text.contains("1.23"));
    }
}
