//! The CI service-job scenario as an integration test: boot
//! `puppies-cli serve`, run the network smoke, flood acknowledged
//! uploads, SIGKILL the server mid-write, restart, and prove every
//! acknowledged upload recovers byte-identical.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_puppies-cli"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("puppies_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

struct Serving {
    child: Child,
    addr: String,
}

/// Starts `serve` on an ephemeral port and parses the bound address from
/// its first stdout line (`psp-serve listening on <addr> ...`).
fn start_server(store: &Path) -> Serving {
    let mut child = bin()
        .args([
            "serve",
            "--dir",
            store.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("serve stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    Serving { child, addr }
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("run cli");
    assert!(
        out.status.success(),
        "`{}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn smoke_kill9_and_recovery() {
    let dir = tmp_dir("kill9");
    let store = dir.join("store");
    std::fs::create_dir_all(&store).unwrap();
    let manifest = dir.join("acked.txt");
    let manifest_s = manifest.to_str().unwrap();

    // Boot and smoke: the wire must match in-process byte-for-byte.
    let mut server = start_server(&store);
    run_ok(&["net", "smoke", "--addr", &server.addr]);

    // A first tranche of acknowledged uploads.
    run_ok(&[
        "net",
        "flood",
        "--addr",
        &server.addr,
        "--manifest",
        manifest_s,
        "--count",
        "25",
    ]);

    // Keep writing in the background, then SIGKILL the server mid-write.
    let mut flood = bin()
        .args([
            "net",
            "flood",
            "--addr",
            &server.addr,
            "--manifest",
            manifest_s,
            "--count",
            "100000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn flood");
    // Let some acks land.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let acked = std::fs::read_to_string(&manifest)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if acked >= 35 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    server.child.kill().expect("kill -9 server"); // SIGKILL
    server.child.wait().expect("reap server");
    let _ = flood.kill();
    let _ = flood.wait();

    let acked = std::fs::read_to_string(&manifest)
        .map(|t| t.lines().count())
        .unwrap_or(0);
    assert!(acked >= 25, "expected acknowledged uploads, got {acked}");

    // The WAL dump must parse (read-only, tolerates a torn tail).
    let dump = run_ok(&["wal-dump", "--dir", store.to_str().unwrap()]);
    assert!(dump.contains("record(s)"), "unexpected dump: {dump}");

    // Restart on the same store: every acknowledged upload must come back
    // byte-identical.
    let mut server = start_server(&store);
    let verify = run_ok(&[
        "net",
        "verify",
        "--addr",
        &server.addr,
        "--manifest",
        manifest_s,
    ]);
    assert!(
        verify.contains("byte-identical after recovery"),
        "unexpected verify output: {verify}"
    );

    server.child.kill().expect("stop server");
    server.child.wait().expect("reap server");
    let _ = std::fs::remove_dir_all(&dir);
}
