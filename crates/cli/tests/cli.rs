//! End-to-end tests driving the `puppies` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_puppies-cli"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("puppies_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn write_test_ppm(path: &PathBuf) {
    let img = puppies_image::RgbImage::from_fn(96, 64, |x, y| {
        puppies_image::Rgb::new(
            (40 + x * 2) as u8,
            (60 + y * 3) as u8,
            ((x + y) % 256) as u8,
        )
    });
    puppies_image::io::save_ppm(&img, path).expect("write ppm");
}

#[test]
fn full_cli_workflow() {
    let dir = tmp_dir("flow");
    let input = dir.join("in.ppm");
    write_test_ppm(&input);
    let key = dir.join("owner.key");
    let jpg = dir.join("out.jpg");
    let params = dir.join("out.pup");
    let grant = dir.join("bob.grant");
    let rec = dir.join("rec.ppm");

    let ok = |out: std::process::Output, what: &str| {
        assert!(
            out.status.success(),
            "{what} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    ok(
        bin()
            .args(["keygen", key.to_str().unwrap()])
            .output()
            .unwrap(),
        "keygen",
    );
    assert_eq!(std::fs::read(&key).unwrap().len(), 32);

    ok(
        bin()
            .args([
                "protect",
                input.to_str().unwrap(),
                jpg.to_str().unwrap(),
                "--key",
                key.to_str().unwrap(),
                "--params",
                params.to_str().unwrap(),
                "--roi",
                "16,16,32,32",
            ])
            .output()
            .unwrap(),
        "protect",
    );
    // The protected image decodes as a plain JPEG.
    let bytes = std::fs::read(&jpg).unwrap();
    assert!(puppies_jpeg::CoeffImage::decode(&bytes).is_ok());

    let out = ok(
        bin()
            .args(["inspect", "--params", params.to_str().unwrap()])
            .output()
            .unwrap(),
        "inspect",
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("PuPPIeS-Z"), "inspect output: {text}");

    ok(
        bin()
            .args([
                "grant",
                "--key",
                key.to_str().unwrap(),
                "--image-id",
                "0",
                "--out",
                grant.to_str().unwrap(),
                "--roi",
                "0",
            ])
            .output()
            .unwrap(),
        "grant",
    );

    // Recover via the grant; result must match the owner-key recovery.
    ok(
        bin()
            .args([
                "recover",
                jpg.to_str().unwrap(),
                rec.to_str().unwrap(),
                "--params",
                params.to_str().unwrap(),
                "--grant",
                grant.to_str().unwrap(),
            ])
            .output()
            .unwrap(),
        "recover",
    );
    let recovered = puppies_image::io::load_ppm(&rec).unwrap();
    let original = puppies_image::io::load_ppm(&input).unwrap();
    let reference = puppies_jpeg::CoeffImage::from_rgb(&original, 75).to_rgb();
    assert_eq!(recovered, reference, "grant-based recovery must be exact");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn protect_without_rois_fails_cleanly() {
    let dir = tmp_dir("noroi");
    let input = dir.join("in.ppm");
    write_test_ppm(&input);
    let key = dir.join("k.key");
    bin()
        .args(["keygen", key.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "protect",
            input.to_str().unwrap(),
            dir.join("o.jpg").to_str().unwrap(),
            "--key",
            key.to_str().unwrap(),
            "--params",
            dir.join("o.pup").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no regions"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite of the conformance PR: `protect-batch` must be
/// thread-count-invariant — the same inputs at `--threads 1` and
/// `--threads 8` produce byte-identical JPEGs and params files.
#[test]
fn protect_batch_is_deterministic_across_thread_counts() {
    let dir = tmp_dir("batch_det");
    let key = dir.join("owner.key");
    std::fs::write(&key, [7u8; 32]).unwrap();
    let mut inputs = Vec::new();
    for i in 0..3 {
        let p = dir.join(format!("in{i}.ppm"));
        write_test_ppm(&p);
        inputs.push(p);
    }

    let run = |threads: &str, out_tag: &str| -> Vec<(String, Vec<u8>)> {
        let out_dir = dir.join(out_tag);
        std::fs::create_dir_all(&out_dir).unwrap();
        let mut cmd = bin();
        cmd.arg("protect-batch");
        for p in &inputs {
            cmd.arg(p.to_str().unwrap());
        }
        let out = cmd
            .args([
                "--key",
                key.to_str().unwrap(),
                "--out-dir",
                out_dir.to_str().unwrap(),
                "--threads",
                threads,
                "--roi",
                "8,8,32,32",
                "--image-id",
                "40",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "protect-batch --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };

    let serial = run("1", "serial");
    let parallel = run("8", "parallel");
    assert_eq!(serial.len(), parallel.len());
    assert!(
        serial.iter().any(|(name, _)| name.ends_with(".jpg"))
            && serial.iter().any(|(name, _)| name.ends_with(".pup")),
        "batch output must contain images and params files"
    );
    for ((name_a, bytes_a), (name_b, bytes_b)) in serial.iter().zip(&parallel) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a} differs between --threads 1 and --threads 8"
        );
    }
}

/// `--trace` and `--stats` produce loadable artifacts without changing a
/// byte of the protected output, and `puppies stats` renders the snapshot.
#[test]
fn trace_and_stats_flags_are_observable_and_inert() {
    let dir = tmp_dir("obs");
    let input = dir.join("in.ppm");
    write_test_ppm(&input);
    let key = dir.join("owner.key");
    std::fs::write(&key, [3u8; 32]).unwrap();
    let trace = dir.join("trace.json");
    let stats = dir.join("stats.json");

    let protect = |jpg: &PathBuf, extra: &[&str]| {
        let mut cmd = bin();
        cmd.args([
            "protect",
            input.to_str().unwrap(),
            jpg.to_str().unwrap(),
            "--key",
            key.to_str().unwrap(),
            "--params",
            dir.join("out.pup").to_str().unwrap(),
            "--roi",
            "16,16,32,32",
        ])
        .args(extra)
        // A multi-thread pool regardless of the host's core count, so the
        // trace exercises cross-thread spans.
        .env("PUPPIES_THREADS", "4");
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "protect failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };

    let plain_jpg = dir.join("plain.jpg");
    protect(&plain_jpg, &[]);
    let obs_jpg = dir.join("observed.jpg");
    protect(
        &obs_jpg,
        &[
            "--trace",
            trace.to_str().unwrap(),
            "--stats",
            stats.to_str().unwrap(),
        ],
    );

    // Determinism: the instrumented run emits the same JPEG bytes.
    assert_eq!(
        std::fs::read(&plain_jpg).unwrap(),
        std::fs::read(&obs_jpg).unwrap(),
        "--trace/--stats changed the protected bytes"
    );

    // The trace is a Chrome trace_event document with nested pipeline
    // spans and thread metadata.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.starts_with("{\"traceEvents\":["));
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "core.protect",
        "jpeg.encode",
        "pool.job",
    ] {
        assert!(trace_text.contains(needle), "trace missing {needle}");
    }

    // The stats snapshot renders to a quantile table via `puppies stats`.
    let out = bin()
        .args(["stats", stats.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in [
        "p50",
        "p95",
        "p99",
        "core.protect",
        "jpeg.encode",
        "pool.job",
    ] {
        assert!(
            table.contains(needle),
            "stats table missing {needle}:\n{table}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The conformance subcommand runs the harness end-to-end (quick fuzz
/// scale) against the committed golden vectors, and fails loudly when a
/// golden vector is tampered with.
#[test]
fn conformance_subcommand_end_to_end() {
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../conformance/golden");
    let dir = tmp_dir("conf");
    let out = bin()
        .args([
            "conformance",
            "--golden-dir",
            golden.to_str().unwrap(),
            "--corpus-dir",
            dir.join("corpus").to_str().unwrap(),
            "--report-dir",
            dir.join("report").to_str().unwrap(),
            "--skip",
            "oracle",
            "--skip",
            "differential",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "conformance failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(dir.join("report/conformance-report.txt")).unwrap();
    assert!(report.contains("golden/fixture.ppm"));
    assert!(report.contains("0 failed"));

    // Tampered golden directory: copy, flip one byte, expect a readable
    // diff report and a nonzero exit.
    let tampered = dir.join("golden_tampered");
    std::fs::create_dir_all(&tampered).unwrap();
    for entry in std::fs::read_dir(&golden).unwrap() {
        let e = entry.unwrap();
        std::fs::copy(e.path(), tampered.join(e.file_name())).unwrap();
    }
    let victim = tampered.join("encode_q90.jpg");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, bytes).unwrap();
    let out = bin()
        .args([
            "conformance",
            "--golden-dir",
            tampered.to_str().unwrap(),
            "--skip",
            "oracle",
            "--skip",
            "differential",
            "--skip",
            "fuzz",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "tampered golden dir must fail");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("golden/encode_q90.jpg") && text.contains("first mismatch at byte"),
        "diff report not readable:\n{text}"
    );
}
