//! End-to-end tests driving the `puppies` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_puppies-cli"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("puppies_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn write_test_ppm(path: &PathBuf) {
    let img = puppies_image::RgbImage::from_fn(96, 64, |x, y| {
        puppies_image::Rgb::new(
            (40 + x * 2) as u8,
            (60 + y * 3) as u8,
            ((x + y) % 256) as u8,
        )
    });
    puppies_image::io::save_ppm(&img, path).expect("write ppm");
}

#[test]
fn full_cli_workflow() {
    let dir = tmp_dir("flow");
    let input = dir.join("in.ppm");
    write_test_ppm(&input);
    let key = dir.join("owner.key");
    let jpg = dir.join("out.jpg");
    let params = dir.join("out.pup");
    let grant = dir.join("bob.grant");
    let rec = dir.join("rec.ppm");

    let ok = |out: std::process::Output, what: &str| {
        assert!(
            out.status.success(),
            "{what} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    ok(
        bin()
            .args(["keygen", key.to_str().unwrap()])
            .output()
            .unwrap(),
        "keygen",
    );
    assert_eq!(std::fs::read(&key).unwrap().len(), 32);

    ok(
        bin()
            .args([
                "protect",
                input.to_str().unwrap(),
                jpg.to_str().unwrap(),
                "--key",
                key.to_str().unwrap(),
                "--params",
                params.to_str().unwrap(),
                "--roi",
                "16,16,32,32",
            ])
            .output()
            .unwrap(),
        "protect",
    );
    // The protected image decodes as a plain JPEG.
    let bytes = std::fs::read(&jpg).unwrap();
    assert!(puppies_jpeg::CoeffImage::decode(&bytes).is_ok());

    let out = ok(
        bin()
            .args(["inspect", "--params", params.to_str().unwrap()])
            .output()
            .unwrap(),
        "inspect",
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("PuPPIeS-Z"), "inspect output: {text}");

    ok(
        bin()
            .args([
                "grant",
                "--key",
                key.to_str().unwrap(),
                "--image-id",
                "0",
                "--out",
                grant.to_str().unwrap(),
                "--roi",
                "0",
            ])
            .output()
            .unwrap(),
        "grant",
    );

    // Recover via the grant; result must match the owner-key recovery.
    ok(
        bin()
            .args([
                "recover",
                jpg.to_str().unwrap(),
                rec.to_str().unwrap(),
                "--params",
                params.to_str().unwrap(),
                "--grant",
                grant.to_str().unwrap(),
            ])
            .output()
            .unwrap(),
        "recover",
    );
    let recovered = puppies_image::io::load_ppm(&rec).unwrap();
    let original = puppies_image::io::load_ppm(&input).unwrap();
    let reference = puppies_jpeg::CoeffImage::from_rgb(&original, 75).to_rgb();
    assert_eq!(recovered, reference, "grant-based recovery must be exact");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn protect_without_rois_fails_cleanly() {
    let dir = tmp_dir("noroi");
    let input = dir.join("in.ppm");
    write_test_ppm(&input);
    let key = dir.join("k.key");
    bin()
        .args(["keygen", key.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "protect",
            input.to_str().unwrap(),
            dir.join("o.jpg").to_str().unwrap(),
            "--key",
            key.to_str().unwrap(),
            "--params",
            dir.join("o.pup").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no regions"));
    std::fs::remove_dir_all(&dir).ok();
}
