//! PSP-side image transformations for the PuPPIeS reproduction.
//!
//! §II-B of the paper enumerates the transformations photo-sharing
//! platforms routinely apply — scaling, cropping, compression, rotation,
//! filtering, overlapping — and PuPPIeS' key claim (C2) is that perturbed
//! images survive all of them with *unchanged pipelines*. This crate
//! implements each transformation twice:
//!
//! - **pixel domain** ([`Transformation::apply_to_rgb`]): decode → transform
//!   → re-encode, what a PSP built on libjpeg + an imaging library does;
//! - **coefficient domain** ([`Transformation::apply_to_coeff`]): the
//!   lossless jpegtran-style path for block-aligned crops, 90°·k rotations,
//!   flips and recompression.
//!
//! Both paths are *perturbation-agnostic*: they never special-case
//! PuPPIeS-perturbed inputs, which is precisely the compatibility property
//! Table I of the paper grades schemes on.
//!
//! # Example
//!
//! ```
//! use puppies_image::{Rgb, RgbImage, Rect};
//! use puppies_transform::Transformation;
//!
//! let img = RgbImage::filled(64, 48, Rgb::new(10, 20, 30));
//! let t = Transformation::Crop(Rect::new(8, 8, 32, 24));
//! let out = t.apply_to_rgb(&img)?;
//! assert_eq!((out.width(), out.height()), (32, 24));
//! # Ok::<(), puppies_transform::TransformError>(())
//! ```

use puppies_image::convolve::{convolve, gaussian_blur, Kernel};
use puppies_image::resample::{self, Filter};
use puppies_image::{Plane, Rect, Rgb, RgbImage};
use puppies_jpeg::{Block, CoeffImage, Component, BLOCK_SIZE};
use std::fmt;

/// Errors produced by transformation application.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransformError {
    /// The crop/overlay rectangle is outside the image.
    OutOfBounds {
        /// The offending rectangle.
        rect: Rect,
        /// Image width.
        width: u32,
        /// Image height.
        height: u32,
    },
    /// The transformation cannot be applied losslessly in the coefficient
    /// domain (unaligned geometry or inherently pixel-domain operation).
    NotCoeffDomain(String),
    /// A parameter is invalid (zero scale target, bad alpha, ...).
    InvalidParameter(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::OutOfBounds {
                rect,
                width,
                height,
            } => write!(f, "rect {rect:?} outside {width}x{height} image"),
            TransformError::NotCoeffDomain(m) => {
                write!(f, "not applicable in coefficient domain: {m}")
            }
            TransformError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Convenient result alias for transformation operations.
pub type Result<T> = std::result::Result<T, TransformError>;

/// A linear filtering operation (frequency/pixel-domain transformation in
/// the paper's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FilterOp {
    /// Separable Gaussian blur with the given sigma.
    Gaussian {
        /// Standard deviation in pixels; must be positive.
        sigma: f32,
    },
    /// 3×3 unsharp-style sharpening.
    Sharpen,
    /// Normalized box blur with the given odd side length.
    Box {
        /// Kernel side; must be odd and ≥ 1.
        side: u32,
    },
}

/// Serializable resampling filter (mirrors [`Filter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScaleFilter {
    /// Nearest-neighbour sampling.
    Nearest,
    /// Bilinear interpolation.
    #[default]
    Bilinear,
    /// Area-average (box) filter.
    Box,
}

impl From<ScaleFilter> for Filter {
    fn from(f: ScaleFilter) -> Filter {
        match f {
            ScaleFilter::Nearest => Filter::Nearest,
            ScaleFilter::Bilinear => Filter::Bilinear,
            ScaleFilter::Box => Filter::Box,
        }
    }
}

/// One PSP-side transformation.
///
/// The serialized form is what the PSP publishes as "transformation type"
/// public metadata so receivers can mirror it on the shadow ROI (§III-C
/// scenario 2; the paper assumes transformations are known to PuPPIeS,
/// footnote 10).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Transformation {
    /// Resample to exactly `width` × `height`.
    Scale {
        /// Target width (nonzero).
        width: u32,
        /// Target height (nonzero).
        height: u32,
        /// Resampling filter.
        filter: ScaleFilter,
    },
    /// Cut out a rectangle.
    Crop(Rect),
    /// Rotate 90° clockwise.
    Rotate90,
    /// Rotate 180°.
    Rotate180,
    /// Rotate 270° clockwise.
    Rotate270,
    /// Mirror horizontally.
    FlipHorizontal,
    /// Mirror vertically.
    FlipVertical,
    /// JPEG recompression at the given quality (1..=100).
    Recompress {
        /// Target quality.
        quality: u8,
    },
    /// Linear filtering.
    Filter(FilterOp),
    /// Alpha-blend a solid rectangle over the image (watermark-style
    /// "overlapping").
    Overlay {
        /// Region to cover.
        rect: Rect,
        /// Overlay color.
        color: Rgb,
        /// Blend factor in `(0, 1]`; 1 replaces pixels outright.
        alpha: f32,
    },
}

impl Transformation {
    /// Convenience constructor: uniform rescale of a `width`×`height` image
    /// by `num/den` with the default bilinear filter.
    ///
    /// # Errors
    /// Fails if the factor is zero or the result collapses to zero pixels.
    pub fn scale_by(width: u32, height: u32, num: u32, den: u32) -> Result<Transformation> {
        if num == 0 || den == 0 {
            return Err(TransformError::InvalidParameter(
                "scale factor must be nonzero".into(),
            ));
        }
        let w = (width as u64 * num as u64 / den as u64) as u32;
        let h = (height as u64 * num as u64 / den as u64) as u32;
        if w == 0 || h == 0 {
            return Err(TransformError::InvalidParameter(format!(
                "scaling {width}x{height} by {num}/{den} collapses to zero"
            )));
        }
        Ok(Transformation::Scale {
            width: w,
            height: h,
            filter: ScaleFilter::Bilinear,
        })
    }

    /// Output dimensions for an input of the given size.
    ///
    /// # Errors
    /// Fails for invalid parameters (e.g. crop outside the image).
    pub fn output_size(&self, width: u32, height: u32) -> Result<(u32, u32)> {
        match *self {
            Transformation::Scale {
                width: w,
                height: h,
                ..
            } => {
                if w == 0 || h == 0 {
                    Err(TransformError::InvalidParameter("zero scale target".into()))
                } else {
                    Ok((w, h))
                }
            }
            Transformation::Crop(r) => {
                if r.is_empty() || !Rect::new(0, 0, width, height).contains_rect(r) {
                    Err(TransformError::OutOfBounds {
                        rect: r,
                        width,
                        height,
                    })
                } else {
                    Ok((r.w, r.h))
                }
            }
            Transformation::Rotate90 | Transformation::Rotate270 => Ok((height, width)),
            _ => Ok((width, height)),
        }
    }

    /// Applies the transformation to a decoded RGB image (the general
    /// pixel-domain path every PSP has).
    ///
    /// `Recompress` round-trips through the JPEG codec at the requested
    /// quality.
    ///
    /// # Errors
    /// Fails on invalid parameters or out-of-bounds rectangles.
    pub fn apply_to_rgb(&self, img: &RgbImage) -> Result<RgbImage> {
        match *self {
            Transformation::Scale {
                width,
                height,
                filter,
            } => {
                if width == 0 || height == 0 {
                    return Err(TransformError::InvalidParameter("zero scale target".into()));
                }
                Ok(resample::scale_rgb(img, width, height, filter.into()))
            }
            Transformation::Crop(r) => img.crop(r).map_err(|_| TransformError::OutOfBounds {
                rect: r,
                width: img.width(),
                height: img.height(),
            }),
            Transformation::Rotate90 => Ok(resample::rotate90(img)),
            Transformation::Rotate180 => Ok(resample::rotate180(img)),
            Transformation::Rotate270 => Ok(resample::rotate270(img)),
            Transformation::FlipHorizontal => Ok(resample::flip_horizontal(img)),
            Transformation::FlipVertical => Ok(resample::flip_vertical(img)),
            Transformation::Recompress { quality } => {
                if quality == 0 || quality > 100 {
                    return Err(TransformError::InvalidParameter(format!(
                        "quality {quality} outside 1..=100"
                    )));
                }
                Ok(CoeffImage::from_rgb(img, quality).to_rgb())
            }
            Transformation::Filter(op) => apply_filter_rgb(img, op),
            Transformation::Overlay { rect, color, alpha } => {
                if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
                    return Err(TransformError::InvalidParameter(format!(
                        "alpha {alpha} outside (0, 1]"
                    )));
                }
                if !img.bounds().contains_rect(rect) {
                    return Err(TransformError::OutOfBounds {
                        rect,
                        width: img.width(),
                        height: img.height(),
                    });
                }
                let mut out = img.clone();
                for y in rect.y..rect.bottom() {
                    for x in rect.x..rect.right() {
                        out.set(x, y, img.get(x, y).lerp(color, alpha));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Applies the transformation to a float plane, for shadow-ROI
    /// arithmetic at the receiver. The plane is treated as one color
    /// component; `Recompress` and `Overlay` are rejected (the former is
    /// handled in the coefficient domain, the latter is not a per-plane
    /// linear map).
    ///
    /// # Errors
    /// Fails for `Recompress`/`Overlay` and invalid geometry.
    pub fn apply_to_plane(&self, plane: &Plane) -> Result<Plane> {
        let (pw, ph) = (plane.width(), plane.height());
        match *self {
            Transformation::Scale {
                width,
                height,
                filter,
            } => {
                if width == 0 || height == 0 {
                    return Err(TransformError::InvalidParameter("zero scale target".into()));
                }
                Ok(resample::scale_plane(plane, width, height, filter.into()))
            }
            Transformation::Crop(r) => {
                if r.is_empty() || !Rect::new(0, 0, pw, ph).contains_rect(r) {
                    return Err(TransformError::OutOfBounds {
                        rect: r,
                        width: pw,
                        height: ph,
                    });
                }
                Ok(Plane::from_fn(r.w, r.h, |x, y| plane.get(r.x + x, r.y + y)))
            }
            Transformation::Rotate90 => Ok(Plane::from_fn(ph, pw, |x, y| plane.get(y, ph - 1 - x))),
            Transformation::Rotate180 => Ok(Plane::from_fn(pw, ph, |x, y| {
                plane.get(pw - 1 - x, ph - 1 - y)
            })),
            Transformation::Rotate270 => {
                Ok(Plane::from_fn(ph, pw, |x, y| plane.get(pw - 1 - y, x)))
            }
            Transformation::FlipHorizontal => {
                Ok(Plane::from_fn(pw, ph, |x, y| plane.get(pw - 1 - x, y)))
            }
            Transformation::FlipVertical => {
                Ok(Plane::from_fn(pw, ph, |x, y| plane.get(x, ph - 1 - y)))
            }
            Transformation::Filter(op) => apply_filter_plane(plane, op),
            Transformation::Recompress { .. } => Err(TransformError::NotCoeffDomain(
                "recompression is not a per-plane linear map".into(),
            )),
            Transformation::Overlay { .. } => Err(TransformError::NotCoeffDomain(
                "overlay is not a per-plane linear map".into(),
            )),
        }
    }

    /// Whether [`Transformation::apply_to_coeff`] supports this
    /// transformation losslessly for an image of the given size.
    pub fn is_coeff_domain(&self, width: u32, height: u32) -> bool {
        let aligned = |v: u32| v % BLOCK_SIZE == 0;
        match *self {
            Transformation::Crop(r) => aligned(r.x) && aligned(r.y) && aligned(r.w) && aligned(r.h),
            Transformation::Rotate90
            | Transformation::Rotate180
            | Transformation::Rotate270
            | Transformation::FlipHorizontal
            | Transformation::FlipVertical => aligned(width) && aligned(height),
            Transformation::Recompress { .. } => true,
            _ => false,
        }
    }

    /// Canonical, injective byte encoding of the transformation, for use as
    /// a content-address component (e.g. the PSP's transform-result cache
    /// chains this into the FNV of the source bitstream). Two
    /// transformations produce the same bytes iff they compare equal:
    /// every variant starts with a distinct tag, every field is serialized
    /// in full (floats via their IEEE-754 bit pattern), and all integers
    /// are little-endian.
    ///
    /// This is *not* a wire format — `PublicParams` has its own — so it can
    /// stay frozen as a cache-key encoding even if the wire format evolves.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        match *self {
            Transformation::Scale {
                width,
                height,
                filter,
            } => {
                out.push(0x01);
                out.extend_from_slice(&width.to_le_bytes());
                out.extend_from_slice(&height.to_le_bytes());
                out.push(match filter {
                    ScaleFilter::Nearest => 0,
                    ScaleFilter::Bilinear => 1,
                    ScaleFilter::Box => 2,
                });
            }
            Transformation::Crop(r) => {
                out.push(0x02);
                for v in [r.x, r.y, r.w, r.h] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Transformation::Rotate90 => out.push(0x03),
            Transformation::Rotate180 => out.push(0x04),
            Transformation::Rotate270 => out.push(0x05),
            Transformation::FlipHorizontal => out.push(0x06),
            Transformation::FlipVertical => out.push(0x07),
            Transformation::Recompress { quality } => {
                out.push(0x08);
                out.push(quality);
            }
            Transformation::Filter(op) => {
                out.push(0x09);
                match op {
                    FilterOp::Gaussian { sigma } => {
                        out.push(0);
                        out.extend_from_slice(&sigma.to_bits().to_le_bytes());
                    }
                    FilterOp::Sharpen => out.push(1),
                    FilterOp::Box { side } => {
                        out.push(2);
                        out.extend_from_slice(&side.to_le_bytes());
                    }
                }
            }
            Transformation::Overlay { rect, color, alpha } => {
                out.push(0x0a);
                for v in [rect.x, rect.y, rect.w, rect.h] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&[color.r, color.g, color.b]);
                out.extend_from_slice(&alpha.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Applies the transformation directly on quantized coefficients — the
    /// lossless jpegtran-style path. Block-permuting transforms commute
    /// with per-block perturbation, which is why PuPPIeS receivers can
    /// recover exactly after the PSP runs them (§IV-C).
    ///
    /// # Errors
    /// Returns [`TransformError::NotCoeffDomain`] when the operation or
    /// geometry has no lossless coefficient-domain form (use
    /// [`Transformation::apply_to_rgb`] then).
    pub fn apply_to_coeff(&self, img: &CoeffImage) -> Result<CoeffImage> {
        let (w, h) = (img.width(), img.height());
        if !self.is_coeff_domain(w, h) {
            return Err(TransformError::NotCoeffDomain(format!(
                "{self:?} on {w}x{h}"
            )));
        }
        match *self {
            Transformation::Crop(r) => {
                if !Rect::new(0, 0, w, h).contains_rect(r) || r.is_empty() {
                    return Err(TransformError::OutOfBounds {
                        rect: r,
                        width: w,
                        height: h,
                    });
                }
                map_components(img, r.w, r.h, |c| {
                    let (bx0, by0) = (r.x / BLOCK_SIZE, r.y / BLOCK_SIZE);
                    let (bw, bh) = (r.w / BLOCK_SIZE, r.h / BLOCK_SIZE);
                    let mut blocks = Vec::with_capacity((bw * bh) as usize);
                    for by in 0..bh {
                        for bx in 0..bw {
                            blocks.push(*c.block(bx0 + bx, by0 + by));
                        }
                    }
                    blocks
                })
            }
            Transformation::Rotate90 => map_components_quant(img, h, w, transpose_quant, |c| {
                let (bw, bh) = (c.blocks_w(), c.blocks_h());
                let mut blocks = Vec::with_capacity((bw * bh) as usize);
                for nby in 0..bw {
                    for nbx in 0..bh {
                        blocks.push(rotate_block_90(c.block(nby, bh - 1 - nbx)));
                    }
                }
                blocks
            }),
            Transformation::Rotate180 => map_components(img, w, h, |c| {
                let (bw, bh) = (c.blocks_w(), c.blocks_h());
                let mut blocks = Vec::with_capacity((bw * bh) as usize);
                for by in 0..bh {
                    for bx in 0..bw {
                        blocks.push(rotate_block_180(c.block(bw - 1 - bx, bh - 1 - by)));
                    }
                }
                blocks
            }),
            Transformation::Rotate270 => map_components_quant(img, h, w, transpose_quant, |c| {
                let (bw, bh) = (c.blocks_w(), c.blocks_h());
                let mut blocks = Vec::with_capacity((bw * bh) as usize);
                for nby in 0..bw {
                    for nbx in 0..bh {
                        blocks.push(rotate_block_270(c.block(bw - 1 - nby, nbx)));
                    }
                }
                blocks
            }),
            Transformation::FlipHorizontal => map_components(img, w, h, |c| {
                let (bw, bh) = (c.blocks_w(), c.blocks_h());
                let mut blocks = Vec::with_capacity((bw * bh) as usize);
                for by in 0..bh {
                    for bx in 0..bw {
                        blocks.push(flip_block_h(c.block(bw - 1 - bx, by)));
                    }
                }
                blocks
            }),
            Transformation::FlipVertical => map_components(img, w, h, |c| {
                let (bw, bh) = (c.blocks_w(), c.blocks_h());
                let mut blocks = Vec::with_capacity((bw * bh) as usize);
                for by in 0..bh {
                    for bx in 0..bw {
                        blocks.push(flip_block_v(c.block(bx, bh - 1 - by)));
                    }
                }
                blocks
            }),
            Transformation::Recompress { quality } => {
                if quality == 0 || quality > 100 {
                    return Err(TransformError::InvalidParameter(format!(
                        "quality {quality} outside 1..=100"
                    )));
                }
                let mut out = img.clone();
                out.requantize(quality);
                Ok(out)
            }
            _ => unreachable!("is_coeff_domain gate rejects pixel-only ops"),
        }
    }
}

fn map_components(
    img: &CoeffImage,
    new_w: u32,
    new_h: u32,
    f: impl Fn(&Component) -> Vec<Block>,
) -> Result<CoeffImage> {
    map_components_quant(img, new_w, new_h, |q| q.clone(), f)
}

fn map_components_quant(
    img: &CoeffImage,
    new_w: u32,
    new_h: u32,
    qf: impl Fn(&puppies_jpeg::QuantTable) -> puppies_jpeg::QuantTable,
    f: impl Fn(&Component) -> Vec<Block>,
) -> Result<CoeffImage> {
    let comps = img
        .components()
        .iter()
        .map(|c| {
            Component::from_blocks(c.id(), new_w, new_h, qf(c.quant()), f(c))
                .map_err(|e| TransformError::InvalidParameter(e.to_string()))
        })
        .collect::<Result<Vec<_>>>()?;
    CoeffImage::from_components(new_w, new_h, comps)
        .map_err(|e| TransformError::InvalidParameter(e.to_string()))
}

/// Transposes a quantization table, required whenever the block content is
/// transposed (90°/270° rotation) so step sizes keep following their
/// frequencies — the same bookkeeping jpegtran performs.
fn transpose_quant(q: &puppies_jpeg::QuantTable) -> puppies_jpeg::QuantTable {
    let s = q.steps();
    let mut t = [0u16; 64];
    for r in 0..8 {
        for c in 0..8 {
            t[c * 8 + r] = s[r * 8 + c];
        }
    }
    puppies_jpeg::QuantTable::new(t)
}

/// Transposes an 8×8 coefficient block (the DCT commutes with spatial
/// transposition).
fn transpose_block(b: &Block) -> Block {
    let mut out = [0i32; 64];
    for r in 0..8 {
        for c in 0..8 {
            out[c * 8 + r] = b[r * 8 + c];
        }
    }
    out
}

/// Horizontal mirror in the coefficient domain: negate odd horizontal
/// frequencies. AC values live in `[-1023, 1023]`, which is closed under
/// negation, and DC (never negated) keeps its full range.
fn flip_block_h(b: &Block) -> Block {
    let mut out = *b;
    for r in 0..8 {
        for c in (1..8).step_by(2) {
            out[r * 8 + c] = -out[r * 8 + c];
        }
    }
    out
}

/// Vertical mirror in the coefficient domain: negate odd vertical
/// frequencies.
fn flip_block_v(b: &Block) -> Block {
    let mut out = *b;
    for r in (1..8).step_by(2) {
        for c in 0..8 {
            out[r * 8 + c] = -out[r * 8 + c];
        }
    }
    out
}

fn rotate_block_180(b: &Block) -> Block {
    flip_block_v(&flip_block_h(b))
}

fn rotate_block_90(b: &Block) -> Block {
    // 90° clockwise = transpose, then horizontal mirror.
    flip_block_h(&transpose_block(b))
}

fn rotate_block_270(b: &Block) -> Block {
    // 270° clockwise = transpose, then vertical mirror.
    flip_block_v(&transpose_block(b))
}

fn apply_filter_rgb(img: &RgbImage, op: FilterOp) -> Result<RgbImage> {
    let planes = resample::split_channels(img);
    let mut out = Vec::with_capacity(3);
    for p in &planes {
        out.push(apply_filter_plane(p, op)?);
    }
    let arr: [Plane; 3] = out
        .try_into()
        .expect("three channels in, three channels out");
    Ok(resample::merge_channels(&arr))
}

fn apply_filter_plane(plane: &Plane, op: FilterOp) -> Result<Plane> {
    match op {
        FilterOp::Gaussian { sigma } => {
            if sigma <= 0.0 || !sigma.is_finite() {
                return Err(TransformError::InvalidParameter(format!(
                    "gaussian sigma {sigma}"
                )));
            }
            Ok(gaussian_blur(plane, sigma))
        }
        FilterOp::Sharpen => Ok(convolve(plane, &Kernel::sharpen())),
        FilterOp::Box { side } => {
            if side == 0 || side % 2 == 0 {
                return Err(TransformError::InvalidParameter(format!(
                    "box side {side} must be odd"
                )));
            }
            Ok(convolve(plane, &Kernel::boxcar(side)))
        }
    }
}

/// Applies a pipeline of transformations in order (pixel domain).
///
/// # Errors
/// Fails on the first transformation that fails.
pub fn apply_pipeline_rgb(img: &RgbImage, pipeline: &[Transformation]) -> Result<RgbImage> {
    let mut cur = img.clone();
    for t in pipeline {
        cur = t.apply_to_rgb(&cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::metrics::{max_abs_diff_rgb, psnr_rgb};

    fn textured(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Rgb::new(
                ((x * 13 + y * 7) % 256) as u8,
                ((x * 5 + y * 11) % 256) as u8,
                ((x + y) % 256) as u8,
            )
        })
    }

    #[test]
    fn output_size_matches_apply() {
        let img = textured(64, 48);
        let cases = [
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Bilinear,
            },
            Transformation::Crop(Rect::new(8, 8, 16, 24)),
            Transformation::Rotate90,
            Transformation::Rotate180,
            Transformation::Rotate270,
            Transformation::FlipHorizontal,
            Transformation::Recompress { quality: 50 },
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.0 }),
        ];
        for t in cases {
            let want = t.output_size(64, 48).unwrap();
            let got = t.apply_to_rgb(&img).unwrap();
            assert_eq!((got.width(), got.height()), want, "{t:?}");
        }
    }

    #[test]
    fn crop_out_of_bounds_rejected() {
        let img = textured(32, 32);
        let t = Transformation::Crop(Rect::new(20, 20, 20, 20));
        assert!(t.apply_to_rgb(&img).is_err());
        assert!(t.output_size(32, 32).is_err());
    }

    #[test]
    fn coeff_domain_crop_matches_pixel_crop() {
        let img = textured(64, 64);
        let coeff = CoeffImage::from_rgb(&img, 85);
        let t = Transformation::Crop(Rect::new(16, 8, 32, 40));
        let via_coeff = t.apply_to_coeff(&coeff).unwrap().to_rgb();
        let via_pixels = coeff.to_rgb().crop(Rect::new(16, 8, 32, 40)).unwrap();
        assert_eq!(via_coeff, via_pixels);
    }

    #[test]
    fn coeff_domain_rotations_match_pixel_rotations() {
        let img = textured(64, 48);
        let coeff = CoeffImage::from_rgb(&img, 85);
        type Case = (Transformation, fn(&RgbImage) -> RgbImage);
        let cases: [Case; 5] = [
            (Transformation::Rotate90, resample::rotate90),
            (Transformation::Rotate180, resample::rotate180),
            (Transformation::Rotate270, resample::rotate270),
            (Transformation::FlipHorizontal, resample::flip_horizontal),
            (Transformation::FlipVertical, resample::flip_vertical),
        ];
        for (t, px) in cases {
            let via_coeff = t.apply_to_coeff(&coeff).unwrap().to_rgb();
            let via_pixels = px(&coeff.to_rgb());
            // Both end at the same IDCT-and-round; only ulp-level float
            // ordering may differ.
            assert!(
                max_abs_diff_rgb(&via_coeff, &via_pixels) <= 1,
                "{t:?}: PSNR {}",
                psnr_rgb(&via_coeff, &via_pixels)
            );
        }
    }

    #[test]
    fn coeff_rotation_roundtrip_is_exact() {
        let img = textured(64, 48);
        let coeff = CoeffImage::from_rgb(&img, 85);
        let r90 = Transformation::Rotate90.apply_to_coeff(&coeff).unwrap();
        let back = Transformation::Rotate270.apply_to_coeff(&r90).unwrap();
        assert_eq!(back, coeff);
        let r180 = Transformation::Rotate180.apply_to_coeff(&coeff).unwrap();
        let back = Transformation::Rotate180.apply_to_coeff(&r180).unwrap();
        assert_eq!(back, coeff);
        let fh = Transformation::FlipHorizontal
            .apply_to_coeff(&coeff)
            .unwrap();
        let back = Transformation::FlipHorizontal.apply_to_coeff(&fh).unwrap();
        assert_eq!(back, coeff);
    }

    #[test]
    fn unaligned_geometry_rejected_in_coeff_domain() {
        let img = textured(60, 44); // not multiples of 8
        let coeff = CoeffImage::from_rgb(&img, 85);
        assert!(matches!(
            Transformation::Rotate90.apply_to_coeff(&coeff),
            Err(TransformError::NotCoeffDomain(_))
        ));
        let img = textured(64, 64);
        let coeff = CoeffImage::from_rgb(&img, 85);
        assert!(matches!(
            Transformation::Crop(Rect::new(4, 0, 16, 16)).apply_to_coeff(&coeff),
            Err(TransformError::NotCoeffDomain(_))
        ));
    }

    #[test]
    fn recompress_reduces_size_keeps_dims() {
        let img = textured(64, 64);
        let coeff = CoeffImage::from_rgb(&img, 95);
        let rec = Transformation::Recompress { quality: 30 }
            .apply_to_coeff(&coeff)
            .unwrap();
        assert_eq!((rec.width(), rec.height()), (64, 64));
        let a = coeff
            .encode(&puppies_jpeg::EncodeOptions::default())
            .unwrap()
            .len();
        let b = rec
            .encode(&puppies_jpeg::EncodeOptions::default())
            .unwrap()
            .len();
        assert!(b < a, "recompressed {b} >= original {a}");
    }

    #[test]
    fn plane_path_matches_rgb_path_for_linear_ops() {
        let gray = textured(32, 32).to_gray();
        let plane = gray.to_plane();
        for t in [
            Transformation::Scale {
                width: 16,
                height: 16,
                filter: ScaleFilter::Bilinear,
            },
            Transformation::Rotate180,
            Transformation::FlipHorizontal,
            Transformation::Crop(Rect::new(4, 4, 16, 16)),
        ] {
            let via_plane = t.apply_to_plane(&plane).unwrap().to_gray();
            let via_rgb = t.apply_to_rgb(&gray.to_rgb()).unwrap().to_gray();
            for (a, b) in via_plane.pixels().iter().zip(via_rgb.pixels()) {
                assert!((*a as i32 - *b as i32).abs() <= 1, "{t:?}");
            }
        }
    }

    #[test]
    fn plane_rejects_non_linear_ops() {
        let plane = textured(16, 16).to_gray().to_plane();
        assert!(Transformation::Recompress { quality: 50 }
            .apply_to_plane(&plane)
            .is_err());
        assert!(Transformation::Overlay {
            rect: Rect::new(0, 0, 4, 4),
            color: Rgb::WHITE,
            alpha: 0.5,
        }
        .apply_to_plane(&plane)
        .is_err());
    }

    #[test]
    fn overlay_blends() {
        let img = textured(16, 16);
        let t = Transformation::Overlay {
            rect: Rect::new(0, 0, 8, 8),
            color: Rgb::WHITE,
            alpha: 1.0,
        };
        let out = t.apply_to_rgb(&img).unwrap();
        assert_eq!(out.get(0, 0), Rgb::WHITE);
        assert_eq!(out.get(12, 12), img.get(12, 12));
        let bad = Transformation::Overlay {
            rect: Rect::new(0, 0, 8, 8),
            color: Rgb::WHITE,
            alpha: 0.0,
        };
        assert!(bad.apply_to_rgb(&img).is_err());
    }

    #[test]
    fn pipeline_composes() {
        let img = textured(64, 64);
        let out = apply_pipeline_rgb(
            &img,
            &[
                Transformation::Crop(Rect::new(0, 0, 32, 32)),
                Transformation::Rotate90,
                Transformation::Scale {
                    width: 16,
                    height: 16,
                    filter: ScaleFilter::Box,
                },
            ],
        )
        .unwrap();
        assert_eq!((out.width(), out.height()), (16, 16));
    }

    #[test]
    fn scale_by_helper() {
        let t = Transformation::scale_by(100, 60, 1, 2).unwrap();
        assert_eq!(t.output_size(100, 60).unwrap(), (50, 30));
        assert!(Transformation::scale_by(1, 1, 1, 10).is_err());
    }

    #[test]
    fn canonical_bytes_is_injective_and_stable() {
        let variants = [
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Bilinear,
            },
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Nearest,
            },
            Transformation::Scale {
                width: 24,
                height: 32,
                filter: ScaleFilter::Bilinear,
            },
            Transformation::Crop(Rect::new(8, 8, 16, 24)),
            Transformation::Crop(Rect::new(8, 8, 24, 16)),
            Transformation::Rotate90,
            Transformation::Rotate180,
            Transformation::Rotate270,
            Transformation::FlipHorizontal,
            Transformation::FlipVertical,
            Transformation::Recompress { quality: 50 },
            Transformation::Recompress { quality: 51 },
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.0 }),
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.5 }),
            Transformation::Filter(FilterOp::Sharpen),
            Transformation::Filter(FilterOp::Box { side: 3 }),
            Transformation::Filter(FilterOp::Box { side: 5 }),
            Transformation::Overlay {
                rect: Rect::new(0, 0, 8, 8),
                color: Rgb::WHITE,
                alpha: 0.5,
            },
            Transformation::Overlay {
                rect: Rect::new(0, 0, 8, 8),
                color: Rgb::WHITE,
                alpha: 0.25,
            },
        ];
        let encodings: Vec<Vec<u8>> = variants.iter().map(|t| t.canonical_bytes()).collect();
        for (i, a) in encodings.iter().enumerate() {
            for (j, b) in encodings.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "{:?} vs {:?}", variants[i], variants[j]);
                }
            }
        }
        // Stable across calls and across clones.
        for t in &variants {
            assert_eq!(t.canonical_bytes(), t.clone().canonical_bytes());
        }
    }

    #[test]
    fn block_helpers_are_involutions() {
        let mut b = [0i32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as i32 * 31 % 200) - 100;
        }
        assert_eq!(flip_block_h(&flip_block_h(&b)), b);
        assert_eq!(flip_block_v(&flip_block_v(&b)), b);
        assert_eq!(transpose_block(&transpose_block(&b)), b);
        assert_eq!(rotate_block_180(&rotate_block_180(&b)), b);
        assert_eq!(rotate_block_270(&rotate_block_90(&b)), b);
    }
}
