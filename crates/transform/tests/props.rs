//! Property-based invariants of the transformation layer: the lossless
//! coefficient-domain paths must agree with the pixel-domain reference
//! implementations on arbitrary content.

use proptest::prelude::*;
use puppies_image::metrics::max_abs_diff_rgb;
use puppies_image::resample;
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_transform::Transformation;

fn arb_aligned_image() -> impl Strategy<Value = RgbImage> {
    // Dimensions multiples of 8 so every coefficient-domain op applies.
    (1u32..6, 1u32..6, any::<u32>()).prop_map(|(bw, bh, seed)| {
        let (w, h) = (bw * 8, bh * 8);
        RgbImage::from_fn(w, h, |x, y| {
            let v = x
                .wrapping_mul(seed | 1)
                .wrapping_add(y.wrapping_mul(seed.rotate_left(11) | 3));
            Rgb::new(
                (v % 256) as u8,
                ((v >> 6) % 256) as u8,
                ((v >> 12) % 256) as u8,
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coeff_rotations_match_pixel_rotations(img in arb_aligned_image(), q in 30u8..=95) {
        let coeff = CoeffImage::from_rgb(&img, q);
        let decoded = coeff.to_rgb();
        type Case = (Transformation, fn(&RgbImage) -> RgbImage);
        let cases: [Case; 5] = [
            (Transformation::Rotate90, resample::rotate90),
            (Transformation::Rotate180, resample::rotate180),
            (Transformation::Rotate270, resample::rotate270),
            (Transformation::FlipHorizontal, resample::flip_horizontal),
            (Transformation::FlipVertical, resample::flip_vertical),
        ];
        for (t, px) in cases {
            let via_coeff = t.apply_to_coeff(&coeff).unwrap().to_rgb();
            let via_pixels = px(&decoded);
            // The f32 AAN IDCT of a transposed/flipped block is not the
            // exact transpose/flip of the block's IDCT, so each YCbCr
            // channel can land one quantization code apart on tie values;
            // BT.601 mixing amplifies a worst-case co-occurrence to a few
            // RGB codes.
            prop_assert!(
                max_abs_diff_rgb(&via_coeff, &via_pixels) <= 3,
                "{:?} disagrees", t
            );
        }
    }

    #[test]
    fn coeff_rotation_inverses_are_exact(img in arb_aligned_image(), q in 30u8..=95) {
        let coeff = CoeffImage::from_rgb(&img, q);
        let pairs = [
            (Transformation::Rotate90, Transformation::Rotate270),
            (Transformation::Rotate270, Transformation::Rotate90),
            (Transformation::Rotate180, Transformation::Rotate180),
            (Transformation::FlipHorizontal, Transformation::FlipHorizontal),
            (Transformation::FlipVertical, Transformation::FlipVertical),
        ];
        for (t, inv) in pairs {
            let back = inv.apply_to_coeff(&t.apply_to_coeff(&coeff).unwrap()).unwrap();
            prop_assert_eq!(&back, &coeff, "{:?} then {:?}", t, inv);
        }
    }

    #[test]
    fn aligned_coeff_crop_matches_pixel_crop(img in arb_aligned_image(), q in 30u8..=95, bx in 0u32..4, by in 0u32..4) {
        let coeff = CoeffImage::from_rgb(&img, q);
        let bw = img.width() / 8;
        let bh = img.height() / 8;
        let x = (bx % bw) * 8;
        let y = (by % bh) * 8;
        let w = img.width() - x;
        let h = img.height() - y;
        let r = Rect::new(x, y, w, h);
        let t = Transformation::Crop(r);
        let via_coeff = t.apply_to_coeff(&coeff).unwrap().to_rgb();
        let via_pixels = coeff.to_rgb().crop(r).unwrap();
        prop_assert_eq!(via_coeff, via_pixels);
    }

    #[test]
    fn output_size_contract_holds(img in arb_aligned_image()) {
        let w = img.width();
        let h = img.height();
        for t in [
            Transformation::Rotate90,
            Transformation::Rotate180,
            Transformation::FlipHorizontal,
            Transformation::Recompress { quality: 40 },
        ] {
            let want = t.output_size(w, h).unwrap();
            let got = t.apply_to_rgb(&img).unwrap();
            prop_assert_eq!((got.width(), got.height()), want);
        }
    }

    #[test]
    fn recompress_is_idempotent_at_same_quality(img in arb_aligned_image(), q in 20u8..=90) {
        // Requantizing twice at the same quality must be a no-op the
        // second time (quantized values are already step multiples).
        let coeff = CoeffImage::from_rgb(&img, 95);
        let t = Transformation::Recompress { quality: q };
        let once = t.apply_to_coeff(&coeff).unwrap();
        let twice = t.apply_to_coeff(&once).unwrap();
        prop_assert_eq!(once, twice);
    }
}
