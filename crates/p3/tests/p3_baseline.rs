//! Integration tests for the P3 baseline (Ra et al.): split/reconstruct
//! exactness, encode round-trips of both parts, the privacy property of
//! the public part, and the documented Fig. 4 loss of pixel-domain
//! recombination after a PSP transformation.

use puppies_image::metrics::psnr_rgb;
use puppies_image::{Rgb, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_p3::{recombine_pixels, reconstruct, split, P3Split};
use puppies_transform::Transformation;

/// Textured content: a gradient with a strong 2-px checker on top, so the
/// AC spectrum actually exceeds P3 thresholds (a smooth ramp would make
/// every split trivially near-lossless and the tests vacuous).
fn photo() -> RgbImage {
    RgbImage::from_fn(64, 48, |x, y| {
        let checker = if (x / 2 + y / 2) % 2 == 0 { 70 } else { 0 };
        Rgb::new(
            (40 + checker + (x * 5 + y * 3) % 110) as u8,
            (40 + checker + (x * 3 + y * 5) % 110) as u8,
            (40 + checker + (x * 2 + y * 2) % 110) as u8,
        )
    })
}

#[test]
fn split_reconstruct_is_coefficient_exact() {
    let coeff = CoeffImage::from_rgb(&photo(), 75);
    for threshold in [1, 5, 20, 100] {
        let s = split(&coeff, threshold);
        let back = reconstruct(&s.public, &s.private).unwrap();
        assert_eq!(back, coeff, "threshold {threshold} must round-trip exactly");
    }
}

#[test]
fn both_parts_survive_the_codec() {
    // The PSP stores the public part as a JPEG and the trusted party
    // stores the private part: both must entropy-code and decode back to
    // the same coefficients, and reconstruction from the decoded parts
    // must still be exact.
    let coeff = CoeffImage::from_rgb(&photo(), 75);
    let s = P3Split::of(&coeff);
    let opts = EncodeOptions::default();
    let pub_back = CoeffImage::decode(&s.public.encode(&opts).unwrap()).unwrap();
    let priv_back = CoeffImage::decode(&s.private.encode(&opts).unwrap()).unwrap();
    let back = reconstruct(&pub_back, &priv_back).unwrap();
    assert_eq!(back, coeff, "codec round-trip must preserve the split");
}

#[test]
fn public_part_hides_the_image() {
    // The public part carries no DC and clipped AC: removing every
    // block's mean and the strong frequencies must push it far from the
    // original (that is P3's privacy claim).
    let coeff = CoeffImage::from_rgb(&photo(), 75);
    let s = split(&coeff, 1);
    let public_view = s.public.to_rgb();
    let original = coeff.to_rgb();
    let psnr = psnr_rgb(&public_view, &original);
    assert!(
        psnr < 18.0,
        "public part too close to the original: {psnr:.1} dB (threshold 1)"
    );
}

#[test]
fn smaller_threshold_moves_more_information_private() {
    let coeff = CoeffImage::from_rgb(&photo(), 75);
    let opts = EncodeOptions::default();
    let tight = split(&coeff, 2);
    let loose = split(&coeff, 50);
    assert!(
        tight.private_bytes(&opts).unwrap() > loose.private_bytes(&opts).unwrap(),
        "lower threshold must grow the private part"
    );
}

#[test]
fn pixel_recombination_after_transform_loses_detail() {
    // The PuPPIeS motivation (Fig. 4): if the PSP scales only the public
    // part, P3 can only recombine in the pixel domain, which is lossy —
    // while coefficient-domain reconstruction (no transform) is exact.
    let img = photo();
    let coeff = CoeffImage::from_rgb(&img, 75);
    // Threshold 2 pushes most AC energy into the private part, the regime
    // where the sign loss under interpolation is visible.
    let s = split(&coeff, 2);
    let t = Transformation::Scale {
        width: 32,
        height: 24,
        filter: puppies_transform::ScaleFilter::Bilinear,
    };
    let pub_scaled = t.apply_to_rgb(&s.public.to_rgb()).unwrap();
    let priv_scaled = t.apply_to_rgb(&s.private.to_rgb()).unwrap();
    let recombined = recombine_pixels(&pub_scaled, &priv_scaled).unwrap();
    let reference = t.apply_to_rgb(&coeff.to_rgb()).unwrap();
    let psnr = psnr_rgb(&recombined, &reference);
    // Lossy but not garbage: the Fig. 4 regime. Meanwhile the untransformed
    // coefficient path (tested above) is exact — that asymmetry is the
    // PuPPIeS motivation.
    assert!(
        (8.0..35.0).contains(&psnr),
        "pixel recombination psnr {psnr:.1} dB outside the documented lossy regime"
    );
    // Mismatched dimensions are rejected cleanly.
    assert!(recombine_pixels(&pub_scaled, &s.private.to_rgb()).is_err());
}

#[test]
fn reconstruct_rejects_mismatched_parts() {
    let a = CoeffImage::from_rgb(&photo(), 75);
    let small = CoeffImage::from_rgb(
        &RgbImage::from_fn(32, 32, |x, y| Rgb::new(x as u8, y as u8, 0)),
        75,
    );
    let s = split(&a, 20);
    assert!(reconstruct(&s.public, &small).is_err());
}
