//! The P3 baseline: *P3: Toward Privacy-Preserving Photo Sharing* (Ra,
//! Govindan, Ortega — NSDI 2013), reimplemented as the comparison scheme
//! the PuPPIeS paper evaluates against (§II-C.4, §V-D, Figs. 4, 11, 18–22).
//!
//! P3 splits a JPEG into two coefficient images around a threshold `T`
//! (the authors recommend 20):
//!
//! - the **public part** keeps every AC coefficient clipped into
//!   `[-T, T]` and zeroes all DC coefficients; it is stored on the PSP;
//! - the **private part** keeps the DC coefficients and, for clipped
//!   coefficients, the *magnitude* of the remainder `|v| − T`. The sign is
//!   carried by the public part's clipped value `±T`, so reconstruction is
//!   `v = pub + sign(pub) · priv` where `|pub| = T`.
//!
//! P3 operates on whole images only (no ROIs), and the sign-in-public
//! encoding is what breaks under PSP-side transformations: once the public
//! image has been resampled in the pixel domain, the per-coefficient
//! `±T` markers are gone, the receiver can no longer tell which
//! compensations were negative, and naive pixel recombination adds every
//! remainder positively — the PuPPIeS paper's "sign information of DCT
//! coefficients is lost after scaling" and the visible detail loss of
//! Fig. 4(b). Both behaviours are reproduced here faithfully.

use puppies_image::{Plane, RgbImage};
use puppies_jpeg::{CoeffImage, Component, EncodeOptions, JpegError};
use std::fmt;

/// The threshold the P3 authors recommend and the PuPPIeS paper uses.
pub const DEFAULT_THRESHOLD: i32 = 20;

/// Errors produced by P3 operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum P3Error {
    /// Parts disagree in geometry and cannot be recombined.
    Mismatch(String),
    /// Underlying JPEG failure.
    Jpeg(JpegError),
}

impl fmt::Display for P3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P3Error::Mismatch(m) => write!(f, "p3 part mismatch: {m}"),
            P3Error::Jpeg(e) => write!(f, "p3 jpeg error: {e}"),
        }
    }
}

impl std::error::Error for P3Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            P3Error::Jpeg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JpegError> for P3Error {
    fn from(e: JpegError) -> Self {
        P3Error::Jpeg(e)
    }
}

/// Convenient result alias for P3 operations.
pub type Result<T> = std::result::Result<T, P3Error>;

/// A P3 split of one image.
#[derive(Debug, Clone)]
pub struct P3Split {
    /// Threshold used.
    pub threshold: i32,
    /// Public part (stored on the PSP).
    pub public: CoeffImage,
    /// Private part (stored with a trusted party).
    pub private: CoeffImage,
}

/// Splits a coefficient image at `threshold` (whole image — P3 has no
/// ROI support).
///
/// # Panics
/// Panics if `threshold` is not positive.
pub fn split(coeff: &CoeffImage, threshold: i32) -> P3Split {
    assert!(threshold > 0, "threshold must be positive");
    let mut pub_comps = Vec::with_capacity(coeff.components().len());
    let mut priv_comps = Vec::with_capacity(coeff.components().len());
    for c in coeff.components() {
        let mut pub_blocks = Vec::with_capacity(c.blocks().len());
        let mut priv_blocks = Vec::with_capacity(c.blocks().len());
        for b in c.blocks() {
            let mut pb = [0i32; 64];
            let mut vb = [0i32; 64];
            // DC: removed from the public part entirely.
            vb[0] = b[0];
            for i in 1..64 {
                let v = b[i];
                if v.abs() <= threshold {
                    pb[i] = v;
                } else {
                    // Sign travels with the public ±T; the private side
                    // stores only the magnitude of the excess.
                    pb[i] = threshold * v.signum();
                    vb[i] = v.abs() - threshold;
                }
            }
            pub_blocks.push(pb);
            priv_blocks.push(vb);
        }
        pub_comps.push(
            Component::from_blocks(c.id(), c.width(), c.height(), c.quant().clone(), pub_blocks)
                .expect("geometry preserved"),
        );
        priv_comps.push(
            Component::from_blocks(
                c.id(),
                c.width(),
                c.height(),
                c.quant().clone(),
                priv_blocks,
            )
            .expect("geometry preserved"),
        );
    }
    P3Split {
        threshold,
        public: CoeffImage::from_components(coeff.width(), coeff.height(), pub_comps)
            .expect("geometry preserved"),
        private: CoeffImage::from_components(coeff.width(), coeff.height(), priv_comps)
            .expect("geometry preserved"),
    }
}

impl P3Split {
    /// Splits with the recommended threshold of 20.
    pub fn of(coeff: &CoeffImage) -> P3Split {
        split(coeff, DEFAULT_THRESHOLD)
    }

    /// Entropy-coded size of the public part in bytes.
    ///
    /// # Errors
    /// Propagates encoding failures.
    pub fn public_bytes(&self, opts: &EncodeOptions) -> Result<usize> {
        Ok(self.public.encode(opts)?.len())
    }

    /// Entropy-coded size of the private part in bytes — the quantity
    /// Fig. 11 compares against PuPPIeS' 88-byte matrices.
    ///
    /// # Errors
    /// Propagates encoding failures.
    pub fn private_bytes(&self, opts: &EncodeOptions) -> Result<usize> {
        Ok(self.private.encode(opts)?.len())
    }
}

/// Exact coefficient-domain reconstruction (no PSP transformation).
///
/// # Errors
/// Fails if the parts disagree in geometry.
pub fn reconstruct(public: &CoeffImage, private: &CoeffImage) -> Result<CoeffImage> {
    if public.width() != private.width()
        || public.height() != private.height()
        || public.components().len() != private.components().len()
    {
        return Err(P3Error::Mismatch(format!(
            "{}x{} vs {}x{}",
            public.width(),
            public.height(),
            private.width(),
            private.height()
        )));
    }
    let mut comps = Vec::with_capacity(public.components().len());
    for (pc, vc) in public.components().iter().zip(private.components()) {
        if pc.blocks().len() != vc.blocks().len() {
            return Err(P3Error::Mismatch("block counts differ".into()));
        }
        let blocks: Vec<[i32; 64]> = pc
            .blocks()
            .iter()
            .zip(vc.blocks())
            .map(|(pb, vb)| {
                let mut out = [0i32; 64];
                out[0] = pb[0] + vb[0];
                for i in 1..64 {
                    // The compensation magnitude reattaches the sign of the
                    // clipped public value.
                    out[i] = pb[i] + pb[i].signum() * vb[i];
                }
                out
            })
            .collect();
        comps.push(
            Component::from_blocks(pc.id(), pc.width(), pc.height(), pc.quant().clone(), blocks)
                .map_err(P3Error::from)?,
        );
    }
    CoeffImage::from_components(public.width(), public.height(), comps).map_err(P3Error::from)
}

/// The pixel-domain recombination P3 is stuck with after the PSP
/// transforms the *public* image with a standard library: the receiver
/// applies the same transformation to the decoded private image and adds
/// the two pixel rasters (undoing the duplicated +128 level shift). The
/// per-part clamping and rounding that happen before the transformation
/// are unrecoverable — this is the Fig. 4 detail loss.
pub fn recombine_pixels(public: &RgbImage, private: &RgbImage) -> Result<RgbImage> {
    if public.width() != private.width() || public.height() != private.height() {
        return Err(P3Error::Mismatch(format!(
            "{}x{} vs {}x{}",
            public.width(),
            public.height(),
            private.width(),
            private.height()
        )));
    }
    let pp = public.to_ycbcr_planes();
    let vp = private.to_ycbcr_planes();
    let planes: [Plane; 3] = [
        add_planes(&pp[0], &vp[0]),
        add_planes(&pp[1], &vp[1]),
        add_planes(&pp[2], &vp[2]),
    ];
    Ok(RgbImage::from_ycbcr_planes(&planes))
}

fn add_planes(a: &Plane, b: &Plane) -> Plane {
    Plane::from_fn(a.width(), a.height(), |x, y| {
        a.get(x, y) + b.get(x, y) - 128.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::metrics::psnr_rgb;
    use puppies_image::{Rgb, RgbImage};

    fn test_image() -> RgbImage {
        RgbImage::from_fn(96, 64, |x, y| {
            Rgb::new(
                (60 + (x * 5 + y * 2) % 130) as u8,
                (50 + (x * 2 + y * 4) % 140) as u8,
                (70 + (x + y * 3) % 120) as u8,
            )
        })
    }

    #[test]
    fn split_reconstruct_is_exact() {
        let coeff = CoeffImage::from_rgb(&test_image(), 80);
        let s = P3Split::of(&coeff);
        let back = reconstruct(&s.public, &s.private).unwrap();
        assert_eq!(back, coeff);
    }

    #[test]
    fn public_part_obeys_threshold() {
        let coeff = CoeffImage::from_rgb(&test_image(), 80);
        let s = split(&coeff, 20);
        for c in s.public.components() {
            for b in c.blocks() {
                assert_eq!(b[0], 0, "public DC must be removed");
                for &v in &b[1..] {
                    assert!(v.abs() <= 20, "public AC {v} above threshold");
                }
            }
        }
    }

    #[test]
    fn private_part_is_sparse_for_small_threshold_violations() {
        let coeff = CoeffImage::from_rgb(&test_image(), 80);
        let s = split(&coeff, 20);
        // Only coefficients with |v| > 20 (plus DC) are non-zero privately.
        for (pc, vc) in s.public.components().iter().zip(s.private.components()) {
            for (pb, vb) in pc.blocks().iter().zip(vc.blocks()) {
                for i in 1..64 {
                    if vb[i] != 0 {
                        assert_eq!(pb[i].abs(), 20, "compensation without clipping");
                        assert!(vb[i] > 0, "private compensations are magnitudes");
                    }
                }
            }
        }
    }

    #[test]
    fn public_part_hides_content() {
        let img = test_image();
        let coeff = CoeffImage::from_rgb(&img, 80);
        let s = P3Split::of(&coeff);
        let psnr = psnr_rgb(&coeff.to_rgb(), &s.public.to_rgb());
        assert!(psnr < 20.0, "public part too similar: {psnr} dB");
    }

    #[test]
    fn larger_threshold_moves_bytes_to_public() {
        let coeff = CoeffImage::from_rgb(&test_image(), 80);
        let opts = EncodeOptions::default();
        let t5 = split(&coeff, 5);
        let t40 = split(&coeff, 40);
        assert!(
            t40.public_bytes(&opts).unwrap() >= t5.public_bytes(&opts).unwrap(),
            "public part should grow with threshold"
        );
        assert!(
            t40.private_bytes(&opts).unwrap() <= t5.private_bytes(&opts).unwrap(),
            "private part should shrink with threshold"
        );
    }

    #[test]
    fn pixel_recombination_without_transform_is_close_but_lossy() {
        // Even without a PSP transformation, going through per-part pixel
        // rendering costs some fidelity (clamping of the private render).
        let img = test_image();
        let coeff = CoeffImage::from_rgb(&img, 80);
        let s = P3Split::of(&coeff);
        let rec = recombine_pixels(&s.public.to_rgb(), &s.private.to_rgb()).unwrap();
        let reference = coeff.to_rgb();
        let psnr = psnr_rgb(&rec, &reference);
        assert!(psnr > 24.0, "recombination unusable: {psnr} dB");
        assert!(psnr < f64::INFINITY, "pixel path cannot be exact");
    }

    #[test]
    fn scaling_parts_separately_loses_detail() {
        // The Fig. 4 phenomenon: scale public and private parts as pixel
        // images, recombine, compare against scaling the original. Needs
        // fine detail (strong AC coefficients) for the per-part clamping to
        // bite — the paper's example is the texture on book spines.
        use puppies_image::resample::{scale_rgb, Filter};
        // Coarse high-contrast structure: stripe edges cross 8x8 blocks,
        // producing low-frequency AC coefficients far above the threshold,
        // so the private part carries large sign-bearing compensations.
        let img = RgbImage::from_fn(96, 64, |x, y| {
            let stripe = ((x + 3) / 12 + (y + 5) / 12) % 2 == 0;
            let diag = (x as i32 - y as i32).rem_euclid(31) < 9;
            if stripe ^ diag {
                Rgb::new(250, 248, 240)
            } else {
                Rgb::new(12, 16, 28)
            }
        });
        let coeff = CoeffImage::from_rgb(&img, 80);
        let s = P3Split::of(&coeff);
        let spub = scale_rgb(&s.public.to_rgb(), 48, 32, Filter::Bilinear);
        let spriv = scale_rgb(&s.private.to_rgb(), 48, 32, Filter::Bilinear);
        let rec = recombine_pixels(&spub, &spriv).unwrap();
        let reference = scale_rgb(&coeff.to_rgb(), 48, 32, Filter::Bilinear);
        let psnr = psnr_rgb(&rec, &reference);
        // Dramatically degraded: the sign-less compensations corrupt every
        // strong negative coefficient (Fig. 4(b)'s artifacts).
        assert!(psnr < 25.0, "P3 scaling should lose detail, got {psnr} dB");
    }

    #[test]
    fn mismatched_parts_rejected() {
        let a = CoeffImage::from_rgb(&test_image(), 80);
        let small = CoeffImage::from_rgb(&RgbImage::filled(32, 32, Rgb::new(1, 2, 3)), 80);
        assert!(reconstruct(&a, &small).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let coeff = CoeffImage::from_rgb(&test_image(), 80);
        let _ = split(&coeff, 0);
    }
}
