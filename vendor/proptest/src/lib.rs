//! Minimal offline stand-in for `proptest`: the API subset this
//! workspace uses, backed by plain random sampling.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports the sampled inputs and the
//!   RNG seed; rerun with `PROPTEST_SEED=<seed>` to reproduce exactly.
//! - Strategies are samplers (`fn sample(&self, rng)`), not lazy value
//!   trees, so only the composition operators the tests use exist:
//!   ranges, tuples, `prop_map`, `Just`, `any`, and `collection::{vec,
//!   hash_set}`.
//! - `PROPTEST_CASES=<n>` overrides the per-test case count.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; sample a fresh case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Derives a strategy producing `f(value)`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`prop_oneof!`](crate::prop_oneof): picks one of several
/// strategies uniformly, then samples it.
pub struct Union<T: fmt::Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + fmt::Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types usable with [`any`], mirroring proptest's `Arbitrary`.
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_standard!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, f32, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: a strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Strategies for containers of strategy-generated elements.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Element-count specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>` targeting a size in `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicates are resampled; cap attempts so tiny domains
            // cannot loop forever (the set may come out under target).
            let mut attempts = 0;
            while out.len() < target && attempts < 100 + target * 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The sampling loop behind the [`proptest!`](crate::proptest) macro.

    use super::{ProptestConfig, Strategy, TestCaseError};
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn starting_seed() -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => rand::thread_rng().next_u64(),
        }
    }

    fn case_count(config: &ProptestConfig) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {s:?}")),
            Err(_) => config.cases,
        }
    }

    /// Samples `strategy` and runs `case` until `config.cases` cases
    /// pass. Panics (failing the `#[test]`) on the first `Fail`.
    pub fn run<S, F>(config: ProptestConfig, strategy: S, case: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = starting_seed();
        let mut rng = StdRng::seed_from_u64(seed);
        let cases = case_count(&config);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = u64::from(cases) * 20 + 1000;
        while passed < cases {
            let value = strategy.sample(&mut rng);
            let described = format!("{value:?}");
            match case(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest: too many rejected cases ({rejected}) \
                             after {passed} passes (seed {seed})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed after {passed} passes \
                         (rerun with PROPTEST_SEED={seed}):\n  \
                         input: {described}\n  {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    pub use crate::{Arbitrary, TestCaseError, Union};
    // Matches real proptest's prelude: `prop::collection::vec(...)` etc.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(config, strategy, |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        use crate::test_runner::run;
        run(
            ProptestConfig::with_cases(64),
            (1u8..=10, 0i32..5),
            |(a, b)| {
                assert!((1..=10).contains(&a));
                assert!((0..5).contains(&b));
                Ok(())
            },
        );
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        use crate::test_runner::run;
        let strat = (crate::collection::vec(0u8..4, 2..6),);
        run(ProptestConfig::with_cases(64), strat, |(v,)| {
            assert!((2..6).contains(&v.len()));
            Ok(())
        });
    }

    #[test]
    fn hash_set_strategy_yields_unique_elements() {
        use crate::test_runner::run;
        let strat = (crate::collection::hash_set(0u32..1000, 3..8),);
        run(ProptestConfig::with_cases(32), strat, |(s,)| {
            assert!(s.len() < 8);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_args(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, a + 1);
        }

        #[test]
        fn macro_supports_prop_map_and_assume(
            pair in (0u8..8, 0u8..8).prop_map(|(x, y)| (x, y)),
        ) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_seed() {
        use crate::test_runner::run;
        run(ProptestConfig::with_cases(16), (0u8..4,), |(v,)| {
            crate::prop_assert!(v < 2, "v was {}", v);
            Ok(())
        });
    }
}
