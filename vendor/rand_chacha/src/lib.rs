//! Minimal offline stand-in for `rand_chacha`: real ChaCha keystream
//! generators (8 and 20 rounds) implementing the vendored `rand` traits.
//!
//! The block function is the genuine ChaCha quarter-round construction
//! (RFC 8439 layout with a 64-bit counter), so streams have full
//! cryptographic-PRG structure; only the word-to-output ordering is
//! guaranteed to match *this* crate, not upstream `rand_chacha`. Every
//! consumer in the workspace relies solely on same-seed determinism.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream generator with `ROUNDS` rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key words 4..12, counter words 12..14, nonce words 14..16.
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    cursor: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        ChaChaRng {
            state,
            buffer: [0u32; 16],
            cursor: 16,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// ChaCha with 8 rounds (fast; used for synthetic datasets).
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the key-derivation grade generator).
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha20Rng::from_seed([7u8; 32]);
        let mut b = ChaCha20Rng::from_seed([7u8; 32]);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_separate_streams() {
        let mut a = ChaCha20Rng::from_seed([1u8; 32]);
        let mut b = ChaCha20Rng::from_seed([2u8; 32]);
        let matches = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(matches < 4, "{matches} matching words");
    }

    #[test]
    fn counter_advances_across_blocks() {
        // More than one 16-word block must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn known_quarter_round_vector() {
        // RFC 8439 §2.1.1 test vector.
        let mut st = [0u32; 16];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }

    #[test]
    fn gen_range_works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let v: u8 = rng.gen_range(b'A'..=b'Z');
            assert!(v.is_ascii_uppercase());
        }
    }
}
