//! Minimal offline stand-in for `criterion`: the API subset the bench
//! crate uses, measuring wall-clock time with `std::time::Instant`.
//!
//! Differences from the real crate, by design:
//! - No statistical analysis, plots, or saved baselines — each benchmark
//!   prints `name  time: [min mean max]` over `sample_size` samples.
//! - `cargo bench -- --test` runs every benchmark body exactly once
//!   (smoke mode), which is what CI's bench-smoke job relies on.
//! - Any other positional CLI argument is a substring filter on the
//!   full `group/function` benchmark name.

use std::time::{Duration, Instant};

/// Re-export point for preventing dead-code elimination in bench bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterised benchmark: rendered as `function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean nanoseconds per iteration for each collected sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `payload`, storing per-iteration samples. In `--test` mode
    /// the payload runs exactly once and nothing is measured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        if self.test_mode {
            black_box(payload());
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 5ms so
        // Instant overhead is amortised away.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(payload());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 24 {
                self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
                break;
            }
            batch = batch.saturating_mul(2);
        }
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(payload());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver; one per bench binary, built by
/// [`criterion_main!`] from CLI arguments.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filters: Vec::new(),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Builds a driver from `cargo bench` CLI arguments: `--test`
    /// enables smoke mode, other non-flag arguments become filters.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo/harness conventions may pass; ignored.
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                other if other.starts_with("--") => {}
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    fn run_one(&self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.selected(name) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named family of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        self.criterion.run_one(&full, samples, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        self.criterion.run_one(&full, samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group. (No analysis to flush in this stand-in.)
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_payload_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            samples: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn measurement_collects_sample_size_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            samples: Vec::new(),
        };
        b.iter(|| black_box(2u64.wrapping_mul(3)));
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["dct".into()],
            default_sample_size: 10,
        };
        let mut ran = Vec::new();
        c.bench_function("dct_forward", |b| b.iter(|| ran.push("dct")));
        assert_eq!(ran, vec!["dct"]);
        let mut ran2 = false;
        c.bench_function("huffman_encode", |b| b.iter(|| ran2 = true));
        assert!(!ran2);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        let id = BenchmarkId::new("encode", 4);
        assert_eq!(id.to_string(), "encode/4");
    }
}
