//! Minimal offline stand-in for `crossbeam`: the API subset this
//! workspace uses — a clonable MPMC channel and scoped threads.
//!
//! `channel::unbounded` is a `Mutex<VecDeque>` + `Condvar` queue.  It is
//! not lock-free like the real crate, but it has the same semantics:
//! any number of senders and receivers, FIFO per queue, `recv` blocks
//! until a message arrives or every sender is dropped.
//! `thread::scope` wraps `std::thread::scope` behind crossbeam's
//! `Result`-returning, `|_| ...`-closure signature.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    ///
    /// The real crate also reports disconnection on send; callers here
    /// only ever `unwrap`/ignore it, so the payload is returned as-is.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender has been dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of an unbounded channel. Clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.items.push_back(item);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            if let Some(item) = inner.items.pop_front() {
                Ok(item)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap().items.is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Iterate until the channel is empty *and* disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's calling convention: the spawn
    //! closure takes a `&Scope` argument (ignored here) and `scope`
    //! returns a `Result` that is `Err` when any child panicked.

    use std::any::Any;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle; joins all spawned threads before
    /// returning. `Err` carries the payload of the first panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_disconnect_unblocks_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn channel_mpmc_across_threads() {
        let (tx, rx) = channel::unbounded();
        let total: usize = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().sum::<usize>())
                })
                .collect();
            drop(rx);
            for i in 1..=100usize {
                tx.send(i).unwrap();
            }
            drop(tx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 5050);
    }

    #[test]
    fn scope_joins_and_returns() {
        let mut acc = 0u32;
        let out = thread::scope(|s| {
            let h = s.spawn(|_| 21u32);
            acc += h.join().unwrap();
            acc * 2
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn scope_reports_child_panic() {
        let res = thread::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(res.is_err());
    }
}
