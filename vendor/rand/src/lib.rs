//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network and no registry cache, so the
//! workspace vendors the exact API subset it consumes: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `fill`), [`rngs::StdRng`] and [`thread_rng`]. Streams are
//! deterministic for a given seed but are *not* bit-compatible with the
//! real `rand` crate — every consumer in this workspace only relies on
//! self-consistency (same seed ⇒ same stream), never on upstream
//! vectors.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds other generators and backs `seed_from_u64`.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`] (the role of `rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[allow(clippy::unnecessary_cast)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
    i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
    usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types a uniform range can be sampled over (the role of
/// `rand`'s `SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + v) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                Self::sample_range(rng, low, high.max(low + <$t>::EPSILON))
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience extension over [`RngCore`] mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++-based; *not* stream-compatible with upstream
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // An all-zero state is a fixed point of xoshiro; remix it.
            if s.iter().all(|&w| w == 0) {
                let mut sm = SplitMix64::new(0x005E_ED0F_5EED);
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

/// A lazily seeded per-thread generator (OS-entropy grade is not needed
/// by this workspace's tools; seeding mixes the thread id, a process
/// counter and the wall clock).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x1234_5678);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let tid = {
        // Hash the opaque ThreadId through the std hasher.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    rngs::StdRng::seed_from_u64(nanos ^ count.rotate_left(32) ^ tid)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
            let u: usize = rng.gen_range(1..9);
            assert!((1..9).contains(&u));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut arr = [0u8; 32];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_remixed() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
