//! Minimal offline stand-in for `parking_lot`: lock types with the
//! poison-free API (`lock()`/`read()`/`write()` return guards directly)
//! implemented over `std::sync`. Poisoning is converted to a panic
//! propagation, matching parking_lot's behaviour of not poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
            assert!(l.try_write().is_none());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn locks_survive_inner_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
