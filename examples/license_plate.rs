//! Protecting sensitive text (the Fig. 15 license plate) and stress
//! testing it with the §VI-B.5 signal-correlation attacks.
//!
//! ```sh
//! cargo run --release --example license_plate
//! ```

use puppies::attacks::{
    inpainting_attack, matrix_inference_attack, pca_attack, recognizability_verdict,
};
use puppies::core::{protect, OwnerKey, ProtectOptions};
use puppies::datasets::scene::street_with_plate;
use puppies::image::Rect;
use puppies::jpeg::CoeffImage;
use puppies::vision::text::{detect_text_blocks, TextDetectorParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let (photo, truth) = street_with_plate(&mut rng, 320, 240);
    let plate = truth.texts[0];

    // The OCR stand-in finds the plate on its own.
    let detected = detect_text_blocks(&photo.to_gray(), &TextDetectorParams::default());
    let auto_hit = detected.iter().any(|b| b.overlaps(plate));
    println!(
        "text detector found the plate automatically: {}",
        if auto_hit {
            "yes"
        } else {
            "no (using ground truth)"
        }
    );

    let key = OwnerKey::from_seed([9u8; 32]);
    let protected = protect(&photo, &[plate], &key, &ProtectOptions::default())?;
    let perturbed_coeff = CoeffImage::decode(&protected.bytes)?;
    let perturbed = perturbed_coeff.to_rgb();
    let reference = CoeffImage::from_rgb(&photo, 75).to_rgb();
    let region = protected.params.rois[0].rect;

    // A semi-honest PSP throws the §VI-B.5 toolbox at the hidden plate.
    let rois: Vec<Rect> = protected.params.rois.iter().map(|r| r.rect).collect();
    let candidates = [
        (
            "matrix inference",
            matrix_inference_attack(&perturbed_coeff, &protected.params).to_gray(),
        ),
        (
            "inpainting",
            inpainting_attack(&perturbed, &rois, 4).to_gray(),
        ),
        ("PCA", pca_attack(&perturbed.to_gray(), &rois, 8)),
    ];
    let original_gray = reference.to_gray();
    for (name, out) in &candidates {
        let verdict = recognizability_verdict(&original_gray.crop(region)?, &out.crop(region)?);
        println!(
            "{name:<18} recognizability {:.3} -> {}",
            verdict.score,
            if verdict.recognized {
                "PLATE LEAKED"
            } else {
                "unreadable"
            }
        );
        assert!(!verdict.recognized, "{name} attack must fail");
    }
    println!("all three correlation attacks failed to read the plate");
    Ok(())
}
