//! The paper's motivating story (§I), end to end: Alice posts a photo of
//! herself and Bob; her face is encrypted for everyone except her
//! friends, the PSP rotates the photo, and recovery still works. Keys
//! travel over a Diffie–Hellman channel.
//!
//! ```sh
//! cargo run --release --example alice_and_bob
//! ```

use puppies::core::{OwnerKey, ProtectOptions};
use puppies::image::{Rect, Rgb, RgbImage};
use puppies::psp::{transport_grant, KeyAgreement, PspServer, Receiver, Sender};
use puppies::transform::Transformation;
use puppies::vision::face::{render_face, FaceGeometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The photo: Alice (left) and Bob (right) in front of a landmark.
    let mut photo = RgbImage::filled(240, 160, Rgb::new(96, 128, 168));
    let alice_face = Rect::new(36, 40, 48, 60);
    let bob_face = Rect::new(150, 36, 48, 60);
    render_face(
        &mut photo,
        alice_face,
        Rgb::new(228, 188, 150),
        &FaceGeometry::default(),
    );
    render_face(
        &mut photo,
        bob_face,
        Rgb::new(205, 170, 140),
        &FaceGeometry {
            eye_spread: 0.24,
            ..FaceGeometry::default()
        },
    );

    let psp = PspServer::new();
    let mut alice = Sender::new(OwnerKey::from_seed([1u8; 32]));

    // Alice protects only her own face and uploads.
    let (photo_id, image_id) =
        alice.share(&psp, &photo, &[alice_face], &ProtectOptions::default())?;
    println!("Alice uploaded photo {photo_id:?} with her face protected");

    // Key exchange with Bob over an insecure wire (toy DH, see docs).
    let mut rng = StdRng::seed_from_u64(42);
    let alice_dh = KeyAgreement::new(&mut rng);
    let bob_dh = KeyAgreement::new(&mut rng);
    let grant = transport_grant(
        &alice_dh.agree(bob_dh.public_value()),
        &bob_dh.agree(alice_dh.public_value()),
        &alice.grant(image_id, &[0]),
    )?;
    let bob = Receiver::with_grant(grant);
    let mallory = Receiver::new(); // no keys

    // The PSP applies a standard transformation (as PSPs do).
    psp.transform(photo_id, &Transformation::Rotate180)?;
    println!("PSP rotated the stored photo by 180 degrees");

    let bob_view = bob.fetch(&psp, photo_id)?;
    let mallory_view = mallory.fetch(&psp, photo_id)?;

    // Bob sees Alice's face (rotated); Mallory sees noise there.
    let rotated_face = Rect::new(
        photo.width() - alice_face.right(),
        photo.height() - alice_face.bottom(),
        alice_face.w,
        alice_face.h,
    );
    let diff = puppies::image::metrics::psnr_rgb(
        &bob_view.crop(rotated_face)?,
        &mallory_view.crop(rotated_face)?,
    );
    println!(
        "Bob's and Mallory's views differ by {:.1} dB PSNR inside Alice's face region",
        diff
    );
    assert!(diff < 20.0, "Mallory must not see the face");
    puppies::image::io::save_ppm(&bob_view, "results/alice_bob_bobs_view.ppm").ok();
    puppies::image::io::save_ppm(&mallory_view, "results/alice_bob_mallorys_view.ppm").ok();
    println!("views saved under results/");
    Ok(())
}
