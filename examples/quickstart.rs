//! Quickstart: protect one region of a photo, recover it with the key.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use puppies::core::{protect, recover, KeyGrant, OwnerKey, ProtectOptions};
use puppies::image::metrics::psnr_rgb;
use puppies::image::{Rect, Rgb, RgbImage};
use puppies::jpeg::CoeffImage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A stand-in photo; load your own with puppies::image::io::load_ppm.
    let photo = RgbImage::from_fn(160, 120, |x, y| {
        Rgb::new(
            (40 + (x * 2 + y) % 160) as u8,
            (60 + (x + y * 2) % 140) as u8,
            (90 + (x + y) % 100) as u8,
        )
    });
    let secret_region = Rect::new(48, 32, 56, 48);

    // The owner's root key: 32 bytes is all that ever lives on the device.
    let key = OwnerKey::from_seed([7u8; 32]);
    let opts = ProtectOptions::default(); // PuPPIeS-Z, medium privacy, q75

    let protected = protect(&photo, &[secret_region], &key, &opts)?;
    println!(
        "uploaded {} image bytes + {} parameter bytes (public); private part: 32-byte key",
        protected.bytes.len(),
        protected.params.encoded_len()
    );

    // Anyone can decode the public file — the region is unrecognizable.
    let public_view = CoeffImage::decode(&protected.bytes)?.to_rgb();
    let reference = CoeffImage::from_rgb(&photo, opts.quality).to_rgb();
    let roi = protected.params.rois[0].rect;
    println!(
        "public view PSNR inside the region: {:.1} dB (garbage)",
        psnr_rgb(&public_view.crop(roi)?, &reference.crop(roi)?)
    );

    // Without the key nothing changes...
    let stranger = recover(&protected, &KeyGrant::empty())?;
    assert_ne!(stranger.to_rgb().crop(roi)?, reference.crop(roi)?);

    // ...with the key, recovery is bit-exact.
    let recovered = recover(&protected, &key.grant_all())?;
    assert_eq!(recovered.to_rgb(), reference);
    println!("key holder recovered the image exactly");
    Ok(())
}
