//! The Fig. 1 scenario: a vacation photo where the people are sensitive
//! but the landmark background should stay usable. ROIs are recommended
//! automatically, the faces are perturbed, and a retrieval index (the
//! Google-Image-Search stand-in) still finds the photo by its background.
//!
//! ```sh
//! cargo run --release --example vacation_photo
//! ```

use puppies::core::{OwnerKey, ProtectOptions};
use puppies::datasets::scene::landscape_with_people;
use puppies::psp::{PspServer, Receiver, Sender};
use puppies::vision::retrieval::{result_overlap, RetrievalIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2016);
    let (photo, truth) = landscape_with_people(&mut rng, 320, 240);
    println!(
        "generated a vacation photo with {} people",
        truth.faces.len()
    );

    // Build a small photo corpus for the search engine.
    let mut index = RetrievalIndex::new();
    for i in 0..20u64 {
        let mut r = StdRng::seed_from_u64(100 + i);
        let (img, _) = landscape_with_people(&mut r, 320, 240);
        index.insert(i, &img);
    }
    index.insert(999, &photo);

    // The owner runs the §IV-A recommender; faces come back as regions.
    let psp = PspServer::new();
    let mut owner = Sender::new(OwnerKey::from_seed([3u8; 32]));
    let mut rois = owner.recommend_rois(&photo);
    if rois.is_empty() {
        // Fall back to ground truth (tiny faces can evade the detector).
        rois = truth.faces.clone();
    }
    println!("protecting {} recommended region(s)", rois.len());
    let (photo_id, _) = owner.share(&psp, &photo, &rois, &ProtectOptions::default())?;

    // The perturbed public view still retrieves like the original.
    let public = Receiver::new().fetch_public_view(&psp, photo_id)?;
    let top_orig = index.query(&photo, 10);
    let top_pert = index.query(&public, 10);
    let overlap = result_overlap(&top_orig, &top_pert);
    println!(
        "top-10 search overlap, original vs perturbed query: {:.0}%",
        overlap * 100.0
    );
    println!(
        "perturbed query self-retrieves: {}",
        if top_pert.contains(&999) { "yes" } else { "no" }
    );

    // And the faces are gone from the public view.
    let dets = puppies::vision::detect_faces(
        &public.to_gray(),
        &puppies::vision::FaceDetectorParams::default(),
    );
    let localized = truth
        .faces
        .iter()
        .filter(|f| dets.iter().any(|d| d.rect.iou(**f) >= 0.5))
        .count();
    println!(
        "faces still localizable in the public view: {}/{}",
        localized,
        truth.faces.len()
    );
    puppies::image::io::save_ppm(&photo, "results/vacation_original.ppm").ok();
    puppies::image::io::save_ppm(&public, "results/vacation_public.ppm").ok();
    println!("images saved under results/");
    Ok(())
}
