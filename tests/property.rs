//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use puppies::core::matrix::{wrap_ac, wrap_dc};
use puppies::core::perturb::{perturb_roi, recover_roi, RoiKeys};
use puppies::core::{OwnerKey, PerturbProfile, PrivacyLevel, PublicParams, RangeSpec, Scheme};
use puppies::image::{Rect, Rgb, RgbImage};
use puppies::jpeg::{CoeffImage, EncodeOptions, HuffmanMode};

fn arb_image() -> impl Strategy<Value = RgbImage> {
    // Dimensions 16..=72, procedural content parameterized by a seed.
    (16u32..=72, 16u32..=72, any::<u32>()).prop_map(|(w, h, seed)| {
        RgbImage::from_fn(w, h, |x, y| {
            let v = x
                .wrapping_mul(seed | 1)
                .wrapping_add(y.wrapping_mul(seed.rotate_left(13) | 1));
            Rgb::new(
                (v % 256) as u8,
                ((v >> 8) % 256) as u8,
                ((v >> 16) % 256) as u8,
            )
        })
    })
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Naive),
        Just(Scheme::Base),
        Just(Scheme::Compression),
        Just(Scheme::Zero),
    ]
}

fn arb_profile() -> impl Strategy<Value = PerturbProfile> {
    (arb_scheme(), 0u8..=2, 1u16..=2048, 0u8..=64, 2u16..=2048).prop_map(
        |(scheme, kind, m_r, k, dc_range)| {
            let range = match kind {
                0 => RangeSpec::from(PrivacyLevel::Medium),
                1 => RangeSpec::Algorithm3 { m_r, k },
                _ => RangeSpec::Flat { range: m_r, k },
            };
            PerturbProfile {
                scheme,
                range,
                dc_range,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_recovery_is_exact(b in -1024i32..=1023, p in 0i32..=2047) {
        prop_assert_eq!(wrap_dc(wrap_dc(b + p) - p), b);
        if b >= -1023 && p <= 2046 {
            prop_assert_eq!(wrap_ac(wrap_ac(b + p) - p), b);
        }
    }

    #[test]
    fn protect_recover_roundtrips_bit_exact(
        img in arb_image(),
        profile in arb_profile(),
        seed in any::<[u8; 32]>(),
    ) {
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let key = OwnerKey::from_seed(seed);
        let grant = key.grant_all();
        let keys: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&grant, 1, 0, c).unwrap())
            .collect();
        let rect = Rect::new(0, 0, img.width(), img.height());
        let record = perturb_roi(&mut perturbed, rect, &keys, &profile).unwrap();
        recover_roi(&mut perturbed, rect, &keys, &profile, &record.zind).unwrap();
        prop_assert_eq!(perturbed, original);
    }

    #[test]
    fn perturbed_streams_stay_decodable(
        img in arb_image(),
        profile in arb_profile(),
    ) {
        let mut coeff = CoeffImage::from_rgb(&img, 75);
        let key = OwnerKey::from_seed([77u8; 32]);
        let grant = key.grant_all();
        let keys: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&grant, 1, 0, c).unwrap())
            .collect();
        let rect = Rect::new(0, 0, img.width(), img.height());
        perturb_roi(&mut coeff, rect, &keys, &profile).unwrap();
        for huffman in [HuffmanMode::Standard, HuffmanMode::Optimized] {
            let mut opts = EncodeOptions::default();
            opts.huffman = huffman;
            let bytes = coeff.encode(&opts).unwrap();
            let back = CoeffImage::decode(&bytes).unwrap();
            prop_assert_eq!(&back, &coeff);
        }
    }

    #[test]
    fn jpeg_codec_roundtrips_arbitrary_images(img in arb_image(), q in 1u8..=100) {
        let coeff = CoeffImage::from_rgb(&img, q);
        let bytes = coeff.encode(&EncodeOptions::default()).unwrap();
        let back = CoeffImage::decode(&bytes).unwrap();
        prop_assert_eq!(back, coeff);
    }

    #[test]
    fn public_params_wire_roundtrips(
        img in arb_image(),
        profile in arb_profile(),
    ) {
        let key = OwnerKey::from_seed([78u8; 32]);
        let opts = puppies::core::ProtectOptions::from_profile(profile);
        let w = img.width();
        let h = img.height();
        let roi = Rect::new(0, 0, (w / 2).max(8) / 8 * 8, (h / 2).max(8) / 8 * 8);
        let protected = puppies::core::protect(&img, &[roi], &key, &opts).unwrap();
        let wire = protected.params.to_bytes();
        let back = PublicParams::from_bytes(&wire).unwrap();
        prop_assert_eq!(back, protected.params);
    }

    #[test]
    fn unauthorized_recovery_never_restores_roi(
        img in arb_image(),
        seed_a in any::<[u8; 32]>(),
        seed_b in any::<[u8; 32]>(),
    ) {
        prop_assume!(seed_a != seed_b);
        let original = CoeffImage::from_rgb(&img, 75);
        let mut perturbed = original.clone();
        let profile = PerturbProfile::paper(Scheme::Compression, PrivacyLevel::Medium);
        let key_a = OwnerKey::from_seed(seed_a);
        let key_b = OwnerKey::from_seed(seed_b);
        let keys_a: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&key_a.grant_all(), 1, 0, c).unwrap())
            .collect();
        let keys_b: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&key_b.grant_all(), 1, 0, c).unwrap())
            .collect();
        let rect = Rect::new(0, 0, img.width(), img.height());
        let record = perturb_roi(&mut perturbed, rect, &keys_a, &profile).unwrap();
        recover_roi(&mut perturbed, rect, &keys_b, &profile, &record.zind).unwrap();
        prop_assert_ne!(perturbed, original);
    }
}
