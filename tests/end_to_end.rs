//! End-to-end integration: the full Fig. 5 deployment across crates —
//! sender, DH key channel, PSP store, transformations, receivers.

use puppies::core::{OwnerKey, PerturbProfile, ProtectOptions};
use puppies::image::metrics::psnr_rgb;
use puppies::image::{Rect, Rgb, RgbImage};
use puppies::jpeg::CoeffImage;
use puppies::psp::{transport_grant, KeyAgreement, PspServer, Receiver, Sender};
use puppies::transform::{ScaleFilter, Transformation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn photo() -> RgbImage {
    RgbImage::from_fn(160, 120, |x, y| {
        Rgb::new(
            (50 + (x * 3 + y) % 150) as u8,
            (60 + (x + y * 3) % 140) as u8,
            (70 + (x * 2 + y * 2) % 120) as u8,
        )
    })
}

#[test]
fn full_workflow_with_key_channel() {
    let psp = PspServer::new();
    let mut alice = Sender::new(OwnerKey::from_seed([10u8; 32]));
    let img = photo();
    let roi = Rect::new(40, 24, 48, 48);
    let (photo_id, image_id) = alice
        .share(&psp, &img, &[roi], &ProtectOptions::default())
        .expect("share");

    // DH agreement + encrypted grant transport.
    let mut rng = StdRng::seed_from_u64(99);
    let a = KeyAgreement::new(&mut rng);
    let b = KeyAgreement::new(&mut rng);
    let grant = transport_grant(
        &a.agree(b.public_value()),
        &b.agree(a.public_value()),
        &alice.grant(image_id, &[0]),
    )
    .expect("transport");

    let bob = Receiver::with_grant(grant);
    let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
    assert_eq!(bob.fetch(&psp, photo_id).expect("fetch"), reference);
}

#[test]
fn lossless_psp_transform_chain_is_exact() {
    for t in [
        Transformation::Rotate90,
        Transformation::Rotate180,
        Transformation::Rotate270,
        Transformation::FlipHorizontal,
        Transformation::FlipVertical,
        Transformation::Crop(Rect::new(16, 16, 96, 80)),
    ] {
        let psp = PspServer::new();
        let mut alice = Sender::new(OwnerKey::from_seed([11u8; 32]));
        let img = photo();
        let (photo_id, image_id) = alice
            .share(
                &psp,
                &img,
                &[Rect::new(40, 24, 48, 48)],
                &ProtectOptions::default(),
            )
            .expect("share");
        psp.transform(photo_id, &t).expect("transform");
        let bob = Receiver::with_grant(alice.grant(image_id, &[0]));
        let got = bob.fetch(&psp, photo_id).expect("fetch");
        let want = t
            .apply_to_coeff(&CoeffImage::from_rgb(&img, 75))
            .expect("reference")
            .to_rgb();
        assert_eq!(got, want, "{t:?}");
    }
}

#[test]
fn scaling_chain_recovers_with_transform_friendly_profile() {
    let psp = PspServer::new();
    let mut alice = Sender::new(OwnerKey::from_seed([12u8; 32]));
    let img = photo();
    let opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly());
    let (photo_id, image_id) = alice
        .share(&psp, &img, &[Rect::new(40, 24, 48, 48)], &opts)
        .expect("share");
    let t = Transformation::Scale {
        width: 80,
        height: 60,
        filter: ScaleFilter::Bilinear,
    };
    psp.transform(photo_id, &t).expect("transform");
    let bob = Receiver::with_grant(alice.grant(image_id, &[0]));
    let carol = Receiver::new();
    let reference = t
        .apply_to_rgb(&CoeffImage::from_rgb(&img, 75).to_rgb())
        .expect("reference");
    // The protected region lands at half coordinates after the 1/2 scale;
    // the recovery difference concentrates there (outside it, both views
    // carry only the PSP's q75 re-encode noise).
    let scaled_roi = Rect::new(20, 12, 24, 24);
    let crop = |img: &RgbImage| img.crop(scaled_roi).expect("crop");
    let bob_psnr = psnr_rgb(
        &crop(&bob.fetch(&psp, photo_id).expect("fetch")),
        &crop(&reference),
    );
    let carol_psnr = psnr_rgb(
        &crop(&carol.fetch(&psp, photo_id).expect("fetch")),
        &crop(&reference),
    );
    assert!(
        bob_psnr > carol_psnr + 6.0,
        "bob {bob_psnr} dB vs carol {carol_psnr} dB inside the protected region"
    );
}

#[test]
fn eavesdropper_on_channel_learns_nothing_useful() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = KeyAgreement::new(&mut rng);
    let b = KeyAgreement::new(&mut rng);
    let eve = KeyAgreement::new(&mut rng);
    let key = OwnerKey::from_seed([13u8; 32]);
    let grant = key.grant_rois(1, &[0]);
    let result = transport_grant(
        &a.agree(b.public_value()),
        &eve.agree(a.public_value()), // Eve never saw b's secret
        &grant,
    );
    assert!(result.is_err(), "Eve must not decrypt the grant");
}

#[test]
fn psp_cannot_recover_without_keys_even_with_parameters() {
    // The PSP holds the image AND the public parameters; that must not be
    // enough.
    let psp = PspServer::new();
    let mut alice = Sender::new(OwnerKey::from_seed([14u8; 32]));
    let img = photo();
    let roi = Rect::new(40, 24, 48, 48);
    let (photo_id, _) = alice
        .share(&psp, &img, &[roi], &ProtectOptions::default())
        .expect("share");
    let snoop = Receiver::new();
    let view = snoop.fetch(&psp, photo_id).expect("fetch");
    let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
    let aligned = roi.align_to(8, img.width(), img.height());
    let psnr = psnr_rgb(
        &view.crop(aligned).expect("crop"),
        &reference.crop(aligned).expect("crop"),
    );
    assert!(psnr < 18.0, "snoop sees too much: {psnr} dB");
}
