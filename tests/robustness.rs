//! Robustness: parsers fed hostile bytes must fail cleanly, never panic —
//! the PSP and receivers handle attacker-supplied files.

use proptest::prelude::*;
use puppies::core::PublicParams;
use puppies::image::io::{read_pgm, read_ppm};
use puppies::jpeg::CoeffImage;
use puppies::psp::channel::decode_grant;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jpeg_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = CoeffImage::decode(&data);
    }

    #[test]
    fn jpeg_decoder_never_panics_on_mutated_streams(
        seed in any::<u8>(),
        flips in proptest::collection::vec((0usize..8192, any::<u8>()), 1..24),
        cut in any::<u16>(),
    ) {
        // Start from a valid stream, then corrupt it.
        let img = puppies::image::RgbImage::from_fn(48, 40, |x, y| {
            puppies::image::Rgb::new(
                x as u8 ^ seed,
                y as u8,
                seed,
            )
        });
        let mut bytes = puppies::jpeg::encode_rgb(&img, 75).unwrap();
        for (pos, val) in flips {
            let idx = pos % bytes.len();
            bytes[idx] ^= val;
        }
        let cut = (cut as usize) % (bytes.len() + 1);
        let _ = CoeffImage::decode(&bytes[..cut]);
        let _ = CoeffImage::decode(&bytes);
    }

    #[test]
    fn params_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = PublicParams::from_bytes(&data);
    }

    #[test]
    fn params_parser_never_panics_on_mutations(
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..16),
    ) {
        let img = puppies::image::RgbImage::from_fn(32, 32, |x, _| {
            puppies::image::Rgb::new(x as u8, 0, 0)
        });
        let key = puppies::core::OwnerKey::from_seed([1u8; 32]);
        let protected = puppies::core::protect(
            &img,
            &[puppies::image::Rect::new(8, 8, 16, 16)],
            &key,
            &puppies::core::ProtectOptions::default(),
        )
        .unwrap();
        let mut bytes = protected.params.to_bytes();
        for (pos, val) in flips {
            let idx = pos % bytes.len();
            bytes[idx] ^= val;
        }
        if let Ok(params) = PublicParams::from_bytes(&bytes) {
            // Even a "successfully" parsed corrupted blob must not break
            // recovery's error handling.
            let mut coeff = CoeffImage::decode(&protected.bytes).unwrap();
            let _ = puppies::core::recover_coeff(&mut coeff, &params, &key.grant_all());
        }
    }

    #[test]
    fn grant_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_grant(&data);
    }

    #[test]
    fn ppm_readers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = read_ppm(&data[..]);
        let _ = read_pgm(&data[..]);
    }

    #[test]
    fn channel_decrypt_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        use puppies::psp::KeyAgreement;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = KeyAgreement::new(&mut rng);
        let b = KeyAgreement::new(&mut rng);
        let ch = a.agree(b.public_value());
        let _ = ch.decrypt(&data);
    }
}

#[test]
fn decoder_rejects_giant_declared_dimensions_without_allocating() {
    // A tiny stream claiming a huge SOF must fail fast, not OOM: the block
    // count is validated against the actual entropy data.
    let img = puppies::image::RgbImage::from_fn(16, 16, |x, y| {
        puppies::image::Rgb::new(x as u8, y as u8, 0)
    });
    let mut bytes = puppies::jpeg::encode_rgb(&img, 75).unwrap();
    // Find SOF0 and rewrite the dimensions to 65504x65504.
    for i in 0..bytes.len() - 9 {
        if bytes[i] == 0xFF && bytes[i + 1] == 0xC0 {
            bytes[i + 5] = 0xFF;
            bytes[i + 6] = 0xE0;
            bytes[i + 7] = 0xFF;
            bytes[i + 8] = 0xE0;
            break;
        }
    }
    let start = std::time::Instant::now();
    let result = CoeffImage::decode(&bytes);
    assert!(result.is_err(), "lying SOF must not decode");
    assert!(
        start.elapsed().as_secs() < 10,
        "dimension lie must fail fast"
    );
}

/// Rebuilds the corrupted stream from
/// `jpeg_decoder_never_panics_on_mutated_streams` for a shrunk
/// counterexample, so historical failures survive proptest corpus
/// cleanup as plain named tests.
fn mutated_stream(seed: u8, flips: &[(usize, u8)], cut: u16) -> (Vec<u8>, usize) {
    let img = puppies::image::RgbImage::from_fn(48, 40, |x, y| {
        puppies::image::Rgb::new(x as u8 ^ seed, y as u8, seed)
    });
    let mut bytes = puppies::jpeg::encode_rgb(&img, 75).unwrap();
    for &(pos, val) in flips {
        let idx = pos % bytes.len();
        bytes[idx] ^= val;
    }
    let cut = (cut as usize) % (bytes.len() + 1);
    (bytes, cut)
}

/// Regression (tests/robustness.proptest-regressions, cc 6a226d39…):
/// a single-bit flip in the entropy-coded segment once drove the decoder
/// into a panicking state. The shrunk case is `seed = 144,
/// flips = [(7603, 4)], cut = 0` — the zero-length prefix plus the full
/// corrupted stream must both fail cleanly.
#[test]
fn regression_entropy_segment_bitflip_seed144() {
    let (bytes, cut) = mutated_stream(144, &[(7603, 4)], 0);
    let _ = CoeffImage::decode(&bytes[..cut]);
    let _ = CoeffImage::decode(&bytes);
}

/// Regression (tests/robustness.proptest-regressions, cc a5ca8330…):
/// flipping bit 6 of a byte mid-stream (`seed = 160,
/// flips = [(4367, 64)], cut = 0`) once tripped a decoder panic. Kept as
/// a named test for the same reason as above.
#[test]
fn regression_entropy_segment_bitflip_seed160() {
    let (bytes, cut) = mutated_stream(160, &[(4367, 64)], 0);
    let _ = CoeffImage::decode(&bytes[..cut]);
    let _ = CoeffImage::decode(&bytes);
}
