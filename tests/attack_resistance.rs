//! Cross-crate attack-resistance integration: protected dataset images
//! must defeat the §VI attack stack while clean images do not.

use puppies::attacks::{edge_attack, sift_attack};
use puppies::core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies::datasets::{generate, DatasetProfile};
use puppies::image::Rect;
use puppies::jpeg::CoeffImage;

fn protected_view(
    img: &puppies::image::RgbImage,
    id: u64,
    scheme: Scheme,
) -> puppies::image::RgbImage {
    let key = OwnerKey::from_seed([55u8; 32]);
    let whole = Rect::new(0, 0, img.width(), img.height());
    let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium).with_image_id(id);
    let protected = protect(img, &[whole], &key, &opts).expect("protect");
    CoeffImage::decode(&protected.bytes)
        .expect("decode")
        .to_rgb()
}

#[test]
fn sift_attack_defeated_on_dataset_sample() {
    let profile = DatasetProfile::pascal()
        .with_count(4)
        .with_resolution(248, 164);
    let mut total_matches = 0usize;
    let mut total_features = 0usize;
    for li in generate(profile, 777) {
        let reference = CoeffImage::from_rgb(&li.image, 75).to_rgb().to_gray();
        let perturbed = protected_view(&li.image, li.id, Scheme::Zero).to_gray();
        let report = sift_attack(&reference, &perturbed);
        total_matches += report.matches;
        total_features += report.original_features;
    }
    assert!(
        total_features > 20,
        "scenes too feature-poor: {total_features}"
    );
    assert!(
        total_matches * 10 <= total_features,
        "{total_matches} matches over {total_features} features"
    );
}

#[test]
fn edge_attack_defeated_on_dataset_sample() {
    let profile = DatasetProfile::pascal()
        .with_count(4)
        .with_resolution(248, 164);
    for li in generate(profile, 778) {
        let reference = CoeffImage::from_rgb(&li.image, 75).to_rgb().to_gray();
        let perturbed = protected_view(&li.image, li.id, Scheme::Compression).to_gray();
        let r = edge_attack(&reference, &perturbed);
        assert!(
            r.structure_score < 0.4,
            "edge structure survives on image {}: {r:?}",
            li.id
        );
    }
}

#[test]
fn face_recognition_attack_degrades_to_chance() {
    use puppies::attacks::recognition::recognition_attack;
    use puppies::vision::eigenfaces::EigenfaceGallery;
    let profile = DatasetProfile::feret()
        .with_count(36)
        .with_resolution(128, 192);
    let images: Vec<_> = generate(profile, 779).collect();
    // Gallery: first sighting of each identity; probes: the rest.
    let mut seen = std::collections::HashSet::new();
    let mut gallery = Vec::new();
    let mut probes = Vec::new();
    for li in &images {
        let face = li.truth.faces[0];
        let chip = li
            .image
            .crop(face.intersect(li.image.bounds()))
            .expect("crop")
            .to_gray();
        if seen.insert(li.identity) {
            gallery.push((li.identity, chip));
        } else {
            probes.push((li, face));
        }
    }
    let gallery = EigenfaceGallery::train(&gallery, 16);
    let mut clean_top1 = 0;
    let mut perturbed_top1 = 0;
    for (li, face) in &probes {
        let chip = |img: &puppies::image::RgbImage| {
            img.crop(face.intersect(img.bounds()))
                .expect("crop")
                .to_gray()
        };
        let reference = CoeffImage::from_rgb(&li.image, 75).to_rgb();
        if recognition_attack(&gallery, &chip(&reference), li.identity) == Some(1) {
            clean_top1 += 1;
        }
        let perturbed = protected_view(&li.image, li.id, Scheme::Zero);
        if recognition_attack(&gallery, &chip(&perturbed), li.identity) == Some(1) {
            perturbed_top1 += 1;
        }
    }
    assert!(!probes.is_empty());
    assert!(
        clean_top1 * 2 >= probes.len(),
        "recognizer too weak on clean probes: {clean_top1}/{}",
        probes.len()
    );
    assert!(
        perturbed_top1 * 2 < clean_top1.max(1) * 2 && perturbed_top1 <= probes.len() / 3,
        "perturbed probes still recognized: {perturbed_top1}/{} (clean {clean_top1})",
        probes.len()
    );
}
